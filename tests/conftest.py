"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.network.builder import Network, build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import SimulationResult, run_workload
from repro.traffic.base import Workload


def pytest_addoption(parser):
    """``--regenerate-golden`` rewrites the experiment snapshots.

    Run ``PYTHONPATH=src python -m pytest tests/experiments/test_golden.py
    --regenerate-golden`` after an *intended* numeric change, then commit
    the updated ``tests/experiments/golden/*.json`` with the change that
    caused it.
    """
    parser.addoption(
        "--regenerate-golden",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/golden/*.json from current results",
    )


def tiny_config(**overrides) -> SimulationConfig:
    """A 16-host central-buffer BMIN with internal checks on."""
    defaults = dict(num_hosts=16, self_check=True)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def small_config(**overrides) -> SimulationConfig:
    """The paper's default 64-host system (checks on, fast parameters)."""
    defaults = dict(num_hosts=64, self_check=True)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(config: SimulationConfig, workload: Workload, **kwargs) -> SimulationResult:
    """Build and run, asserting the workload completed."""
    network = build_network(config)
    result = run_workload(network, workload, **kwargs)
    assert result.completed, "workload exceeded its cycle budget"
    return result


def run_network(config: SimulationConfig, workload: Workload, **kwargs):
    """Like :func:`run` but also returns the network for inspection."""
    network = build_network(config)
    result = run_workload(network, workload, **kwargs)
    return result, network


def dests(universe: int, *ids: int) -> DestinationSet:
    """Shorthand destination-set constructor."""
    return DestinationSet.from_ids(universe, ids)


@pytest.fixture
def tiny_network() -> Network:
    """A built (unrun) 16-host central-buffer network."""
    return build_network(tiny_config())


ALL_ARCHITECTURES = list(SwitchArchitecture)
ALL_SCHEMES = list(MulticastScheme)
