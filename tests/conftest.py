"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.network.builder import Network, build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import SimulationResult, run_workload
from repro.traffic.base import Workload


def pytest_addoption(parser):
    """``--regenerate-golden`` rewrites the experiment snapshots.

    Run ``PYTHONPATH=src python -m pytest tests/experiments/test_golden.py
    --regenerate-golden`` after an *intended* numeric change, then commit
    the updated ``tests/experiments/golden/*.json`` with the change that
    caused it.
    """
    parser.addoption(
        "--regenerate-golden",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/golden/*.json from current results",
    )


def poll_until(predicate, timeout=60.0, interval=0.01, message="condition"):
    """Spin until ``predicate()`` is truthy; fail the test on timeout.

    The crash/fault tests coordinate with subprocesses through
    *observable state* (journal entries on disk, a process exiting) —
    never a fixed sleep, which is exactly as long as the flake it
    papers over.  Poll cheaply, fail loudly.
    """
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out after {timeout:.0f}s waiting for {message}")
        time.sleep(interval)


def journal_entry_count(store_dir) -> int:
    """Completed result entries across a store's journal segments.

    Counts schema-tagged entry lines the same way the store's own
    scanner does, so tests can watch a campaign's progress from outside
    the writing process.
    """
    segments = Path(store_dir) / "segments"
    if not segments.is_dir():
        return 0
    count = 0
    for path in segments.iterdir():
        text = path.read_text(encoding="utf-8")
        count += sum(
            1
            for line in text.splitlines()
            if '"repro.store.entry/1"' in line
        )
    return count


def wait_journal_quiescent(store_dir, settle=0.25, timeout=60.0):
    """Block until the journal stops growing for ``settle`` seconds.

    After SIGKILLing a campaign process, its pool/fleet children may
    briefly outlive it; sampling the journal until its byte size holds
    still guarantees every straggling write has landed (or torn) before
    the test inspects or resumes the store.  Returns the final entry
    count.
    """
    segments = Path(store_dir) / "segments"

    def footprint():
        if not segments.is_dir():
            return ()
        return tuple(
            sorted(
                (path.name, path.stat().st_size)
                for path in segments.iterdir()
            )
        )

    deadline = time.monotonic() + timeout
    last = footprint()
    held = time.monotonic()
    while time.monotonic() - held < settle:
        if time.monotonic() > deadline:
            pytest.fail(
                f"journal still growing after {timeout:.0f}s"
            )
        time.sleep(0.02)
        current = footprint()
        if current != last:
            last = current
            held = time.monotonic()
    return journal_entry_count(store_dir)


def tiny_config(**overrides) -> SimulationConfig:
    """A 16-host central-buffer BMIN with internal checks on."""
    defaults = dict(num_hosts=16, self_check=True)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def small_config(**overrides) -> SimulationConfig:
    """The paper's default 64-host system (checks on, fast parameters)."""
    defaults = dict(num_hosts=64, self_check=True)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(config: SimulationConfig, workload: Workload, **kwargs) -> SimulationResult:
    """Build and run, asserting the workload completed."""
    network = build_network(config)
    result = run_workload(network, workload, **kwargs)
    assert result.completed, "workload exceeded its cycle budget"
    return result


def run_network(config: SimulationConfig, workload: Workload, **kwargs):
    """Like :func:`run` but also returns the network for inspection."""
    network = build_network(config)
    result = run_workload(network, workload, **kwargs)
    return result, network


def dests(universe: int, *ids: int) -> DestinationSet:
    """Shorthand destination-set constructor."""
    return DestinationSet.from_ids(universe, ids)


@pytest.fixture
def tiny_network() -> Network:
    """A built (unrun) 16-host central-buffer network."""
    return build_network(tiny_config())


ALL_ARCHITECTURES = list(SwitchArchitecture)
ALL_SCHEMES = list(MulticastScheme)
