"""Reachability tables built from real topologies."""

from __future__ import annotations

import pytest

from repro.routing.reachability import tables_for_bmin, tables_for_umin
from repro.routing.updown import tables_for_irregular
from repro.topology.bmin import BidirectionalMin
from repro.topology.irregular import IrregularNetwork
from repro.topology.umin import UnidirectionalMin


class TestBminTables:
    @pytest.fixture(scope="class")
    def bmin(self):
        return BidirectionalMin(4, 3)

    @pytest.fixture(scope="class")
    def tables(self, bmin):
        return tables_for_bmin(bmin)

    def test_leaf_reaches_its_hosts(self, bmin, tables):
        for index in range(bmin.switches_per_level):
            table = tables[bmin.switch_id(0, index)]
            expected = 0
            for host in range(index * 4, index * 4 + 4):
                expected |= 1 << host
            assert table.subtree_mask == expected
            assert sorted(table.host_ports.values()) == list(
                range(index * 4, index * 4 + 4)
            )

    def test_top_level_reaches_everything(self, bmin, tables):
        for index in range(bmin.switches_per_level):
            table = tables[bmin.switch_id(2, index)]
            assert table.subtree_mask == (1 << 64) - 1
            assert table.up_ports == []

    def test_subtree_sizes_by_level(self, bmin, tables):
        for level, size in ((0, 4), (1, 16), (2, 64)):
            table = tables[bmin.switch_id(level, 0)]
            assert bin(table.subtree_mask).count("1") == size

    def test_down_reach_partitions_subtree(self, bmin, tables):
        for table in tables:
            union = 0
            for mask in table.down_reach.values():
                assert union & mask == 0
                union |= mask
            assert union == table.subtree_mask

    def test_every_host_in_exactly_one_leaf(self, bmin, tables):
        coverage = [0] * bmin.num_hosts
        for index in range(bmin.switches_per_level):
            table = tables[bmin.switch_id(0, index)]
            for host in table.host_ports.values():
                coverage[host] += 1
        assert coverage == [1] * bmin.num_hosts


class TestUminTables:
    def test_forward_cone_shrinks_by_stage(self):
        """Stage s reaches arity**(stages-s) hosts; stage 0 reaches all."""
        umin = UnidirectionalMin(4, 2)
        tables = tables_for_umin(umin)
        for switch, table in enumerate(tables):
            stage = umin.switch_stage(switch)
            expected = 4 ** (umin.stages - stage)
            assert bin(table.subtree_mask).count("1") == expected
            assert table.up_ports == []

    def test_last_stage_delivers(self):
        umin = UnidirectionalMin(4, 2)
        tables = tables_for_umin(umin)
        for index in range(umin.switches_per_stage):
            table = tables[umin.switch_id(1, index)]
            assert len(table.host_ports) == 4

    def test_output_reach_partitions(self):
        umin = UnidirectionalMin(4, 3)
        for table in tables_for_umin(umin):
            union = 0
            for mask in table.down_reach.values():
                assert union & mask == 0
                union |= mask
            assert union == table.subtree_mask


class TestIrregularTables:
    def test_root_reaches_everything(self):
        net = IrregularNetwork(8, 2, 8, extra_links=2, seed=3)
        tables = tables_for_irregular(net)
        assert tables[0].subtree_mask == (1 << 16) - 1
        assert tables[0].up_ports == []

    def test_non_roots_have_one_up_port(self):
        net = IrregularNetwork(8, 2, 8, seed=3)
        tables = tables_for_irregular(net)
        for switch in range(1, 8):
            assert len(tables[switch].up_ports) == 1
            assert tables[switch].up_ports[0] == net.parent_port[switch]

    def test_subtree_matches_network(self):
        net = IrregularNetwork(8, 2, 8, seed=3)
        tables = tables_for_irregular(net)
        for switch in range(8):
            expected = 0
            for host in net.subtree_hosts(switch):
                expected |= 1 << host
            assert tables[switch].subtree_mask == expected
