"""Up-port selection policies."""

from __future__ import annotations

from random import Random

import pytest

from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.routing.base import UpPortPolicy, make_up_selector


def worm(source=0, dest=5, universe=16):
    destinations = DestinationSet.single(universe, dest)
    message = Message(0, source, destinations, 4, TrafficClass.UNICAST, 0)
    return Worm.root(Packet(0, message, destinations, 1, 4))


class TestDeterministic:
    def test_stable_for_same_flow(self):
        select = make_up_selector(UpPortPolicy.DETERMINISTIC)
        w = worm(source=3, dest=9)
        picks = {select([4, 5, 6, 7], w) for _ in range(10)}
        assert len(picks) == 1

    def test_spreads_across_flows(self):
        select = make_up_selector(UpPortPolicy.DETERMINISTIC)
        picks = {
            select([4, 5, 6, 7], worm(source=s, dest=d))
            for s in range(4)
            for d in range(8, 16)
        }
        assert len(picks) > 1

    def test_pick_is_a_candidate(self):
        select = make_up_selector(UpPortPolicy.DETERMINISTIC)
        assert select([6], worm()) == 6


class TestRandom:
    def test_requires_rng(self):
        with pytest.raises(ValueError):
            make_up_selector(UpPortPolicy.RANDOM)

    def test_uses_all_candidates_eventually(self):
        select = make_up_selector(UpPortPolicy.RANDOM, rng=Random(0))
        picks = {select([4, 5, 6, 7], worm()) for _ in range(200)}
        assert picks == {4, 5, 6, 7}

    def test_deterministic_given_rng_state(self):
        a = make_up_selector(UpPortPolicy.RANDOM, rng=Random(1))
        b = make_up_selector(UpPortPolicy.RANDOM, rng=Random(1))
        w = worm()
        assert [a([4, 5, 6], w) for _ in range(20)] == [
            b([4, 5, 6], w) for _ in range(20)
        ]


class TestAdaptive:
    def test_requires_credit_view(self):
        with pytest.raises(ValueError):
            make_up_selector(UpPortPolicy.ADAPTIVE)

    def test_picks_most_credits(self):
        credits = {4: 1, 5: 7, 6: 3}
        select = make_up_selector(
            UpPortPolicy.ADAPTIVE, credit_view=credits.__getitem__
        )
        assert select([4, 5, 6], worm()) == 5

    def test_tie_breaks_to_lowest_port(self):
        select = make_up_selector(UpPortPolicy.ADAPTIVE, credit_view=lambda p: 2)
        assert select([6, 4, 5], worm()) == 4
