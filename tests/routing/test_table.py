"""SwitchRoutingTable: decode semantics for both routing modes."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.routing.base import (
    MulticastRoutingMode,
    UpPortPolicy,
    make_up_selector,
    validate_partition,
)
from repro.routing.table import SwitchRoutingTable

N = 16
FIRST_UP = make_up_selector(UpPortPolicy.DETERMINISTIC)


def worm_for(source: int, ids, descending=False) -> Worm:
    destinations = DestinationSet.from_ids(N, ids)
    message = Message(0, source, destinations, 4, TrafficClass.MULTICAST, 0)
    packet = Packet(0, message, destinations, 1, 4)
    root = Worm.root(packet)
    if descending:
        return root.branch(destinations, descending=True)
    return root


def leaf_table() -> SwitchRoutingTable:
    """Leaf switch serving hosts 0-3, with up ports 4 and 5."""
    return SwitchRoutingTable(
        switch_id=0,
        num_hosts=N,
        down_reach={port: 1 << port for port in range(4)},
        up_ports=[4, 5],
        host_ports={port: port for port in range(4)},
    )


def mid_table() -> SwitchRoutingTable:
    """Middle switch: subtrees {0-3} and {4-7} below, ups 4 and 5."""
    return SwitchRoutingTable(
        switch_id=1,
        num_hosts=N,
        down_reach={0: 0x0F, 1: 0xF0},
        up_ports=[4, 5],
    )


class TestConstruction:
    def test_overlapping_reach_rejected(self):
        with pytest.raises(RoutingError):
            SwitchRoutingTable(0, N, {0: 0b11, 1: 0b10}, [])

    def test_empty_reach_rejected(self):
        with pytest.raises(RoutingError):
            SwitchRoutingTable(0, N, {0: 0}, [])

    def test_host_port_reach_must_match(self):
        with pytest.raises(RoutingError):
            SwitchRoutingTable(0, N, {0: 0b11}, [], host_ports={0: 0})

    def test_subtree_mask_is_union(self):
        assert mid_table().subtree_mask == 0xFF


class TestDescendingWorms:
    def test_splits_across_down_ports(self):
        requests = mid_table().compute_requests(
            worm_for(8, [1, 2, 5], descending=True),
            MulticastRoutingMode.TURNAROUND,
            FIRST_UP,
            self_check=True,
        )
        by_port = {r.port: r for r in requests}
        assert set(by_port) == {0, 1}
        assert set(by_port[0].destinations) == {1, 2}
        assert set(by_port[1].destinations) == {5}
        assert all(r.descending for r in requests)

    def test_outside_subtree_raises(self):
        with pytest.raises(RoutingError):
            mid_table().compute_requests(
                worm_for(8, [1, 9], descending=True),
                MulticastRoutingMode.TURNAROUND,
                FIRST_UP,
            )

    def test_delivery_at_leaf(self):
        requests = leaf_table().compute_requests(
            worm_for(8, [0, 3], descending=True),
            MulticastRoutingMode.TURNAROUND,
            FIRST_UP,
        )
        assert {r.port for r in requests} == {0, 3}
        for r in requests:
            assert r.destinations.is_singleton()


class TestAscendingTurnaround:
    def test_all_inside_turns_down(self):
        requests = mid_table().compute_requests(
            worm_for(0, [1, 6]),
            MulticastRoutingMode.TURNAROUND,
            FIRST_UP,
            self_check=True,
        )
        assert {r.port for r in requests} == {0, 1}
        assert all(r.descending for r in requests)

    def test_any_outside_goes_up_whole(self):
        worm = worm_for(0, [1, 6, 12])
        requests = mid_table().compute_requests(
            worm, MulticastRoutingMode.TURNAROUND, FIRST_UP, self_check=True
        )
        (request,) = requests
        assert request.port in (4, 5)
        assert request.destinations == worm.destinations
        assert not request.descending

    def test_no_up_port_raises(self):
        table = SwitchRoutingTable(0, N, {0: 0x0F, 1: 0xF0}, [])
        with pytest.raises(RoutingError):
            table.compute_requests(
                worm_for(0, [12]), MulticastRoutingMode.TURNAROUND, FIRST_UP
            )


class TestAscendingBranchOnUp:
    def test_splits_between_up_and_down(self):
        worm = worm_for(0, [1, 6, 12])
        requests = mid_table().compute_requests(
            worm, MulticastRoutingMode.BRANCH_ON_UP, FIRST_UP, self_check=True
        )
        ups = [r for r in requests if not r.descending]
        downs = [r for r in requests if r.descending]
        assert len(ups) == 1
        assert set(ups[0].destinations) == {12}
        assert {d.port for d in downs} == {0, 1}

    def test_pure_outside_only_up(self):
        worm = worm_for(0, [12, 13])
        requests = mid_table().compute_requests(
            worm, MulticastRoutingMode.BRANCH_ON_UP, FIRST_UP
        )
        (request,) = requests
        assert set(request.destinations) == {12, 13}


class TestValidatePartition:
    def test_accepts_partition(self):
        worm = worm_for(8, [1, 5], descending=True)
        requests = mid_table().compute_requests(
            worm, MulticastRoutingMode.TURNAROUND, FIRST_UP
        )
        validate_partition(worm.destinations, requests)

    def test_rejects_uncovered(self):
        worm = worm_for(8, [1, 5], descending=True)
        requests = mid_table().compute_requests(
            worm, MulticastRoutingMode.TURNAROUND, FIRST_UP
        )
        with pytest.raises(ValueError):
            validate_partition(
                worm.destinations | DestinationSet.single(N, 9), requests
            )


class TestHelpers:
    def test_host_port_queries(self):
        table = leaf_table()
        assert table.is_host_port(2)
        assert table.delivers_to(2) == 2
        assert not table.is_host_port(4)
        assert table.delivers_to(4) is None

    def test_down_ports_sorted(self):
        assert mid_table().down_ports() == [0, 1]
