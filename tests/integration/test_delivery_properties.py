"""End-to-end delivery invariants, cross-checked against the path model.

These are the strongest correctness tests in the suite: for random
multicasts, the flit-level simulator must deliver exactly one complete
copy of the payload to exactly the set of hosts the pure-functional
replication model predicts — on both switch architectures and both
routing modes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.path_model import trace_worm
from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.routing.base import MulticastRoutingMode

N = 16


def run_multicast(architecture, mode, source, ids, payload=24):
    config = SimulationConfig(
        num_hosts=N,
        switch_architecture=architecture,
        multicast_mode=mode,
        self_check=True,
        sw_send_overhead=0,
    )
    network = build_network(config)
    destinations = DestinationSet.from_ids(N, ids)
    network.sim.schedule_at(
        0,
        lambda: network.nodes[source].post_multicast(
            destinations, payload, MulticastScheme.HARDWARE
        ),
    )
    network.sim.run_until(
        lambda: network.collector.outstanding_operations == 0
        and network.collector.operations_created == 1,
        max_cycles=50_000,
        stall_limit=10_000,
    )
    return network


@given(
    source=st.integers(0, N - 1),
    ids=st.sets(st.integers(0, N - 1), min_size=1, max_size=10),
    architecture=st.sampled_from(list(SwitchArchitecture)),
    mode=st.sampled_from(list(MulticastRoutingMode)),
)
@settings(max_examples=40, deadline=None)
def test_multicast_delivers_exactly_once_everywhere(
    source, ids, architecture, mode
):
    ids.discard(source)
    if not ids:
        return
    network = run_multicast(architecture, mode, source, ids)
    (op,) = network.collector.completed_operations()
    assert sorted(op.arrival_cycles) == sorted(ids)
    header = network.encoding.header_flits(op.destinations)
    for dest in ids:
        assert network.interfaces[dest].flits_ejected == 24 + header
    for host in range(N):
        if host not in ids and host != source:
            assert network.interfaces[host].flits_ejected == 0


@given(
    source=st.integers(0, N - 1),
    ids=st.sets(st.integers(0, N - 1), min_size=1, max_size=10),
    mode=st.sampled_from(list(MulticastRoutingMode)),
)
@settings(max_examples=25, deadline=None)
def test_simulator_agrees_with_path_model(source, ids, mode):
    ids.discard(source)
    if not ids:
        return
    network = run_multicast(SwitchArchitecture.CENTRAL_BUFFER, mode, source, ids)
    traced = trace_worm(
        network.topology,
        network.tables,
        source,
        DestinationSet.from_ids(N, ids),
        mode=mode,
    )
    (op,) = network.collector.completed_operations()
    assert set(op.arrival_cycles) == set(traced.delivered)


@pytest.mark.parametrize("architecture", list(SwitchArchitecture))
def test_broadcast_from_every_corner(architecture):
    """Broadcast from hosts in different subtrees reaches everyone."""
    for source in (0, 7, 15):
        everyone = set(range(N)) - {source}
        network = run_multicast(
            architecture, MulticastRoutingMode.TURNAROUND, source, everyone
        )
        (op,) = network.collector.completed_operations()
        assert len(op.arrival_cycles) == N - 1
