"""Bit-identical replay for identical seeds; divergence across seeds."""

from __future__ import annotations

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.multicast import MultipleMulticastBurst


def fingerprint(result):
    collector = result.collector
    return (
        result.cycles,
        collector.messages_created,
        tuple(
            (tc.value, stats.deliveries, round(stats.latency.mean, 9))
            for tc, stats in sorted(
                collector.classes.items(), key=lambda kv: kv[0].value
            )
            if stats.deliveries
        ),
        tuple(
            (op.op_id, op.completed_cycle)
            for op in collector.completed_operations()
        ),
    )


def bimodal_run(seed, architecture=SwitchArchitecture.CENTRAL_BUFFER):
    config = SimulationConfig(
        num_hosts=16, seed=seed, switch_architecture=architecture
    )
    workload = BimodalTraffic(
        load=0.25, multicast_fraction=0.2, degree=4, payload_flits=16,
        scheme=MulticastScheme.HARDWARE,
        warmup_cycles=200, measure_cycles=1_500,
    )
    return run_simulation(config, workload, max_cycles=40_000)


class TestDeterminism:
    def test_same_seed_same_everything(self):
        assert fingerprint(bimodal_run(7)) == fingerprint(bimodal_run(7))

    def test_different_seed_different_traffic(self):
        assert fingerprint(bimodal_run(7)) != fingerprint(bimodal_run(8))

    def test_deterministic_on_input_buffer_switch(self):
        a = bimodal_run(3, SwitchArchitecture.INPUT_BUFFER)
        b = bimodal_run(3, SwitchArchitecture.INPUT_BUFFER)
        assert fingerprint(a) == fingerprint(b)

    def test_burst_replay(self):
        def burst(seed):
            return run_simulation(
                SimulationConfig(num_hosts=16, seed=seed),
                MultipleMulticastBurst(
                    num_multicasts=4, degree=5, payload_flits=32,
                    scheme=MulticastScheme.SOFTWARE,
                ),
            )

        assert fingerprint(burst(5)) == fingerprint(burst(5))
