"""Deadlock-freedom stress tests.

The paper's central safety claim: with full-packet bufferability enforced
at admission, asynchronous replication is deadlock free.  We hammer small
networks with adversarial traffic — many overlapping multicasts, tiny
central buffers (but still >= one packet), mixed directions — and require
complete drainage.  The kernel's stall detector turns any genuine
deadlock into a test failure rather than a hang.
"""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.network.builder import build_network
from repro.network.config import SimulationConfig, TopologyKind


def drain(network, max_cycles=300_000):
    network.sim.run_until(
        lambda: network.collector.outstanding_messages == 0
        and network.collector.messages_created > 0,
        max_cycles=max_cycles,
        stall_limit=20_000,
    )
    assert network.collector.outstanding_messages == 0


def all_to_all_multicast(network, degree, payload):
    """Every host simultaneously multicasts to its following neighbours."""
    n = network.num_hosts

    def fire():
        for host in range(n):
            ids = [(host + k + 1) % n for k in range(degree)]
            network.nodes[host].post_multicast(
                DestinationSet.from_ids(n, ids),
                payload,
                MulticastScheme.HARDWARE,
            )

    network.sim.schedule_at(0, fire)


@pytest.mark.parametrize("architecture", list(SwitchArchitecture))
class TestSaturatedMulticast:
    def test_every_host_multicasts_at_once(self, architecture):
        config = SimulationConfig(
            num_hosts=16,
            switch_architecture=architecture,
            sw_send_overhead=0,
            self_check=True,
        )
        network = build_network(config)
        all_to_all_multicast(network, degree=6, payload=48)
        drain(network)
        assert network.collector.outstanding_operations == 0

    def test_simultaneous_broadcasts(self, architecture):
        config = SimulationConfig(
            num_hosts=16,
            switch_architecture=architecture,
            sw_send_overhead=0,
        )
        network = build_network(config)

        def fire():
            for host in range(0, 16, 2):
                network.nodes[host].post_multicast(
                    DestinationSet.full(16).without(host),
                    32,
                    MulticastScheme.HARDWARE,
                )

        network.sim.schedule_at(0, fire)
        drain(network)
        assert network.collector.outstanding_operations == 0


class TestTightCentralBuffer:
    # 16 hosts: max packet = 2 header + 32 payload = 34 flits = 5 chunks;
    # 8 ports * 5 chunks * 8 flits = 320 flits is the minimal legal buffer
    # (quotas only, empty shared region).
    def test_buffer_of_exactly_the_quotas(self):
        """With a quota-only buffer every admission waits on its own
        input's guarantee; the network must still drain."""
        config = SimulationConfig(
            num_hosts=16,
            central_buffer_flits=320,
            chunk_flits=8,
            max_packet_payload_flits=32,
            sw_send_overhead=0,
            self_check=True,
        )
        config.validate()
        network = build_network(config)
        all_to_all_multicast(network, degree=5, payload=32)
        drain(network)

    def test_buffer_below_quotas_rejected(self):
        config = SimulationConfig(
            num_hosts=16,
            central_buffer_flits=312,
            chunk_flits=8,
            max_packet_payload_flits=32,
        )
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="deadlock"):
            config.validate()

    def test_mixed_unicast_and_multicast_through_tight_buffer(self):
        config = SimulationConfig(
            num_hosts=16,
            central_buffer_flits=320,
            chunk_flits=8,
            max_packet_payload_flits=32,
            sw_send_overhead=0,
        )
        network = build_network(config)

        def fire():
            for host in range(16):
                if host % 4 == 0:
                    ids = [(host + k + 3) % 16 for k in range(4)]
                    network.nodes[host].post_multicast(
                        DestinationSet.from_ids(16, ids),
                        32,
                        MulticastScheme.HARDWARE,
                    )
                else:
                    network.nodes[host].post_unicast((host + 5) % 16, 32)

        network.sim.schedule_at(0, fire)
        drain(network)


class TestOtherTopologies:
    def test_umin_saturated_multicast(self):
        config = SimulationConfig(
            num_hosts=16,
            topology=TopologyKind.UMIN,
            sw_send_overhead=0,
            self_check=True,
        )
        network = build_network(config)
        all_to_all_multicast(network, degree=5, payload=32)
        drain(network)

    def test_irregular_saturated_multicast(self):
        config = SimulationConfig(
            num_hosts=16,
            topology=TopologyKind.IRREGULAR,
            irregular_switches=8,
            irregular_extra_links=3,
            sw_send_overhead=0,
            self_check=True,
        )
        network = build_network(config)
        all_to_all_multicast(network, degree=5, payload=32)
        drain(network)

    @pytest.mark.parametrize("architecture", list(SwitchArchitecture))
    def test_repeated_waves(self, architecture):
        """Three consecutive waves of overlapping multicasts."""
        config = SimulationConfig(
            num_hosts=16,
            switch_architecture=architecture,
            sw_send_overhead=0,
        )
        network = build_network(config)
        n = network.num_hosts

        def wave(offset):
            def fire():
                for host in range(n):
                    ids = [(host + k + offset) % n for k in range(4)]
                    ids = [i for i in ids if i != host] or [(host + 9) % n]
                    network.nodes[host].post_multicast(
                        DestinationSet.from_ids(n, ids),
                        24,
                        MulticastScheme.HARDWARE,
                    )
            return fire

        for wave_index in range(3):
            network.sim.schedule_at(wave_index * 120, wave(wave_index + 1))
        drain(network)
        assert network.collector.outstanding_operations == 0
