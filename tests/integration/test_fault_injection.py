"""Protocol-fault injection: corrupted flit streams must fail loudly.

The switches and NIs enforce the link protocol eagerly
(:class:`~repro.errors.ProtocolError`), so a simulator bug — or a
deliberately corrupted stream, as injected here — can never silently
corrupt statistics.  Each test wires a real component to a raw link and
feeds it a malformed sequence.
"""

from __future__ import annotations

import pytest

from repro.core.schemes import SwitchArchitecture
from repro.errors import ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.network.builder import build_network
from repro.network.config import SimulationConfig


def make_worm(universe=8, source=0, dest=1, payload=4, dests=None):
    destinations = (
        DestinationSet.from_ids(universe, dests)
        if dests
        else DestinationSet.single(universe, dest)
    )
    message = Message(
        0, source, destinations, payload,
        TrafficClass.MULTICAST if dests else TrafficClass.UNICAST, 0,
    )
    packet = Packet(0, message, destinations, 2, payload)
    return Worm.root(packet)


def switch_rig(architecture):
    """A built one-switch network; we inject directly into a host's
    injection link (the switch's input port 0)."""
    config = SimulationConfig(
        num_hosts=8,
        arity=8,
        switch_architecture=architecture,
        max_packet_payload_flits=64,
        sw_send_overhead=0,
    )
    network = build_network(config)
    # host 0's outgoing link lands on switch port 0
    inject_link = network.interfaces[0].out_link
    return network, inject_link


@pytest.mark.parametrize("architecture", list(SwitchArchitecture))
class TestSwitchFaults:
    def test_body_flit_without_head(self, architecture):
        network, link = switch_rig(architecture)
        worm = make_worm()
        link.send(0, Flit(worm, 3))
        with pytest.raises(ProtocolError, match="without head"):
            network.sim.run(3)

    def test_out_of_order_flit(self, architecture):
        network, link = switch_rig(architecture)
        worm = make_worm()
        link.send(0, Flit(worm, 0))
        link.send(1, Flit(worm, 2))  # skipped index 1
        with pytest.raises(ProtocolError, match="out-of-order"):
            network.sim.run(4)

    def test_interleaved_worms_rejected(self, architecture):
        network, link = switch_rig(architecture)
        a = make_worm(dest=1)
        b = make_worm(dest=2)
        link.send(0, Flit(a, 0))
        link.send(1, Flit(b, 0))  # b's head before a's tail
        with pytest.raises(ProtocolError):
            network.sim.run(4)


class TestLinkFaults:
    def test_send_without_credit(self):
        network, link = switch_rig(SwitchArchitecture.CENTRAL_BUFFER)
        worm = make_worm(payload=62)
        depth = link.credits(0)
        for cycle in range(depth):
            link.send(cycle, Flit(worm, cycle))
        # the receiver has not consumed anything yet at cycle `depth`
        # if the fifo is full; force exhaustion by sending beyond depth
        if not link.can_send(depth):
            with pytest.raises(ProtocolError, match="credit"):
                link.send(depth, Flit(worm, depth))

    def test_double_send_same_cycle(self):
        network, link = switch_rig(SwitchArchitecture.CENTRAL_BUFFER)
        worm = make_worm()
        link.send(0, Flit(worm, 0))
        with pytest.raises(ProtocolError, match="second send"):
            link.send(0, Flit(worm, 1))


class TestDeliveryFaults:
    def test_misrouted_worm_caught_at_ni(self):
        """A worm that reaches the wrong host NI is rejected, not
        silently absorbed."""
        network, _ = switch_rig(SwitchArchitecture.CENTRAL_BUFFER)
        # host 3's ejection link: inject a worm addressed to host 5
        eject_link = network.interfaces[3].in_link
        stray = make_worm(dest=5)
        eject_link.send(0, Flit(stray, 0))
        with pytest.raises(ProtocolError, match="addressed to"):
            network.sim.run(3)

    def test_unreplicated_multidest_caught_at_ni(self):
        """Hardware must rewrite headers before delivery; a worm still
        carrying several destinations at a host port is a protocol bug."""
        network, _ = switch_rig(SwitchArchitecture.CENTRAL_BUFFER)
        eject_link = network.interfaces[3].in_link
        fat = make_worm(dests=[3, 5])
        eject_link.send(0, Flit(fat, 0))
        with pytest.raises(ProtocolError):
            network.sim.run(3)

    def test_unknown_packet_at_collector(self):
        """Deliveries must match registered messages."""
        network, _ = switch_rig(SwitchArchitecture.CENTRAL_BUFFER)
        ghost = make_worm(dest=3)
        with pytest.raises(ProtocolError, match="unregistered"):
            network.collector.packet_delivered(ghost.packet, 3, 0)
