"""Long messages: segmentation, multipath reordering, reassembly.

With RANDOM up-port selection, the packets of one segmented message can
take different paths through the fat tree and arrive out of order; the
reassembly layer counts packets per (message, host) so delivery must be
correct regardless.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.flits.packet import TrafficClass
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.routing.base import UpPortPolicy


def run_long_messages(num_hosts=64, payload=500, max_packet=32,
                      architecture=SwitchArchitecture.CENTRAL_BUFFER,
                      seed=1, senders=8):
    config = SimulationConfig(
        num_hosts=num_hosts,
        switch_architecture=architecture,
        max_packet_payload_flits=max_packet,
        up_port_policy=UpPortPolicy.RANDOM,
        sw_send_overhead=2,
        seed=seed,
        self_check=True,
    )
    network = build_network(config)

    def fire():
        for sender in range(senders):
            dest = (sender + num_hosts // 2) % num_hosts
            network.nodes[sender].post_unicast(dest, payload)

    network.sim.schedule_at(0, fire)
    network.sim.run_until(
        lambda: network.collector.outstanding_messages == 0
        and network.collector.messages_created == senders,
        max_cycles=400_000,
        stall_limit=30_000,
    )
    return network


class TestSegmentedUnicast:
    def test_all_fragments_reassembled(self):
        network = run_long_messages()
        stats = network.collector.classes[TrafficClass.UNICAST]
        assert stats.deliveries == 8
        assert stats.payload_flits == 8 * 500

    def test_exact_flit_counts_at_receivers(self):
        network = run_long_messages(senders=4)
        # 500 payload in 32-flit packets: 16 packets, each with 1-flit header
        expected = 500 + 16 * 1
        for dest in (32, 33, 34, 35):
            assert network.interfaces[dest].flits_ejected == expected

    def test_input_buffer_switch_too(self):
        network = run_long_messages(
            architecture=SwitchArchitecture.INPUT_BUFFER, senders=4
        )
        assert network.collector.classes[TrafficClass.UNICAST].deliveries == 4

    @given(
        payload=st.integers(33, 400),
        max_packet=st.sampled_from([16, 32, 64]),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_sizes_reassemble(self, payload, max_packet, seed):
        network = run_long_messages(
            num_hosts=16, payload=payload, max_packet=max_packet,
            seed=seed, senders=4,
        )
        stats = network.collector.classes[TrafficClass.UNICAST]
        assert stats.deliveries == 4
        assert stats.payload_flits == 4 * payload


class TestSegmentedMulticast:
    def test_long_multicast_reassembles_everywhere(self):
        config = SimulationConfig(
            num_hosts=64,
            max_packet_payload_flits=32,
            sw_send_overhead=2,
            self_check=True,
            seed=4,
        )
        network = build_network(config)
        dests = [9, 22, 41, 63]

        def fire():
            network.nodes[0].post_multicast(
                DestinationSet.from_ids(64, dests),
                200,
                MulticastScheme.HARDWARE,
            )

        network.sim.schedule_at(0, fire)
        network.sim.run_until(
            lambda: network.collector.outstanding_operations == 0
            and network.collector.operations_created == 1,
            max_cycles=400_000,
            stall_limit=30_000,
        )
        (op,) = network.collector.completed_operations()
        assert sorted(op.arrival_cycles) == dests
        # 200 payload in 32-flit packets = 7 worms, each with a 5-flit header
        expected = 200 + 7 * 5
        for dest in dests:
            assert network.interfaces[dest].flits_ejected == expected

    def test_latency_counts_until_last_fragment(self):
        """A segmented multicast's op latency covers the whole message,
        so it must exceed a single-packet multicast of the same degree."""
        def op_latency(payload):
            config = SimulationConfig(
                num_hosts=16, max_packet_payload_flits=32, seed=5
            )
            network = build_network(config)

            def fire():
                network.nodes[0].post_multicast(
                    DestinationSet.from_ids(16, [5, 9]),
                    payload,
                    MulticastScheme.HARDWARE,
                )

            network.sim.schedule_at(0, fire)
            network.sim.run_until(
                lambda: network.collector.outstanding_operations == 0
                and network.collector.operations_created == 1,
                max_cycles=200_000,
            )
            (op,) = network.collector.completed_operations()
            return op.last_latency

        assert op_latency(150) > op_latency(20) + 100
