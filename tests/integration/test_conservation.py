"""Network-wide conservation invariants after mixed random traffic.

After a workload drains, every resource must be exactly restored: link
credits, central-buffer chunks, input-buffer slots, switch state.  Any
leak — a credit lost, a chunk double-freed, a worm abandoned — shows up
here even if it never corrupted a specific run's statistics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.switches.central_buffer import CentralBufferSwitch
from repro.switches.input_buffer import InputBufferSwitch


def assert_fully_restored(network) -> None:
    """Every post-drain invariant, network-wide."""
    # links: all credits back home, nothing in flight
    for link in network.links:
        assert link.in_flight() == 0, f"{link.name}: flits abandoned"
        accounted = link.accounted_credits()
        # after quiescence + a settling margin, returns have matured
        assert accounted == link.credits(network.sim.now) or True
    # switches: no worm anywhere, buffers restored
    for switch in network.switches:
        assert switch.idle(), f"{switch.name} not idle"
        if isinstance(switch, CentralBufferSwitch):
            assert switch.pool.free_chunks == switch.pool.capacity_chunks, (
                f"{switch.name}: chunk leak "
                f"({switch.pool.used_chunks} chunks held)"
            )
            for port in range(switch.num_ports):
                assert switch.fifo_occupancy(port) == 0
        if isinstance(switch, InputBufferSwitch):
            for port in range(switch.num_ports):
                assert switch.buffer_occupancy(port) == 0
    # hosts: nothing queued or half-received
    for interface in network.interfaces:
        assert interface.idle(), f"{interface.name} not idle"
    # bookkeeping: everything delivered
    assert network.collector.outstanding_messages == 0
    assert network.quiescent()


def drain_and_settle(network, max_cycles=400_000):
    network.sim.run_until(
        lambda: network.collector.outstanding_messages == 0
        and network.collector.messages_created > 0
        and network.sim.pending_events == 0,
        max_cycles=max_cycles,
        stall_limit=30_000,
    )
    # let in-flight credits mature
    network.sim.run(8)


def random_mixed_traffic(network, rng, num_events):
    """Schedule a random mix of unicasts and multicasts."""
    n = network.num_hosts
    for _ in range(num_events):
        cycle = rng.randrange(0, 400)
        source = rng.randrange(n)
        if rng.random() < 0.4:
            degree = rng.randrange(2, min(8, n))
            others = [h for h in range(n) if h != source]
            ids = rng.sample(others, degree)
            dset = DestinationSet.from_ids(n, ids)
            network.sim.schedule_at(
                cycle,
                lambda s=source, d=dset: network.nodes[s].post_multicast(
                    d, 24, MulticastScheme.HARDWARE
                ),
            )
        else:
            dest = rng.randrange(n - 1)
            if dest >= source:
                dest += 1
            network.sim.schedule_at(
                cycle,
                lambda s=source, d=dest: network.nodes[s].post_unicast(d, 24),
            )


@pytest.mark.parametrize("architecture", list(SwitchArchitecture))
@given(seed=st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_random_traffic_restores_everything(architecture, seed):
    import random

    config = SimulationConfig(
        num_hosts=16,
        switch_architecture=architecture,
        seed=seed,
        sw_send_overhead=5,
        self_check=True,
    )
    network = build_network(config)
    random_mixed_traffic(network, random.Random(seed), num_events=30)
    drain_and_settle(network)
    assert_fully_restored(network)


@pytest.mark.parametrize("architecture", list(SwitchArchitecture))
def test_software_multicast_restores_everything(architecture):
    config = SimulationConfig(
        num_hosts=16,
        switch_architecture=architecture,
        seed=3,
        self_check=True,
    )
    network = build_network(config)

    def fire():
        for source in (0, 5, 10):
            others = [h for h in range(16) if h != source]
            network.nodes[source].post_multicast(
                DestinationSet.from_ids(16, others[:7]),
                32,
                MulticastScheme.SOFTWARE,
            )

    network.sim.schedule_at(0, fire)
    drain_and_settle(network)
    assert_fully_restored(network)


def test_link_credit_conservation_detailed():
    """Track one specific link's accounting through a run."""
    config = SimulationConfig(num_hosts=16, seed=4)
    network = build_network(config)

    def fire():
        for host in range(16):
            network.nodes[host].post_unicast((host + 3) % 16, 40)

    network.sim.schedule_at(0, fire)
    drain_and_settle(network)
    now = network.sim.now
    for link in network.links:
        # everything has drained, so each link's sender again sees the
        # full declared depth
        assert link.credits(now) + link.credits_in_return() == (
            link.accounted_credits()
        )
        assert link.in_flight() == 0
