"""Traffic generators: windows, loads, determinism, completion."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme
from repro.flits.packet import TrafficClass
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation, run_workload
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.multicast import (
    MultipleMulticastBurst,
    RandomMulticastStream,
    SingleMulticast,
)
from repro.traffic.schedules import PoissonArrivals, mean_gap_for_load
from repro.traffic.unicast import PermutationTraffic, UniformRandomUnicast


def cfg(**overrides):
    defaults = dict(num_hosts=16)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSchedules:
    def test_mean_gap_for_load(self):
        assert mean_gap_for_load(0.5, 10) == 20.0
        assert mean_gap_for_load(1.0, 33) == 33.0
        with pytest.raises(ValueError):
            mean_gap_for_load(0.0, 10)
        with pytest.raises(ValueError):
            mean_gap_for_load(1.5, 10)
        with pytest.raises(ValueError):
            mean_gap_for_load(0.5, 0)

    def test_poisson_mean_is_close(self):
        import random

        arrivals = PoissonArrivals(mean_gap=50.0)
        rng = random.Random(1)
        gaps = [arrivals.next_gap(rng) for _ in range(4_000)]
        assert all(g >= 1 for g in gaps)
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(50.0, rel=0.1)

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)


class TestUniformRandomUnicast:
    def test_generation_stops_and_drains(self):
        workload = UniformRandomUnicast(
            load=0.2, payload_flits=16, warmup_cycles=100, measure_cycles=500
        )
        result = run_simulation(cfg(), workload, max_cycles=60_000)
        assert result.completed
        assert result.collector.outstanding_messages == 0

    def test_load_is_delivered_below_saturation(self):
        workload = UniformRandomUnicast(
            load=0.25, payload_flits=16, warmup_cycles=200,
            measure_cycles=2_000,
        )
        result = run_simulation(cfg(), workload, max_cycles=120_000)
        throughput = result.throughput(TrafficClass.UNICAST, 2_000)
        # accepted ~= offered * payload share of the packet
        offered_payload = 0.25 * 16 / 17
        assert throughput == pytest.approx(offered_payload, rel=0.2)

    def test_no_self_messages(self):
        workload = UniformRandomUnicast(
            load=0.3, payload_flits=8, warmup_cycles=0, measure_cycles=500
        )
        result = run_simulation(cfg(), workload, max_cycles=60_000)
        # Message construction rejects self-targets, so reaching here with
        # deliveries proves the generator never picked one.
        assert result.unicast_latency.count > 0

    def test_sample_window_excludes_warmup(self):
        network = build_network(cfg())
        workload = UniformRandomUnicast(
            load=0.2, payload_flits=16, warmup_cycles=300,
            measure_cycles=700,
        )
        run_workload(network, workload, max_cycles=60_000)
        assert network.collector.sample_start == 300
        assert network.collector.sample_end == 1_000

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformRandomUnicast(load=0.5, payload_flits=0)
        with pytest.raises(ValueError):
            UniformRandomUnicast(load=0.5, measure_cycles=0)


class TestPermutation:
    def test_explicit_permutation(self):
        mapping = [(h + 2) % 16 for h in range(16)]
        result = run_simulation(
            cfg(), PermutationTraffic(payload_flits=8, permutation=mapping)
        )
        assert result.unicast_latency.count == 16

    def test_identity_entries_skipped(self):
        mapping = list(range(16))
        mapping[0], mapping[1] = 1, 0
        result = run_simulation(
            cfg(), PermutationTraffic(payload_flits=8, permutation=mapping)
        )
        assert result.unicast_latency.count == 2

    def test_non_permutation_rejected(self):
        network = build_network(cfg())
        workload = PermutationTraffic(payload_flits=8, permutation=[0] * 16)
        with pytest.raises(ValueError):
            workload.start(network)


class TestMulticastWorkloads:
    def test_single_multicast_requires_exactly_one_spec(self):
        with pytest.raises(ValueError):
            SingleMulticast(
                source=0, payload_flits=8,
                scheme=MulticastScheme.HARDWARE,
            )
        with pytest.raises(ValueError):
            SingleMulticast(
                source=0, payload_flits=8, scheme=MulticastScheme.HARDWARE,
                destinations=[1], degree=2,
            )

    def test_burst_source_count_bounded(self):
        network = build_network(cfg())
        workload = MultipleMulticastBurst(
            num_multicasts=17, degree=2, payload_flits=8,
            scheme=MulticastScheme.HARDWARE,
        )
        with pytest.raises(ValueError):
            workload.start(network)

    def test_burst_sources_are_distinct(self):
        network = build_network(cfg())
        workload = MultipleMulticastBurst(
            num_multicasts=16, degree=2, payload_flits=8,
            scheme=MulticastScheme.HARDWARE,
        )
        result = run_workload(network, workload, max_cycles=60_000)
        ops = network.collector.completed_operations()
        assert len({op.source for op in ops}) == 16

    def test_degree_must_fit_universe(self):
        network = build_network(cfg())
        workload = MultipleMulticastBurst(
            num_multicasts=1, degree=16, payload_flits=8,
            scheme=MulticastScheme.HARDWARE,
        )
        with pytest.raises(ValueError):
            workload.start(network)

    def test_stream_generates_until_window_closes(self):
        workload = RandomMulticastStream(
            ops_per_host_per_kilocycle=3.0,
            degree=3,
            payload_flits=8,
            scheme=MulticastScheme.HARDWARE,
            warmup_cycles=100,
            measure_cycles=900,
        )
        result = run_simulation(cfg(), workload, max_cycles=120_000)
        assert result.completed
        assert result.collector.operations_created > 5

    def test_stream_rate_validated(self):
        with pytest.raises(ValueError):
            RandomMulticastStream(
                ops_per_host_per_kilocycle=0, degree=2, payload_flits=8,
                scheme=MulticastScheme.HARDWARE,
            )


class TestBimodal:
    def test_mix_produces_both_classes(self):
        workload = BimodalTraffic(
            load=0.25, multicast_fraction=0.3, degree=4, payload_flits=16,
            scheme=MulticastScheme.HARDWARE,
            warmup_cycles=100, measure_cycles=1_500,
        )
        result = run_simulation(cfg(), workload, max_cycles=120_000)
        assert result.unicast_latency.count > 0
        assert result.op_last_latency.count > 0

    def test_fraction_zero_is_pure_unicast(self):
        workload = BimodalTraffic(
            load=0.2, multicast_fraction=0.0, degree=4, payload_flits=16,
            scheme=MulticastScheme.HARDWARE,
            warmup_cycles=50, measure_cycles=500,
        )
        result = run_simulation(cfg(), workload, max_cycles=60_000)
        assert result.collector.operations_created == 0
        assert result.unicast_latency.count > 0

    def test_fraction_one_is_pure_multicast(self):
        workload = BimodalTraffic(
            load=0.1, multicast_fraction=1.0, degree=3, payload_flits=16,
            scheme=MulticastScheme.HARDWARE,
            warmup_cycles=50, measure_cycles=500,
        )
        result = run_simulation(cfg(), workload, max_cycles=120_000)
        assert result.unicast_latency.count == 0
        assert result.collector.operations_created > 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            BimodalTraffic(load=0.2, multicast_fraction=1.5)

    def test_same_seed_same_message_stream(self):
        def run(scheme):
            workload = BimodalTraffic(
                load=0.2, multicast_fraction=0.25, degree=4,
                payload_flits=16, scheme=scheme,
                warmup_cycles=50, measure_cycles=800,
            )
            result = run_simulation(
                cfg(seed=9), workload, max_cycles=120_000
            )
            return result.collector.operations_created

        # the generated operation stream is identical across schemes, so
        # comparisons isolate the implementation, not the workload
        assert run(MulticastScheme.HARDWARE) == run(MulticastScheme.SOFTWARE)
