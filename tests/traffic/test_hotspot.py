"""Hot-spot workload."""

from __future__ import annotations

import pytest

from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation, run_workload
from repro.traffic.hotspot import HotspotTraffic


def cfg(**overrides):
    defaults = dict(num_hosts=16)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestHotspotTraffic:
    def test_completes_and_drains(self):
        workload = HotspotTraffic(
            load=0.2, hotspot_fraction=0.05, payload_flits=16,
            warmup_cycles=100, measure_cycles=800,
        )
        result = run_simulation(cfg(), workload, max_cycles=120_000)
        assert result.completed
        assert result.unicast_latency.count > 0

    def test_hot_host_receives_disproportionately(self):
        network = build_network(cfg(seed=3))
        workload = HotspotTraffic(
            load=0.25, hotspot_fraction=0.4, hotspot_host=5,
            payload_flits=16, warmup_cycles=0, measure_cycles=2_000,
        )
        run_workload(network, workload, max_cycles=200_000)
        ejected = [ni.flits_ejected for ni in network.interfaces]
        others = [e for host, e in enumerate(ejected) if host != 5]
        assert ejected[5] > 3 * max(others)

    def test_fraction_zero_is_uniform(self):
        network = build_network(cfg(seed=4))
        workload = HotspotTraffic(
            load=0.25, hotspot_fraction=0.0, hotspot_host=5,
            payload_flits=16, warmup_cycles=0, measure_cycles=2_000,
        )
        run_workload(network, workload, max_cycles=200_000)
        ejected = [ni.flits_ejected for ni in network.interfaces]
        assert max(ejected) < 3 * (sum(ejected) / len(ejected))

    def test_latency_grows_with_hot_fraction(self):
        def latency(fraction):
            workload = HotspotTraffic(
                load=0.3, hotspot_fraction=fraction, payload_flits=16,
                warmup_cycles=200, measure_cycles=2_000,
            )
            result = run_simulation(
                cfg(seed=6), workload, max_cycles=300_000
            )
            return result.unicast_latency.mean

        assert latency(0.3) > latency(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HotspotTraffic(load=0.2, hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotTraffic(load=0.2, payload_flits=0)

    def test_out_of_range_hot_host(self):
        network = build_network(cfg())
        workload = HotspotTraffic(load=0.2, hotspot_host=99)
        with pytest.raises(ValueError):
            workload.start(network)
