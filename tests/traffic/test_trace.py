"""Trace-driven workload replay."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation
from repro.traffic.trace import TraceRecord, TraceWorkload


def sample_records():
    return [
        TraceRecord(0, 0, (5,), 16),
        TraceRecord(10, 1, (2, 3, 9), 24, MulticastScheme.HARDWARE),
        TraceRecord(40, 7, (0,), 8),
        TraceRecord(40, 8, (1, 4), 8, MulticastScheme.SOFTWARE),
    ]


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 0, (1,), 8)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, (), 8)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, (1,), 0)
        with pytest.raises(ValueError):
            TraceRecord(0, 0, (1, 2), 8)  # multidest without scheme

    def test_csv_roundtrip(self):
        for record in sample_records():
            parsed = TraceRecord.from_csv_row(record.to_csv_row())
            assert parsed == record

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_csv_row("1,2,3")


class TestTraceWorkload:
    def test_replay_delivers_everything(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            TraceWorkload(sample_records()),
        )
        assert result.completed
        collector = result.collector
        assert collector.operations_created == 2
        assert collector.outstanding_messages == 0

    def test_records_sorted_by_cycle(self):
        workload = TraceWorkload(list(reversed(sample_records())))
        assert [r.cycle for r in workload.records] == [0, 10, 40, 40]

    def test_csv_roundtrip_through_workload(self):
        original = TraceWorkload(sample_records())
        parsed = TraceWorkload.from_csv(original.to_csv())
        assert parsed.records == original.records

    def test_csv_ignores_comments_and_blanks(self):
        text = "# header\n\n0,0,8,unicast,5\n"
        workload = TraceWorkload.from_csv(text)
        assert len(workload.records) == 1

    def test_identical_trace_identical_results_across_runs(self):
        def run():
            return run_simulation(
                SimulationConfig(num_hosts=16, seed=5),
                TraceWorkload(sample_records()),
            ).summary()

        assert run() == run()

    def test_same_trace_isolates_scheme_differences(self):
        """The trace pins the message sequence, so only the multicast
        implementation differs between these runs."""
        records = [
            TraceRecord(0, 0, (3, 6, 9, 12), 32, MulticastScheme.HARDWARE)
        ]
        hw = run_simulation(
            SimulationConfig(num_hosts=16), TraceWorkload(records)
        )
        sw_records = [
            TraceRecord(0, 0, (3, 6, 9, 12), 32, MulticastScheme.SOFTWARE)
        ]
        sw = run_simulation(
            SimulationConfig(num_hosts=16), TraceWorkload(sw_records)
        )
        assert hw.op_last_latency.mean < sw.op_last_latency.mean

    def test_out_of_range_source_rejected(self):
        from repro.network.builder import build_network

        workload = TraceWorkload([TraceRecord(0, 99, (5,), 8)])
        network = build_network(SimulationConfig(num_hosts=16))
        with pytest.raises(ValueError):
            workload.start(network)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload([])
