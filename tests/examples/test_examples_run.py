"""Example scripts must run end to end.

The fast examples run in-process via runpy (so coverage and failures are
ordinary test failures); the slower sweep examples are only checked for
importability and a main() entry point.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST = ["quickstart.py", "worm_anatomy.py", "irregular_cluster.py"]
SLOW = [
    "mpi_collectives.py",
    "dsm_invalidation.py",
    "barrier_and_reduce.py",
    "capacity_planning.py",
]


class TestExamplesExist:
    def test_at_least_seven_examples(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 7

    def test_inventory_is_current(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert names == set(FAST) | set(SLOW)

    @pytest.mark.parametrize("name", FAST + SLOW)
    def test_has_main_and_docstring(self, name):
        source = (EXAMPLES / name).read_text()
        assert '"""' in source.split("\n", 2)[2 if source.startswith("#!") else 0], (
            f"{name} lacks a module docstring"
        )
        assert "def main()" in source
        assert '__name__ == "__main__"' in source


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name} produced no meaningful output"
