"""Benchmark smoke test: every bench module must import and assert green.

The ``benchmarks/`` suite is normally run by hand (it needs
``pytest-benchmark``), which means it can silently rot as the library
evolves.  This module imports every ``benchmarks/bench_*.py``, runs its
``test_*`` assertion functions once at BENCH scale through a stub
``benchmark`` fixture, and fails the main suite if any benchmark's
import, run, or shape assertion breaks.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).parent.parent.parent / "benchmarks"
BENCH_MODULES = sorted(
    path.stem for path in BENCHMARKS_DIR.glob("bench_*.py")
)


class StubBenchmark:
    """Replaces pytest-benchmark's fixture: run once, no timing stats."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))


def _load(module_name: str):
    """Import one bench module with benchmarks/ on sys.path (for
    ``_benchlib``), without requiring an installed package."""
    if str(BENCHMARKS_DIR) not in sys.path:
        sys.path.insert(0, str(BENCHMARKS_DIR))
    if module_name in sys.modules:
        return sys.modules[module_name]
    spec = importlib.util.spec_from_file_location(
        module_name, BENCHMARKS_DIR / f"{module_name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def test_every_benchmark_is_covered():
    """The glob found the full suite (guards against silent renames)."""
    assert len(BENCH_MODULES) == 18
    ids = {name.split("_")[1] for name in BENCH_MODULES}
    assert ids == {
        "e1", "e2", "e3", "e4", "e5", "e6", "e7",
        "a1", "a2", "a3", "a4", "a5", "x1", "x2", "x3", "x4",
        "kernel", "store",
    }


@pytest.mark.parametrize("module_name", BENCH_MODULES)
def test_benchmark_assertions_hold(module_name):
    module = _load(module_name)
    test_fns = [
        getattr(module, name)
        for name in sorted(dir(module))
        if name.startswith("test_") and callable(getattr(module, name))
    ]
    assert test_fns, f"{module_name} defines no test_* assertion function"
    for fn in test_fns:
        fn(StubBenchmark())
