"""Golden-snapshot regression tests for every experiment.

Each experiment's quick-scale ``rows`` are checked in as JSON under
``tests/experiments/golden/``.  The simulator is deterministic
(docs/testing.md §5) and reduction is order-independent
(``test_parallel.py``), so these must match *exactly* — any diff is a
numeric change some PR made, intentionally or not.

After an intended change, refresh the snapshots with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py \
        --regenerate-golden

and commit the JSON diff alongside the code that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.common import QUICK
from repro.experiments.runner import EXPERIMENTS

GOLDEN_DIR = Path(__file__).parent / "golden"


def _canonical(rows):
    """Rows exactly as JSON stores them (round-trip normalises types)."""
    return json.loads(json.dumps(rows))


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_quick_scale_rows_match_golden(name, request):
    regenerate = request.config.getoption("--regenerate-golden")
    path = GOLDEN_DIR / f"{name}.json"
    result = EXPERIMENTS[name](QUICK, jobs=1)
    rows = _canonical(result.rows)

    if regenerate:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(rows, indent=1) + "\n")
        return

    assert path.exists(), (
        f"missing golden snapshot {path.name}; generate it with "
        "--regenerate-golden"
    )
    golden = json.loads(path.read_text())
    assert rows == golden, (
        f"{name}: quick-scale rows drifted from {path.name} — if the "
        "change is intended, rerun with --regenerate-golden and commit "
        "the diff"
    )
