"""Experiment harness: structure and shape at micro scale.

These smoke-test the experiment functions themselves (row structure,
table rendering, scheme coverage) with tiny sweeps; the full shape
assertions live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_cb_bandwidth_ablation,
    run_encoding_ablation,
    run_routing_mode_ablation,
)
from repro.experiments.bimodal import run_bimodal
from repro.experiments.common import (
    PAPER,
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.experiments.degree_sweep import run_degree_sweep
from repro.experiments.length_sweep import run_length_sweep
from repro.experiments.multiple_multicast import run_multiple_multicast
from repro.experiments.parameters import run_parameters
from repro.experiments.runner import EXPERIMENTS, main
from repro.experiments.system_size import run_system_size
from repro.experiments.unicast_baseline import run_unicast_baseline

MICRO = Scale(
    name="micro",
    repeats=1,
    warmup_cycles=50,
    measure_cycles=400,
    max_cycles=60_000,
)


class TestCommon:
    def test_scales_are_ordered(self):
        assert QUICK.repeats < PAPER.repeats
        assert QUICK.measure_cycles < PAPER.measure_cycles

    def test_seed_lists_deterministic(self):
        assert QUICK.seeds() == QUICK.seeds()
        assert len(PAPER.seeds()) == PAPER.repeats

    def test_scheme_apply(self):
        config = base_config(16)
        cb = Scheme.CB_HW.apply(config)
        ib = Scheme.IB_HW.apply(config)
        assert cb.switch_architecture != ib.switch_architecture
        assert Scheme.SW.multicast_scheme.value == "software"

    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([2.0, 4.0]) == 3.0

    def test_result_series_and_value(self):
        from repro.metrics.report import Table

        result = ExperimentResult("x", Table("t", ["a"]))
        result.rows = [
            {"k": 1, "v": 10, "s": "a"},
            {"k": 2, "v": 20, "s": "a"},
            {"k": 1, "v": 30, "s": "b"},
        ]
        assert result.series("k", "v", s="a") == [(1, 10), (2, 20)]
        assert result.value("v", k=1, s="b") == 30
        assert result.value("v", s="a") is None  # ambiguous


class TestExperimentStructure:
    def test_e1_rows(self):
        result = run_multiple_multicast(
            scale=MICRO, num_hosts=16, concurrency=(1, 2), degree=3,
            payload_flits=16,
        )
        assert len(result.rows) == 2 * len(list(Scheme))
        assert "E1" in result.render()

    def test_e2_skips_oversized_degrees(self):
        result = run_degree_sweep(
            scale=MICRO, num_hosts=16, degrees=(2, 63), payload_flits=16,
        )
        assert {row["degree"] for row in result.rows} == {2}

    def test_e3_rows(self):
        result = run_length_sweep(
            scale=MICRO, num_hosts=16, lengths=(8, 16), degree=3,
        )
        assert {row["length"] for row in result.rows} == {8, 16}

    def test_e4_rows(self):
        result = run_bimodal(
            scale=MICRO, num_hosts=16, loads=(0.1,), degree=3,
        )
        schemes = {row["scheme"] for row in result.rows}
        assert schemes == {"cb-hw", "sw"}

    def test_e5_rows(self):
        result = run_system_size(
            scale=MICRO, sizes=(16,), payload_flits=16,
        )
        workloads = {row["workload"] for row in result.rows}
        assert workloads == {"broadcast", "quarter"}

    def test_e6_rows(self):
        result = run_unicast_baseline(
            scale=MICRO, num_hosts=16, loads=(0.1,),
        )
        assert {row["scheme"] for row in result.rows} == {"cb-hw", "ib-hw"}
        for row in result.rows:
            assert row["throughput"] > 0

    def test_e7_calibration_exact(self):
        result = run_parameters(scale=MICRO, num_hosts=16)
        simulated = result.value("value", parameter="zero_load_simulated")
        model = result.value("value", parameter="zero_load_model")
        assert simulated == model

    def test_a1_rows(self):
        result = run_cb_bandwidth_ablation(
            scale=MICRO, num_hosts=16, bandwidths=(2, 8),
            num_multicasts=2, degree=3, payload_flits=16,
        )
        assert len(result.rows) == 2

    def test_a2_rows(self):
        result = run_routing_mode_ablation(
            scale=MICRO, num_hosts=16, degrees=(3,), payload_flits=16,
        )
        assert {row["mode"] for row in result.rows} == {
            "turnaround", "branch_on_up"
        }

    def test_a3_rows(self):
        result = run_encoding_ablation(scale=MICRO, sizes=(16,), degree=3)
        (row,) = result.rows
        assert row["header_bitstring"] >= 1
        assert row["latency_multiport"] > 0


class TestRunner:
    def test_registry_covers_design_index(self):
        assert set(EXPERIMENTS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7",
            "a1", "a2", "a3", "a4", "a5", "x1", "x2", "x3", "x4",
        }

    def test_cli_single_experiment(self, capsys):
        assert main(["--experiment", "e7", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out
        assert "zero-load" in out

    def test_cli_csv_flag(self, capsys):
        assert main(["--experiment", "e7", "--scale", "quick", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "parameter,value" in out

    def test_cli_requires_selection(self):
        with pytest.raises(SystemExit):
            main(["--scale", "quick"])
