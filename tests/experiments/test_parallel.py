"""Parallel-equals-serial: the acceptance gate for the execution engine.

The determinism guarantee of docs/testing.md §5 (same config + seed →
bit-identical replay) is extended here to worker scheduling: running an
experiment grid on a multiprocessing pool must produce *exactly* the
rows and rendered table of the serial path.  Three layers enforce it:

* unit tests of the plan/execute machinery itself;
* end-to-end equivalence runs (``jobs=1`` vs ``jobs=4``) for several
  experiments spanning the shared worker, the custom barrier worker, and
  the occupancy-probe worker;
* a hypothesis property: reduction is order-independent by construction,
  so feeding outcomes to reduce in any shuffled order yields the same
  result.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import Scale, Scheme
from repro.experiments.cross_topology import (
    plan_cross_topology,
    reduce_cross_topology,
    run_cross_topology,
)
from repro.experiments.degree_sweep import run_degree_sweep
from repro.experiments.extensions import run_barrier_scaling
from repro.experiments.multiple_multicast import (
    plan_multiple_multicast,
    reduce_multiple_multicast,
    run_multiple_multicast,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    RunOutcome,
    RunSpec,
    StderrProgress,
    default_jobs,
    execute_plan,
    resolve,
    run_outcomes,
    stderr_progress,
    summarize_timing,
)

#: QUICK-shaped but smaller, so equivalence runs stay test-suite friendly
SMALL = Scale(
    name="small",
    repeats=2,
    warmup_cycles=100,
    measure_cycles=600,
    max_cycles=60_000,
)


def _double(x):
    return 2 * x


def _boom():
    raise RuntimeError("worker exploded")


class TestPlanMachinery:
    def test_runspec_executes_in_process(self):
        spec = RunSpec(key=(1,), fn=_double, kwargs={"x": 21})
        assert spec.execute() == 42

    def test_duplicate_keys_rejected(self):
        specs = [
            RunSpec(key=(1,), fn=_double, kwargs={"x": 1}),
            RunSpec(key=(1,), fn=_double, kwargs={"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate run key"):
            ExecutionPlan("dup", specs)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_serial_and_pool_agree(self):
        plan = ExecutionPlan(
            "squares",
            [
                RunSpec(key=(i,), fn=_double, kwargs={"x": i})
                for i in range(10)
            ],
        )
        serial = execute_plan(plan, jobs=1)
        pooled = execute_plan(plan, jobs=4)
        assert serial == pooled == {(i,): 2 * i for i in range(10)}

    def test_outcomes_carry_timing_and_keys(self):
        plan = ExecutionPlan(
            "timed",
            [RunSpec(key=(i,), fn=_double, kwargs={"x": i}) for i in range(3)],
        )
        outcomes = run_outcomes(plan, jobs=1)
        assert [outcome.key for outcome in outcomes] == [(0,), (1,), (2,)]
        assert all(outcome.wall_seconds >= 0 for outcome in outcomes)
        assert resolve(outcomes) == {(i,): 2 * i for i in range(3)}

    def test_progress_called_per_run(self):
        seen = []
        plan = ExecutionPlan(
            "prog",
            [RunSpec(key=(i,), fn=_double, kwargs={"x": i}) for i in range(4)],
        )
        execute_plan(
            plan,
            jobs=1,
            progress=lambda outcome, done, total: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_stderr_progress_prints(self, capsys):
        plan = ExecutionPlan(
            "cli", [RunSpec(key=("a", 1), fn=_double, kwargs={"x": 1})]
        )
        execute_plan(plan, jobs=1, progress=stderr_progress("cli"))
        err = capsys.readouterr().err
        assert "[cli 1/1] a/1" in err

    def test_worker_error_propagates(self):
        plan = ExecutionPlan("boom", [RunSpec(key=(0,), fn=_boom)])
        with pytest.raises(RuntimeError, match="worker exploded"):
            execute_plan(plan, jobs=1)
        with pytest.raises(RuntimeError, match="worker exploded"):
            execute_plan(
                plan.__class__(
                    "boom2",
                    [RunSpec(key=(i,), fn=_boom if i else _double,
                             kwargs={} if i else {"x": 1})
                     for i in range(2)],
                ),
                jobs=2,
            )


def assert_equivalent(serial, pooled):
    """Rows and rendered tables must match exactly, not approximately."""
    assert serial.rows == pooled.rows
    assert serial.render() == pooled.render()


class TestParallelEqualsSerial:
    """jobs=1 and jobs=4 must be bit-identical (docs/testing.md §5)."""

    def test_e1_multiple_multicast(self):
        kwargs = dict(
            scale=SMALL, num_hosts=16, concurrency=(1, 4), degree=3,
            payload_flits=16,
        )
        assert_equivalent(
            run_multiple_multicast(jobs=1, **kwargs),
            run_multiple_multicast(jobs=4, **kwargs),
        )

    def test_e2_degree_sweep(self):
        kwargs = dict(
            scale=SMALL, num_hosts=16, degrees=(2, 6), payload_flits=16,
        )
        assert_equivalent(
            run_degree_sweep(jobs=1, **kwargs),
            run_degree_sweep(jobs=4, **kwargs),
        )

    def test_x1_barrier_custom_worker(self):
        kwargs = dict(scale=SMALL, sizes=(16,))
        assert_equivalent(
            run_barrier_scaling(jobs=1, **kwargs),
            run_barrier_scaling(jobs=4, **kwargs),
        )

    def test_x4_cross_topology(self):
        kwargs = dict(scale=SMALL, num_hosts=16, degrees=(4,))
        assert_equivalent(
            run_cross_topology(jobs=1, **kwargs),
            run_cross_topology(jobs=4, **kwargs),
        )


class TestOrderIndependentReduction:
    """Reduce folds by key lookup, so outcome order cannot matter."""

    @classmethod
    def setup_class(cls):
        cls.plan = plan_multiple_multicast(
            scale=SMALL, num_hosts=16, concurrency=(1, 2), degree=3,
            payload_flits=16, schemes=[Scheme.CB_HW, Scheme.SW],
        )
        cls.outcomes = run_outcomes(cls.plan, jobs=1)
        cls.baseline = reduce_multiple_multicast(
            cls.plan,
            dict(
                sorted(
                    resolve(cls.outcomes).items(),
                    key=lambda kv: repr(kv[0]),
                )
            ),
        )

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_shuffled_subset_reduces_identically(self, data):
        """Any permutation — and any superset ordering — of the outcomes
        reduces to the same rows and table as the sorted order."""
        shuffled = data.draw(st.permutations(self.outcomes))
        result = reduce_multiple_multicast(self.plan, resolve(shuffled))
        assert result.rows == self.baseline.rows
        assert result.render() == self.baseline.render()

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_subset_plan_matches_full_grid_values(self, data):
        """Executing any subset of the grid yields the same per-run
        values the full grid produced — runs are truly independent."""
        subset = data.draw(
            st.lists(
                st.sampled_from(self.plan.specs),
                min_size=1,
                max_size=4,
                unique_by=lambda spec: spec.key,
            )
        )
        sub_plan = ExecutionPlan("subset", list(subset))
        sub_results = execute_plan(sub_plan, jobs=1)
        full = resolve(self.outcomes)
        for key, value in sub_results.items():
            assert value.op_last_latency == full[key].op_last_latency


def _outcome(label, seconds):
    return RunOutcome(key=(label,), value=None, wall_seconds=seconds)


class TestTimingSummary:
    def test_empty_outcomes(self):
        summary = summarize_timing([], jobs=4, wall_seconds=1.0)
        assert summary.runs == 0
        assert summary.utilisation == 0.0
        assert summary.stragglers == ()
        assert "0 run(s)" in summary.render()

    def test_medians_even_and_odd(self):
        odd = summarize_timing(
            [_outcome(c, t) for c, t in zip("abc", (1.0, 3.0, 2.0))],
            jobs=1, wall_seconds=6.0,
        )
        assert odd.median_seconds == 2.0
        even = summarize_timing(
            [_outcome(c, t) for c, t in zip("abcd", (1.0, 2.0, 3.0, 4.0))],
            jobs=1, wall_seconds=10.0,
        )
        assert even.median_seconds == 2.5
        assert even.max_seconds == 4.0
        assert even.mean_seconds == 2.5

    def test_stragglers_exceed_twice_median_sorted_desc(self):
        summary = summarize_timing(
            [
                _outcome("fast1", 1.0),
                _outcome("fast2", 1.0),
                _outcome("slow", 5.0),
                _outcome("slower", 9.0),
                _outcome("ok", 1.5),
            ],
            jobs=2,
            wall_seconds=10.0,
        )
        assert summary.median_seconds == 1.5
        assert [label for label, _ in summary.stragglers] == [
            "slower", "slow"
        ]
        assert "stragglers (>2x median)" in summary.render()

    def test_utilisation_capped_and_zero_guarded(self):
        perfect = summarize_timing(
            [_outcome("a", 4.0)], jobs=2, wall_seconds=1.0
        )
        assert perfect.utilisation == 1.0  # capped despite work > capacity
        idle = summarize_timing(
            [_outcome("a", 1.0)], jobs=2, wall_seconds=0.0
        )
        assert idle.utilisation == 0.0

    def test_render_reports_pool_shape(self):
        summary = summarize_timing(
            [_outcome(c, 1.0) for c in "abcd"], jobs=4, wall_seconds=2.0
        )
        text = summary.render()
        assert "4 run(s): 4.00s work in 2.00s wall on 4 job(s)" in text
        assert "pool utilisation 50%" in text


class TestStderrProgress:
    def test_accumulates_outcomes_and_summarises(self, capsys):
        plan = ExecutionPlan(
            "acc",
            [RunSpec(key=(i,), fn=_double, kwargs={"x": i}) for i in range(3)],
        )
        progress = StderrProgress("acc")
        execute_plan(plan, jobs=1, progress=progress)
        assert len(progress.outcomes) == 3
        summary = progress.summary(jobs=1)
        assert summary.runs == 3
        assert summary.wall_seconds > 0
        err = capsys.readouterr().err
        assert "[acc 3/3]" in err

    def test_factory_returns_accumulating_instance(self):
        progress = stderr_progress("compat")
        assert isinstance(progress, StderrProgress)
        assert progress.outcomes == []


class TestCrossTopologyPlanShape:
    def test_plan_grid_matches_reduce_expectations(self):
        plan = plan_cross_topology(scale=SMALL, num_hosts=16, degrees=(4,))
        keys = {spec.key for spec in plan.specs}
        assert len(keys) == len(plan.specs)
        results = execute_plan(plan, jobs=1)
        result = reduce_cross_topology(plan, results)
        assert {row["degree"] for row in result.rows} == {4}
