"""Saturation search."""

from __future__ import annotations

import pytest

from repro.core.schemes import SwitchArchitecture
from repro.experiments.saturation import find_saturation_load, probe_load
from repro.network.config import SimulationConfig


def cfg(**overrides):
    defaults = dict(num_hosts=16)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestProbe:
    def test_low_load_unsaturated(self):
        probe = probe_load(cfg(), load=0.1, measure_cycles=3_000)
        assert not probe.throughput_saturated
        assert not probe.saturated()
        assert probe.accepted == pytest.approx(probe.offered, rel=0.3)

    def test_throttled_network_saturates(self):
        """Starving central-buffer bandwidth caps what the switches can
        move, so a high offered load cannot be accepted."""
        throttled = cfg(cb_write_bandwidth=1, cb_read_bandwidth=1)
        probe = probe_load(throttled, load=0.9, measure_cycles=1_500)
        assert probe.saturated()

    def test_latency_knee_criterion(self):
        """A probe that carries the load but at blown-up latency is
        saturated once a low-load reference is supplied."""
        low = probe_load(cfg(seed=2), load=0.1, measure_cycles=2_000)
        high = probe_load(cfg(seed=2), load=0.95, measure_cycles=2_000)
        assert not high.saturated()  # throughput alone is fine
        if high.latency > 4 * low.latency:
            assert high.saturated(low.latency)

    def test_small_fat_tree_carries_full_load(self):
        """The 16-host BMIN has full bisection: with balanced routing it
        accepts nearly everything even at 90% offered load."""
        probe = probe_load(cfg(seed=2), load=0.9, measure_cycles=3_000)
        assert not probe.throughput_saturated


class TestSearch:
    def test_bracket_and_probes(self):
        estimate, probes = find_saturation_load(
            cfg(cb_write_bandwidth=2, cb_read_bandwidth=2),
            tolerance=0.2, measure_cycles=1_200, warmup_cycles=200,
        )
        assert 0.05 <= estimate <= 1.0
        assert len(probes) >= 1
        loads = [p.load for p in probes]
        assert len(set(loads)) == len(loads)

    def test_input_buffer_saturates_no_later_than_central(self):
        kwargs = dict(tolerance=0.15, measure_cycles=1_200, warmup_cycles=200)
        cb, _ = find_saturation_load(cfg(seed=3), **kwargs)
        ib, _ = find_saturation_load(
            cfg(seed=3, switch_architecture=SwitchArchitecture.INPUT_BUFFER),
            **kwargs,
        )
        assert ib <= cb + 0.15

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            find_saturation_load(cfg(), low=0.5, high=0.4)
