"""Unit tests for the newline-framed JSON job protocol (pure layer)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import RunSpec
from repro.farm.protocol import (
    FRAME_FIELDS,
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_RESULT,
    FRAME_SHUTDOWN,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    make_frame,
    pack,
    unpack,
)

from tests.farm import _workers


class TestPackUnpack:
    def test_roundtrips_plain_values(self):
        for value in (None, 42, "text", [1, 2], {"a": (1, 2)}):
            assert unpack(pack(value)) == value

    def test_roundtrips_a_runspec(self):
        spec = RunSpec(
            key=("sq", 3), fn=_workers.square, kwargs={"x": 3}
        )
        back = unpack(pack(spec))
        assert back == spec
        assert back.execute() == {"x": 3, "squared": 9}

    def test_garbage_payload_raises_protocol_error(self):
        for garbage in ("", "not base64 ###", pack("ok")[:-4]):
            with pytest.raises(ProtocolError):
                unpack(garbage)


class TestMakeFrame:
    def test_adds_version_and_type(self):
        frame = make_frame(FRAME_JOB, seq=1, spec="abc")
        assert frame["v"] == PROTOCOL_VERSION
        assert frame["type"] == FRAME_JOB

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            make_frame("gossip", juicy=True)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing field"):
            make_frame(FRAME_RESULT, seq=1, value="x")  # no wall_seconds

    def test_shutdown_needs_nothing(self):
        assert make_frame(FRAME_SHUTDOWN)["type"] == FRAME_SHUTDOWN


class TestEncodeDecode:
    def test_roundtrip_every_frame_type(self):
        samples = {
            FRAME_HELLO: dict(worker="w0", pid=1, manifest={}),
            FRAME_JOB: dict(seq=1, spec=pack("s")),
            FRAME_RESULT: dict(seq=1, value=pack(2), wall_seconds=0.5),
            "error": dict(seq=1, error="E", traceback="tb"),
            FRAME_SHUTDOWN: {},
        }
        assert set(samples) == set(FRAME_FIELDS)
        for frame_type, fields in samples.items():
            frame = make_frame(frame_type, **fields)
            line = encode_frame(frame)
            assert line.endswith(b"\n")
            assert b"\n" not in line[:-1]  # one frame, one line
            assert decode_frame(line) == frame

    def test_torn_line_raises(self):
        line = encode_frame(make_frame(FRAME_SHUTDOWN))
        with pytest.raises(ProtocolError, match="torn frame"):
            decode_frame(line[:-1])

    def test_half_a_frame_raises(self):
        line = encode_frame(
            make_frame(FRAME_RESULT, seq=1, value=pack(1), wall_seconds=0.1)
        )
        with pytest.raises(ProtocolError):
            decode_frame(line[: len(line) // 2])

    def test_non_json_raises(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(b"}{ not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_frame(b"[1, 2, 3]\n")

    def test_version_mismatch_raises(self):
        alien = json.dumps({"v": 99, "type": FRAME_SHUTDOWN}) + "\n"
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_frame(alien.encode())

    def test_unknown_type_on_the_wire_raises(self):
        alien = (
            json.dumps({"v": PROTOCOL_VERSION, "type": "gossip"}) + "\n"
        )
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_frame(alien.encode())

    def test_missing_field_on_the_wire_raises(self):
        alien = (
            json.dumps({"v": PROTOCOL_VERSION, "type": FRAME_JOB, "seq": 1})
            + "\n"
        )
        with pytest.raises(ProtocolError, match="missing field"):
            decode_frame(alien.encode())
