"""The differential gate: farm ≡ serial for every experiment's table.

Each of the 16 experiments runs once serially (the reference) and then
as a fleet campaign at shard counts 2 and 4.  Rows and rendered tables
must match *exactly* — the farm analogue of ``jobs=1`` vs ``jobs=4``
in ``tests/experiments/test_parallel.py``, extended across a process
boundary, a JSON pickle round-trip, sharding and work stealing.  Grids
are shrunk to test-suite size; the invariant being checked does not
depend on scale.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_cb_bandwidth_ablation,
    run_encoding_ablation,
    run_equal_storage_ablation,
    run_replication_ablation,
    run_routing_mode_ablation,
)
from repro.experiments.bimodal import run_bimodal
from repro.experiments.common import Scale
from repro.experiments.cross_topology import run_cross_topology
from repro.experiments.degree_sweep import run_degree_sweep
from repro.experiments.extensions import (
    run_barrier_scaling,
    run_buffer_occupancy,
    run_hotspot,
)
from repro.experiments.length_sweep import run_length_sweep
from repro.experiments.multiple_multicast import run_multiple_multicast
from repro.experiments.parameters import run_parameters
from repro.experiments.system_size import run_system_size
from repro.experiments.unicast_baseline import run_unicast_baseline
from repro.farm import runtime as farm_runtime

#: QUICK-shaped but tiny (mirrors tests/experiments/test_parallel.py)
SMALL = Scale(
    name="small",
    repeats=2,
    warmup_cycles=100,
    measure_cycles=600,
    max_cycles=60_000,
)

#: every runner-visible experiment with grid kwargs shrunk to seconds
CASES = {
    "e1": (run_multiple_multicast,
           dict(num_hosts=16, concurrency=(1, 4), degree=3,
                payload_flits=16)),
    "e2": (run_degree_sweep,
           dict(num_hosts=16, degrees=(2, 6), payload_flits=16)),
    "e3": (run_length_sweep,
           dict(num_hosts=16, lengths=(8, 32), degree=4)),
    "e4": (run_bimodal,
           dict(num_hosts=16, loads=(0.2,), degree=4, payload_flits=16)),
    "e5": (run_system_size, dict(sizes=(16,), payload_flits=16)),
    "e6": (run_unicast_baseline,
           dict(num_hosts=16, loads=(0.2,), payload_flits=16)),
    "e7": (run_parameters, dict(num_hosts=16)),
    "a1": (run_cb_bandwidth_ablation,
           dict(num_hosts=16, bandwidths=(1, 4), num_multicasts=4,
                degree=4, payload_flits=16)),
    "a2": (run_routing_mode_ablation,
           dict(num_hosts=16, degrees=(4, 8), payload_flits=16)),
    "a3": (run_encoding_ablation,
           dict(sizes=(16,), degree=4, payload_flits=16)),
    "a4": (run_replication_ablation,
           dict(num_hosts=16, concurrency=(2, 4), degree=4,
                payload_flits=16)),
    "a5": (run_equal_storage_ablation,
           dict(num_hosts=16, loads=(0.3,), payload_flits=16)),
    "x1": (run_barrier_scaling, dict(sizes=(16,))),
    "x2": (run_hotspot,
           dict(num_hosts=16, load=0.2, fractions=(0.0, 0.05),
                payload_flits=16)),
    "x3": (run_buffer_occupancy,
           dict(num_hosts=16, load=0.2, degree=4)),
    "x4": (run_cross_topology, dict(num_hosts=16, degrees=(4,))),
}

_serial_cache = {}


def serial_reference(name):
    if name not in _serial_cache:
        fn, kwargs = CASES[name]
        _serial_cache[name] = fn(scale=SMALL, jobs=1, **kwargs)
    return _serial_cache[name]


def run_on_fleet(name, shards):
    fn, kwargs = CASES[name]
    farm_runtime.configure(farm_runtime.open_farm("fleet", shards=shards))
    try:
        return fn(scale=SMALL, jobs=1, **kwargs)
    finally:
        farm_runtime.reset()


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("shards", [2, 4])
def test_fleet_campaign_table_is_bit_identical(name, shards):
    serial = serial_reference(name)
    farmed = run_on_fleet(name, shards)
    assert serial.rows == farmed.rows
    assert serial.render() == farmed.render()


def test_every_runner_experiment_is_covered():
    from repro.experiments.runner import EXPERIMENTS

    assert set(CASES) == set(EXPERIMENTS)
