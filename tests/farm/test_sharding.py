"""Hypothesis properties: scheduling can never change a campaign's table.

Random plans x shard counts 1..8 x adversarial steal policies must all
merge to the serial reference in declared grid order, and every
executed spec must have exactly one executing leader — the invariant
that makes completion-time journaling (and therefore resume) safe.
"""

from __future__ import annotations

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import (
    ExecutionPlan,
    RunSpec,
    resolve,
    run_outcomes,
)
from repro.farm.backends import SerialBackend
from repro.farm.campaign import run_campaign

from tests.farm import _workers


def build_plan(size):
    return ExecutionPlan(
        "prop",
        [
            RunSpec(key=("p", i), fn=_workers.square, kwargs={"x": i})
            for i in range(size)
        ],
    )


def reference(plan):
    return resolve(run_outcomes(plan, jobs=1))


def grid_order_values(plan, outcomes):
    """Values folded by key in declared grid order — the reduce rule."""
    mapping = resolve(outcomes)
    return [mapping[spec.key] for spec in plan.specs]


class TestShardingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        size=st.integers(min_value=0, max_value=24),
        shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_any_shard_count_and_steal_schedule_is_bit_identical(
        self, size, shards, seed
    ):
        plan = build_plan(size)
        rng = Random(seed)

        def chaotic_policy(thief, remaining):
            # adversarial: sometimes sensible, sometimes garbage — the
            # scheduler must override garbage, never lose work
            roll = rng.random()
            if roll < 0.4:
                candidates = [
                    index
                    for index, left in enumerate(remaining)
                    if left and index != thief
                ]
                return rng.choice(candidates) if candidates else None
            if roll < 0.6:
                return rng.randrange(-2, len(remaining) + 2)
            if roll < 0.8:
                return thief
            return None

        result = run_campaign(
            plan,
            SerialBackend(),
            shards,
            steal_policy=chaotic_policy,
        )
        assert resolve(result.outcomes) == reference(plan)
        assert grid_order_values(plan, result.outcomes) == [
            {"x": i, "squared": i * i} for i in range(size)
        ]

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=24),
        shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_every_spec_has_exactly_one_executing_leader(
        self, size, shards, seed
    ):
        plan = build_plan(size)
        rng = Random(seed)
        result = run_campaign(
            plan,
            SerialBackend(),
            shards,
            steal_policy=lambda thief, remaining: rng.randrange(
                -1, len(remaining) + 1
            ),
        )
        assert set(result.provenance) == {s.key for s in plan.specs}
        for record in result.provenance.values():
            assert record.completed_by is not None
            # no requeues on a healthy backend: dispatched exactly once,
            # and the worker that got it is the worker that finished it
            assert len(record.attempts) == 1
            assert record.attempts[-1] == record.completed_by
        assert (
            sum(report.runs for report in result.workers) == size
        )

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=16),
        shards=st.integers(min_value=2, max_value=8),
    )
    def test_default_policy_keeps_every_worker_fed(self, size, shards):
        """With the default policy and a serial backend, dispatches
        happen in worker order, so the busiest/laziest split stays
        within the stealing guarantee: no worker idles while another
        shard still holds two or more specs."""
        plan = build_plan(size)
        result = run_campaign(plan, SerialBackend(), shards)
        assert resolve(result.outcomes) == reference(plan)
        runs = [report.runs for report in result.workers]
        assert sum(runs) == size
