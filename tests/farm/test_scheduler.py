"""Unit tests for sharding, stealing, and the one-leader invariant."""

from __future__ import annotations

import pytest

from repro.experiments.parallel import RunSpec
from repro.farm.scheduler import (
    SchedulerError,
    ShardScheduler,
    default_steal_policy,
    shard_specs,
)

from tests.farm import _workers


def specs(n):
    return [
        RunSpec(key=("s", i), fn=_workers.square, kwargs={"x": i})
        for i in range(n)
    ]


class TestShardSpecs:
    def test_round_robin_in_grid_order(self):
        dealt = shard_specs(specs(7), 3)
        assert [[s.key[1] for s in shard] for shard in dealt] == [
            [0, 3, 6],
            [1, 4],
            [2, 5],
        ]

    def test_balanced_within_one(self):
        for n in range(0, 20):
            for shards in range(1, 8):
                sizes = [len(s) for s in shard_specs(specs(n), shards)]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            shard_specs(specs(3), 0)


class TestDefaultStealPolicy:
    def test_picks_fullest_other_shard(self):
        assert default_steal_policy(0, (0, 2, 5, 1)) == 2

    def test_ties_go_to_lowest_index(self):
        assert default_steal_policy(2, (3, 3, 0, 3)) == 0

    def test_never_picks_self_or_empty(self):
        assert default_steal_policy(1, (0, 9, 0)) is None
        assert default_steal_policy(0, (5, 0, 0)) is None


class TestShardScheduler:
    def test_own_shard_head_first(self):
        sched = ShardScheduler(specs(6), 2)
        assert sched.next_for(0).key == ("s", 0)
        assert sched.next_for(1).key == ("s", 1)
        assert sched.next_for(0).key == ("s", 2)
        assert sched.steals == 0

    def test_drained_worker_steals_from_victim_tail(self):
        sched = ShardScheduler(specs(6), 2)  # shard0: 0,2,4  shard1: 1,3,5
        for _ in range(3):
            sched.next_for(1)  # worker 1 drains its own shard
        stolen = sched.next_for(1)
        assert stolen.key == ("s", 4)  # tail of shard 0, not its head
        assert sched.steals == 1
        assert sched.provenance[("s", 4)].stolen == 1

    def test_none_when_everything_dispatched(self):
        sched = ShardScheduler(specs(2), 2)
        sched.next_for(0)
        sched.next_for(1)
        assert sched.next_for(0) is None
        assert sched.pending == 0

    @pytest.mark.parametrize(
        "bad_policy",
        [
            lambda thief, remaining: None,
            lambda thief, remaining: thief,  # steal from yourself
            lambda thief, remaining: 99,  # out of range
            lambda thief, remaining: -1,
            lambda thief, remaining: "zero",  # not an int
        ],
        ids=["none", "self", "big", "negative", "string"],
    )
    def test_garbage_policy_overridden_not_trusted(self, bad_policy):
        sched = ShardScheduler(specs(4), 2, steal_policy=bad_policy)
        sched.next_for(1)
        sched.next_for(1)
        stolen = sched.next_for(1)  # shard 1 empty: must steal anyway
        assert stolen is not None
        assert stolen.key[1] in (0, 2)

    def test_requeue_returns_to_home_shard_head(self):
        sched = ShardScheduler(specs(4), 2)  # shard0: 0,2
        spec = sched.next_for(0)
        sched.requeue(spec)
        assert sched.next_for(0).key == spec.key  # retried before ("s",2)
        assert sched.requeues == 1
        assert sched.provenance[spec.key].requeued == 1
        assert sched.provenance[spec.key].attempts == [0, 0]

    def test_requeue_after_completion_is_a_farm_bug(self):
        sched = ShardScheduler(specs(2), 1)
        spec = sched.next_for(0)
        sched.record_completion(spec.key, 0)
        with pytest.raises(SchedulerError, match="after completion"):
            sched.requeue(spec)

    def test_exactly_one_leader_double_completion_raises(self):
        sched = ShardScheduler(specs(2), 1)
        spec = sched.next_for(0)
        sched.record_completion(spec.key, 0)
        assert sched.provenance[spec.key].completed_by == 0
        with pytest.raises(SchedulerError, match="completed twice"):
            sched.record_completion(spec.key, 0)

    def test_stolen_spec_attempt_recorded_for_thief(self):
        sched = ShardScheduler(specs(2), 2)
        sched.next_for(0)
        sched.next_for(1)
        sched.requeue(specs(2)[0])  # worker 0's spec goes home
        stolen = sched.next_for(1)  # worker 1 steals the retry
        assert stolen.key == ("s", 0)
        assert sched.provenance[("s", 0)].attempts == [0, 1]
