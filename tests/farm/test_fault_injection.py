"""Fault injection: campaigns survive dying workers and dying parents.

Three families of deliberate failure, each required to end in the same
place — a bit-identical merged table and a journal ``verify`` calls
clean:

* a fleet worker SIGKILLed mid-campaign (externally, and via the
  ``REPRO_FARM_FAULT`` ``die`` action) — its in-flight spec is
  requeued and the survivors finish the plan;
* a torn or dropped protocol message (``truncate``/``drop`` actions) —
  stream corruption maps to a dead worker, never to wrong data;
* the campaign *parent* SIGKILLed mid-journal-append — the next
  campaign resumes warm from the journaled prefix and executes only
  the remainder (the farm analogue of
  ``tests/store/test_crash_resume.py``).
"""

from __future__ import annotations

import io
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.experiments.parallel import (
    SOURCE_EXECUTED,
    SOURCE_HIT,
    ExecutionPlan,
    RunSpec,
    resolve,
)
from repro.farm.backends import FarmError, SubprocessFleetBackend
from repro.farm.campaign import run_campaign
from repro.farm.protocol import FRAME_JOB, make_frame, pack
from repro.farm.worker import (
    ENV_FAULT,
    EXIT_OK,
    EXIT_PROTOCOL,
    Fault,
    parse_fault,
    serve,
)
from repro.store.backend import JournalStore

from tests.conftest import (
    journal_entry_count,
    poll_until,
    wait_journal_quiescent,
)
from tests.farm import _workers

REPO_ROOT = Path(__file__).resolve().parents[2]


def build_plan(runs, seconds=0.0, name="fault"):
    return ExecutionPlan(
        name,
        [
            RunSpec(
                key=("fault", index),
                fn=_workers.slow_square,
                kwargs=dict(x=index, seconds=seconds),
            )
            for index in range(runs)
        ],
    )


def reference(runs):
    return {
        ("fault", index): {"x": index, "squared": index * index}
        for index in range(runs)
    }


def faulty_backend(spec):
    return SubprocessFleetBackend(extra_env={ENV_FAULT: spec})


class TestParseFault:
    def test_scoped_and_unscoped_specs(self):
        assert parse_fault("w1:die@2") == Fault("die", 2, "w1")
        assert parse_fault("truncate@1") == Fault("truncate", 1, None)

    def test_garbage_is_ignored_not_fatal(self):
        for garbage in ("", "  ", "explode@1", "die@", "die@x", "@3"):
            assert parse_fault(garbage) is None

    def test_matching_is_worker_and_job_scoped(self):
        fault = Fault("die", 2, "w1")
        assert fault.matches("w1", 2)
        assert not fault.matches("w0", 2)
        assert not fault.matches("w1", 1)
        assert Fault("die", 2).matches("anyone", 2)


class TestWorkerProtocolDiscipline:
    """A desynchronised worker must die, never guess (exit code 3)."""

    def _serve(self, payload: bytes) -> int:
        return serve(io.BytesIO(payload), io.BytesIO(), "wt")

    def test_garbage_job_line_exits_protocol(self):
        assert self._serve(b"}{ not a frame\n") == EXIT_PROTOCOL

    def test_torn_job_frame_exits_protocol(self):
        from repro.farm.protocol import encode_frame

        line = encode_frame(
            make_frame(FRAME_JOB, seq=1, spec=pack("x"))
        )
        assert self._serve(line[:-1]) == EXIT_PROTOCOL

    def test_job_payload_that_is_not_a_spec_exits_protocol(self):
        from repro.farm.protocol import encode_frame

        line = encode_frame(
            make_frame(FRAME_JOB, seq=1, spec=pack("not a RunSpec"))
        )
        assert self._serve(line) == EXIT_PROTOCOL

    def test_eof_and_shutdown_exit_clean(self):
        from repro.farm.protocol import FRAME_SHUTDOWN, encode_frame

        assert self._serve(b"") == EXIT_OK
        assert (
            self._serve(encode_frame(make_frame(FRAME_SHUTDOWN)))
            == EXIT_OK
        )


class TestWorkerDeathMidCampaign:
    def test_external_sigkill_mid_campaign_completes(self):
        """A real ``SIGKILL`` from outside, not the fault hook: the
        campaign must requeue the victim's in-flight spec and finish
        on the survivor with the identical table."""
        runs = 10
        backend = SubprocessFleetBackend()
        victim_pid = []

        original_start = backend.start

        def start_and_arm(workers):
            original_start(workers)
            victim_pid.append(backend._procs[0].pid)

        backend.start = start_and_arm

        def assassinate():
            if victim_pid:
                os.kill(victim_pid[0], signal.SIGKILL)

        killer = threading.Timer(0.4, assassinate)
        killer.start()
        try:
            result = run_campaign(
                build_plan(runs, seconds=0.15), backend, shards=2
            )
        finally:
            killer.cancel()
        assert resolve(result.outcomes) == reference(runs)
        assert any(report.failure for report in result.workers)
        assert result.requeues >= 1

    def test_die_fault_mid_shard_is_survived(self):
        # fault on the *first* job: the fill loop dispatches to every
        # idle worker before collecting, so w1 is guaranteed to receive
        # it (a later job could be stolen out from under the fault)
        runs = 8
        result = run_campaign(
            build_plan(runs),
            faulty_backend("w1:die@1"),
            shards=2,
        )
        assert resolve(result.outcomes) == reference(runs)
        assert result.workers[1].failure
        assert result.workers[1].runs == 0
        assert result.requeues == 1
        # the dead worker's specs were finished by someone else
        survivors = {
            record.completed_by
            for record in result.provenance.values()
        }
        assert survivors == {0}

    def test_truncated_result_frame_is_survived(self):
        runs = 8
        result = run_campaign(
            build_plan(runs),
            faulty_backend("w0:truncate@1"),
            shards=2,
        )
        assert resolve(result.outcomes) == reference(runs)
        assert "torn" in result.workers[0].failure

    def test_dropped_message_is_survived(self):
        runs = 8
        result = run_campaign(
            build_plan(runs),
            faulty_backend("w1:drop@1"),
            shards=2,
        )
        assert resolve(result.outcomes) == reference(runs)
        assert result.workers[1].failure

    def test_every_worker_dead_raises_farm_error(self):
        with pytest.raises(FarmError, match="dead"):
            run_campaign(
                build_plan(8),
                faulty_backend("die@1"),  # unscoped: kills them all
                shards=2,
            )

    def test_faulted_campaign_journal_verifies_clean(self, tmp_path):
        runs = 8
        with JournalStore(tmp_path / "store") as store:
            result = run_campaign(
                build_plan(runs),
                faulty_backend("w0:truncate@1"),
                shards=2,
                store=store,
            )
            assert resolve(result.outcomes) == reference(runs)
            report = store.verify()
            assert report.ok, report.render()
            assert report.entries == runs
            # and a warm rerun is answered entirely from the journal
            warm = run_campaign(
                build_plan(runs), SubprocessFleetBackend(), shards=2,
                store=store,
            )
        assert resolve(warm.outcomes) == reference(runs)
        assert all(o.source == SOURCE_HIT for o in warm.outcomes)


_FARM_CAMPAIGN_SCRIPT = """
import sys
from pathlib import Path

from repro.experiments.parallel import ExecutionPlan, RunSpec
from repro.farm.backends import SubprocessFleetBackend
from repro.farm.campaign import run_campaign
from repro.store.backend import JournalStore
from tests.farm import _workers

specs = [
    RunSpec(
        key=("fault", index),
        fn=_workers.slow_square,
        kwargs=dict(x=index, seconds={seconds}),
    )
    for index in range({runs})
]
with JournalStore(Path(sys.argv[1])) as store:
    run_campaign(
        ExecutionPlan("fault", specs),
        SubprocessFleetBackend(),
        shards=2,
        store=store,
    )
print("campaign-finished")
"""


class TestParentCrashResume:
    def test_parent_sigkill_mid_journal_resumes_bit_identical(
        self, tmp_path
    ):
        runs = 40
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        script = _FARM_CAMPAIGN_SCRIPT.format(runs=runs, seconds=0.05)
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(store_dir)],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:

            def journaled_enough():
                if process.poll() is not None:
                    out, err = process.communicate()
                    pytest.fail(
                        "campaign finished before it could be killed: "
                        f"{out!r} {err!r}"
                    )
                return journal_entry_count(store_dir) >= 3

            poll_until(
                journaled_enough,
                message="the farm campaign to journal 3 entries",
            )
            # lands between (often *inside*) journal appends
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=30)

        # orphaned fleet workers exit on stdin EOF; wait for the
        # journal to stop moving rather than sleeping a fixed time
        journaled = wait_journal_quiescent(store_dir)
        assert 0 < journaled < runs

        # kwargs are part of the spec fingerprint: the resume plan must
        # be byte-for-byte the plan the killed campaign was running
        with JournalStore(store_dir) as store:
            result = run_campaign(
                build_plan(runs, seconds=0.05),
                SubprocessFleetBackend(),
                shards=2,
                store=store,
            )
            report = store.verify()

        sources = [o.source for o in result.outcomes]
        hits = sources.count(SOURCE_HIT)
        executed = sources.count(SOURCE_EXECUTED)
        assert hits >= 3  # the killed campaign's completed runs
        assert executed == runs - hits  # only the remainder re-ran
        assert resolve(result.outcomes) == reference(runs)
        # torn tails are legal crash artifacts; corruption is not
        assert report.ok, report.render()
        assert report.entries == runs

        with JournalStore(store_dir) as store:
            warm = run_campaign(
                build_plan(runs, seconds=0.05),
                SubprocessFleetBackend(),
                shards=2,
                store=store,
            )
        assert all(o.source == SOURCE_HIT for o in warm.outcomes)
