"""Module-level worker functions for the farm test suite.

Fleet workers unpickle specs by *reference* (``module:qualname``), so
anything a test dispatches must live in an importable module — not in
the test file's locals and not under a script's ``__main__``.  Keeping
them here also keeps their content addresses identical between the
campaign that journals a result and the later campaign that resumes
from it (the same reason ``tests/store/_crash_worker.py`` exists).
"""

from __future__ import annotations

import time


def square(x=0):
    """Deterministic, instant, store-codable."""
    return {"x": x, "squared": x * x}


def slow_square(x=0, seconds=0.0):
    """Like :func:`square` with a controllable wall time, so kills and
    steals land mid-campaign instead of racing a finished plan."""
    if seconds:
        time.sleep(seconds)
    return {"x": x, "squared": x * x}


class Detonation(RuntimeError):
    """A picklable error type that survives the trip back to the parent."""


def boom(x=0):
    """Always raises — the worker-error propagation path."""
    raise Detonation(f"worker exploded on {x}")
