"""Backend contract tests: serial, local pool, and the fleet protocol.

Every backend must move values untransformed, answer every dispatch
with exactly one completion-or-failure, and re-raise worker exceptions
as the campaign's own error — the contract the campaign driver builds
its bit-identity and fault-tolerance guarantees on.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import (
    ExecutionPlan,
    RunSpec,
    resolve,
    run_outcomes,
)
from repro.farm.backends import (
    CompletedJob,
    FarmError,
    SerialBackend,
    SubprocessFleetBackend,
    WorkerFailure,
)
from repro.farm.campaign import run_campaign
from repro.farm.runtime import FarmSession
from repro.farm.transport import BackendUnavailable

from tests.farm import _workers


def spec(i):
    return RunSpec(key=("s", i), fn=_workers.square, kwargs={"x": i})


def plan(n, name="plan"):
    return ExecutionPlan(name, [spec(i) for i in range(n)])


REFERENCE = {("s", i): {"x": i, "squared": i * i} for i in range(6)}


class TestSerialBackend:
    def test_dispatches_complete_in_fifo_order(self):
        backend = SerialBackend()
        backend.start(2)
        backend.dispatch(1, spec(5))
        backend.dispatch(0, spec(2))
        first = backend.collect()
        second = backend.collect()
        assert isinstance(first, CompletedJob)
        assert (first.worker, first.spec.key) == (1, ("s", 5))
        assert (second.worker, second.spec.key) == (0, ("s", 2))
        assert first.value == {"x": 5, "squared": 25}
        backend.close()

    def test_collect_without_dispatch_is_a_bug(self):
        backend = SerialBackend()
        backend.start(1)
        with pytest.raises(FarmError, match="nothing dispatched"):
            backend.collect()

    def test_worker_exception_propagates(self):
        backend = SerialBackend()
        backend.start(1)
        backend.dispatch(0, RunSpec(key=("b",), fn=_workers.boom))
        with pytest.raises(_workers.Detonation, match="exploded"):
            backend.collect()


class TestFleetBackend:
    def test_values_and_manifests_roundtrip(self):
        result = run_campaign(plan(6), SubprocessFleetBackend(), shards=2)
        assert resolve(result.outcomes) == REFERENCE
        assert set(result.worker_manifests) == {"w0", "w1"}
        for manifest in result.worker_manifests.values():
            assert manifest["extras"]["farm_worker"] in ("w0", "w1")
        assert [o.worker in ("w0", "w1") for o in result.outcomes]

    def test_worker_exception_reraised_as_original_type(self):
        bad = ExecutionPlan(
            "bad",
            [spec(0), RunSpec(key=("b",), fn=_workers.boom)],
        )
        with pytest.raises(_workers.Detonation, match="exploded"):
            run_campaign(bad, SubprocessFleetBackend(), shards=2)

    def test_double_dispatch_to_busy_worker_rejected(self):
        backend = SubprocessFleetBackend()
        backend.start(1)
        try:
            backend.dispatch(0, spec(0))
            with pytest.raises(FarmError, match="in flight"):
                backend.dispatch(0, spec(1))
        finally:
            backend.close()

    def test_campaign_manifest_merges_worker_provenance(self):
        result = run_campaign(plan(4), SubprocessFleetBackend(), shards=2)
        merged = result.manifest()
        workers = merged.extras["farm_workers"]
        assert set(workers) == {"w0", "w1"}
        for report in workers.values():
            assert report["manifest"]["extras"]["farm_worker"]
        assert (
            sum(report["runs"] for report in workers.values()) == 4
        )
        assert merged.extras["farm_backend"] == "fleet"


class TestLocalPoolBackend:
    def test_session_matches_serial_reference(self):
        outcomes = FarmSession(kind="local", shards=2).run(plan(6))
        assert resolve(outcomes) == REFERENCE


class TestBackendFallback:
    def test_unavailable_backend_falls_back_to_serial(self):
        calls = []

        class Unavailable(SerialBackend):
            def start(self, workers):
                calls.append("tried")
                raise BackendUnavailable("no processes here")

        session = FarmSession(kind="fleet", shards=2)
        session.kind = "fleet"
        # candidate list is [fleet, serial]; force the first to fail
        session.backend_factory = None
        import repro.farm.runtime as farm_runtime

        original = farm_runtime._backend_candidates
        farm_runtime._backend_candidates = lambda kind: [
            Unavailable,
            SerialBackend,
        ]
        try:
            outcomes = session.run(plan(4))
        finally:
            farm_runtime._backend_candidates = original
        assert calls == ["tried"]
        assert resolve(outcomes) == {
            key: value
            for key, value in REFERENCE.items()
            if key[1] < 4
        }

    def test_sole_candidate_unavailable_raises(self):
        class Unavailable(SerialBackend):
            def start(self, workers):
                raise BackendUnavailable("nope")

        session = FarmSession(backend_factory=Unavailable)
        with pytest.raises(BackendUnavailable):
            session.run(plan(2))


class TestRunOutcomesIntegration:
    def test_active_farm_session_hooks_run_outcomes(self):
        from repro.farm import runtime as farm_runtime

        farm_runtime.configure(
            FarmSession(backend_factory=SerialBackend, shards=3)
        )
        try:
            outcomes = run_outcomes(plan(6))
        finally:
            farm_runtime.reset()
        assert resolve(outcomes) == REFERENCE
        assert all(o.worker.startswith("w") for o in outcomes)

    def test_no_session_leaves_plain_path_untouched(self):
        outcomes = run_outcomes(plan(6), jobs=1)
        assert resolve(outcomes) == REFERENCE
        assert all(o.worker == "" for o in outcomes)


class TestWorkerFailureShape:
    def test_failure_carries_worker_and_reason(self):
        failure = WorkerFailure(worker=3, reason="EOF")
        assert (failure.worker, failure.reason) == (3, "EOF")
