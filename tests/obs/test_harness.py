"""The instrumented run path: runtime switch, emitted streams."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation
from repro.obs import runtime
from repro.obs.sinks import (
    SCHEMA_METRICS,
    SCHEMA_RUN,
    iter_jsonl,
    validate_file,
)
from repro.traffic.multicast import SingleMulticast


def _workload():
    return SingleMulticast(
        source=0, degree=4, payload_flits=16,
        scheme=MulticastScheme.HARDWARE,
    )


@pytest.fixture(autouse=True)
def _clean_runtime():
    runtime.reset()
    yield
    runtime.reset()


class TestRuntimeSwitch:
    def test_nothing_configured_by_default(self):
        assert runtime.configured() is None

    def test_enabled_context_restores_previous(self):
        with runtime.enabled(metrics_out="a.jsonl") as options:
            assert runtime.configured() is options
            with runtime.enabled(metrics_out="b.jsonl"):
                assert runtime.configured().metrics_out == "b.jsonl"
            assert runtime.configured() is options
        assert runtime.configured() is None

    def test_effective_sample_every_defaults(self):
        assert runtime.ObsOptions().effective_sample_every == (
            runtime.DEFAULT_SAMPLE_EVERY
        )
        assert runtime.ObsOptions(sample_every=50).effective_sample_every == 50

    def test_run_ids_are_unique(self):
        assert runtime.next_run_id() != runtime.next_run_id()


class TestInstrumentedRun:
    def test_metrics_stream_brackets_each_run(self, tmp_path):
        path = tmp_path / "m.jsonl"
        config = SimulationConfig(num_hosts=16)
        with runtime.enabled(metrics_out=str(path), sample_every=25):
            first = run_simulation(config, _workload())
            second = run_simulation(config, _workload())
        assert first.summary() == second.summary()

        records = [obj for _, obj in iter_jsonl(str(path))]
        runs = [r for r in records if r["schema"] == SCHEMA_RUN]
        points = [r for r in records if r["schema"] == SCHEMA_METRICS]
        assert [r["event"] for r in runs] == ["start", "end", "start", "end"]
        assert len({r["run"] for r in runs}) == 2  # distinct run tags
        assert points, "sampling produced no points"
        start = runs[0]
        assert start["seed"] == config.seed
        assert start["workload"] == "SingleMulticast"
        assert start["config"].startswith("repro(")
        assert len(start["config_sha256"]) == 16
        end = runs[1]
        assert end["cycles"] == first.cycles
        assert end["counters"]["host.messages_delivered"] == 4
        assert end["counters"]["switch.flits_forwarded"] > 0
        assert end["samples"] == sum(
            1 for p in points if p["run"] == start["run"]
        )
        assert validate_file(str(path)) == (len(records), [])

    def test_trace_stream_validates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with runtime.enabled(trace_out=str(path)):
            run_simulation(SimulationConfig(num_hosts=16), _workload())
        valid, errors = validate_file(str(path))
        assert errors == []
        assert valid > 0

    def test_result_identical_to_plain_run(self):
        config = SimulationConfig(num_hosts=16)
        plain = run_simulation(config, _workload())
        with runtime.enabled(sample_every=10):
            instrumented = run_simulation(config, _workload())
        assert instrumented.summary() == plain.summary()
        assert instrumented.cycles == plain.cycles
