"""Metrics registry: counters, gauges, histograms, null behaviour."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    BucketHistogram,
    Counter,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestBucketHistogram:
    def test_buckets_are_inclusive_upper_edges(self):
        h = BucketHistogram("lat", (10, 100))
        for value in (0, 10, 11, 100, 101):
            h.observe(value)
        snap = h.snapshot()
        assert snap["bounds"] == [10.0, 100.0]
        assert snap["counts"] == [2, 2, 1]  # <=10, <=100, overflow
        assert snap["count"] == 5
        assert snap["total"] == 222.0

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            BucketHistogram("h", ())

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            BucketHistogram("h", (10, 10))
        with pytest.raises(ValueError):
            BucketHistogram("h", (10, 5))

    def test_single_bound(self):
        h = BucketHistogram("h", (1,))
        h.observe(0)
        h.observe(2)
        assert h.snapshot()["counts"] == [1, 1]


class TestMetricsRegistry:
    def test_counter_get_or_create_shares_instances(self):
        r = MetricsRegistry()
        a = r.counter("switch.flits_forwarded")
        b = r.counter("switch.flits_forwarded")
        assert a is b
        a.inc()
        b.inc(2)
        assert r.snapshot()["counters"] == {"switch.flits_forwarded": 3}

    def test_gauge_duplicate_name_rejected(self):
        r = MetricsRegistry()
        r.gauge("g", lambda: 1.0)
        with pytest.raises(ValueError):
            r.gauge("g", lambda: 2.0)

    def test_histogram_get_or_create_checks_bounds(self):
        r = MetricsRegistry()
        a = r.histogram("lat", (10, 100))
        assert r.histogram("lat", (10, 100)) is a
        with pytest.raises(ValueError):
            r.histogram("lat", (10, 99))

    def test_sample_gauges_sorted_and_filtered(self):
        r = MetricsRegistry()
        r.gauge("b", lambda: 2.0)
        r.gauge("a", lambda: 1.0)
        assert list(r.sample_gauges()) == ["a", "b"]
        assert r.sample_gauges(["b"]) == {"b": 2.0}

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g", lambda: 0.5)
        r.histogram("h", (1,)).observe(0)
        snap = r.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["count"] == 1


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("anything")
        c.inc()
        c.inc(100)
        h = NULL_REGISTRY.histogram("h", (1, 2))
        h.observe(5)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_null_handles_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.histogram("a", (1,)) is NULL_REGISTRY.histogram(
            "b", (2,)
        )
