"""The ``python -m repro inspect`` subcommand."""

from __future__ import annotations

import json

from repro.obs.inspect import main as inspect_main
from repro.obs.manifest import RunManifest
from repro.obs.sinks import MetricsSink, SCHEMA_TRACE


def _write_metrics(path):
    sink = MetricsSink(str(path))
    sink.write_run_event(
        "r1", "start", config="repro(N=16)", seed=1, workload="W"
    )
    for cycle in (0, 100, 200):
        sink.write_point(
            "r1", cycle, {"cb.occupancy_chunks": float(cycle) / 100}
        )
    sink.write_run_event(
        "r1", "end", cycles=250, wall_seconds=0.5,
        counters={"switch.flits_forwarded": 9},
    )
    sink.close()


class TestSummarise:
    def test_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        _write_metrics(path)
        assert inspect_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 run(s), 3 metric sample(s)" in out
        assert "run r1 (seed=1), 250 cycles" in out
        assert "cb.occupancy_chunks" in out
        assert "switch.flits_forwarded" in out
        # the occupancy chart renders (non-zero series, >= 2 points)
        assert "over time" in out

    def test_no_chart_flag(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        _write_metrics(path)
        assert inspect_main([str(path), "--no-chart"]) == 0
        assert "over time" not in capsys.readouterr().out

    def test_trace_file_counts_events(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        lines = [
            {"schema": SCHEMA_TRACE, "run": "r", "cycle": i,
             "source": "sw0", "event": "flit_in", "details": {}}
            for i in range(3)
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        assert inspect_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace events (3 records)" in out
        assert "flit_in" in out

    def test_manifest_file(self, tmp_path, capsys):
        path = tmp_path / "run.manifest.json"
        RunManifest.collect(jobs=3).write(str(path))
        assert inspect_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "git SHA" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert inspect_main([str(tmp_path / "nope.jsonl")]) == 2


class TestCheck:
    def test_valid_files_exit_0(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        _write_metrics(metrics)
        manifest = tmp_path / "run.manifest.json"
        RunManifest.collect().write(str(manifest))
        assert inspect_main(["--check", str(metrics), str(manifest)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_invalid_line_exits_1(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        _write_metrics(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema":"bogus/1"}\n')
        assert inspect_main(["--check", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out
