"""NI telemetry counters agree bit-for-bit across the data planes.

The packed host interface stages whole spans in one call while the
object plane moves one flit per cycle; the per-cycle ``ni.*`` counters
(notably the dense ``ni.blocked_cycles``) must nonetheless match the
object plane exactly (see docs/observability.md).
"""

from __future__ import annotations

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.obs.registry import MetricsRegistry
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.multicast import SingleMulticast

NI_COUNTERS = ("ni.flits_injected", "ni.flits_ejected", "ni.blocked_cycles")


def _counters(packed, arch, workload):
    config = SimulationConfig(num_hosts=16, seed=5, switch_architecture=arch)
    config.packed = packed
    registry = MetricsRegistry(enabled=True)
    network = build_network(config, metrics=registry)
    result = run_workload(network, workload)
    snapshot = {
        name: counter.value
        for name, counter in registry.counters.items()
        if name.startswith("ni.")
    }
    return result, snapshot


class TestPackedObjectParity:
    def test_saturating_multicast_counters_match_and_are_dense(self):
        def workload():
            return SingleMulticast(
                source=0,
                degree=15,
                payload_flits=48,
                scheme=MulticastScheme.HARDWARE,
            )

        for arch in (
            SwitchArchitecture.CENTRAL_BUFFER,
            SwitchArchitecture.INPUT_BUFFER,
        ):
            obj_result, obj = _counters(False, arch, workload())
            packed_result, packed = _counters(True, arch, workload())
            assert obj_result.cycles == packed_result.cycles
            assert obj == packed
            assert obj["ni.flits_injected"] > 0
            assert obj["ni.flits_ejected"] > 0

    def test_hotspot_counts_blocked_cycles_identically(self):
        def workload():
            return HotspotTraffic(
                load=0.9,
                hotspot_fraction=0.8,
                payload_flits=32,
                warmup_cycles=200,
                measure_cycles=400,
            )

        obj_result, obj = _counters(
            False, SwitchArchitecture.CENTRAL_BUFFER, workload()
        )
        packed_result, packed = _counters(
            True, SwitchArchitecture.CENTRAL_BUFFER, workload()
        )
        assert obj_result.cycles == packed_result.cycles
        assert obj == packed
        # contention at this load produces head-of-line waiting, so the
        # parity above was exercised on a nonzero blocked count
        assert obj["ni.blocked_cycles"] > 0
