"""Cycle sampler: cadence, sink streaming, network gauges."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import CycleSampler, register_network_gauges
from repro.obs.sinks import MetricsSink
from repro.sim.kernel import Simulator
from repro.traffic.multicast import SingleMulticast


class TestCycleSampler:
    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            CycleSampler(MetricsRegistry(), every=0)

    def test_samples_every_n_cycles_including_zero(self):
        registry = MetricsRegistry()
        ticks = {"n": 0}

        def gauge():
            ticks["n"] += 1
            return float(ticks["n"])

        registry.gauge("g", gauge)
        sim = Simulator(seed=1)
        sampler = CycleSampler(registry, every=3)
        sim.add_component(sampler)
        sim.run(10)  # cycles 0..9
        assert [cycle for cycle, _ in sampler.series] == [0, 3, 6, 9]
        assert ticks["n"] == 4  # gauges only evaluated on sample cycles

    def test_gauge_subset(self):
        registry = MetricsRegistry()
        registry.gauge("a", lambda: 1.0)
        registry.gauge("b", lambda: 2.0)
        sim = Simulator(seed=1)
        sampler = CycleSampler(registry, every=1, gauges=["a"])
        sim.add_component(sampler)
        sim.run(1)
        assert sampler.series == [(0, {"a": 1.0})]

    def test_streams_to_sink(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("g", lambda: 7.0)
        path = tmp_path / "m.jsonl"
        sink = MetricsSink(str(path))
        sim = Simulator(seed=1)
        sim.add_component(
            CycleSampler(registry, every=2, sink=sink, run="r1")
        )
        sim.run(4)
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2  # cycles 0 and 2
        assert '"run":"r1"' in lines[0]
        assert '"g":7.0' in lines[0]


class TestNetworkGauges:
    def test_cb_network_registers_all_three(self):
        network = build_network(SimulationConfig(num_hosts=16))
        registry = MetricsRegistry()
        register_network_gauges(network, registry)
        values = registry.sample_gauges()
        assert sorted(values) == [
            "cb.occupancy_chunks", "link.utilisation", "ni.injection_backlog"
        ]
        assert all(v == 0.0 for v in values.values())

    def test_occupancy_and_utilisation_move_under_traffic(self):
        config = SimulationConfig(num_hosts=16)
        registry = MetricsRegistry()
        network = build_network(config, metrics=registry)
        register_network_gauges(network, registry)
        sampler = CycleSampler(registry, every=10)
        network.sim.add_component(sampler)
        run_workload(
            network,
            SingleMulticast(
                source=0, degree=8, payload_flits=64,
                scheme=MulticastScheme.HARDWARE,
            ),
        )
        peaks = {
            name: max(values[name] for _, values in sampler.series)
            for name in ("cb.occupancy_chunks", "link.utilisation")
        }
        assert peaks["cb.occupancy_chunks"] > 0
        assert 0 < peaks["link.utilisation"] <= 1.0
        # the drained network reads zero (the *last sample* may predate
        # the final drain cycle — the sampler only looks every 10 cycles)
        assert registry.sample_gauges()["cb.occupancy_chunks"] == 0.0

    def test_ib_network_occupancy_gauge_reads_zero(self):
        network = build_network(
            SimulationConfig(
                num_hosts=16,
                switch_architecture=SwitchArchitecture.INPUT_BUFFER,
            )
        )
        registry = MetricsRegistry()
        register_network_gauges(network, registry)
        assert registry.sample_gauges()["cb.occupancy_chunks"] == 0.0


class TestFastForwardCarryForward:
    """The sampler's probe lane must survive idle-cycle fast-forward.

    On an idle-heavy run the active-set kernel jumps over the sampling
    grid; the kernel replays the skipped sample points (carry-forward),
    so the collected series must be bit-identical to the dense kernel's
    — including the windowed link-utilisation gauge, which reads
    ``sim.now`` at every sample.
    """

    @staticmethod
    def _run(dense):
        from repro.obs.profile import KernelProfiler
        from repro.traffic.unicast import UniformRandomUnicast

        config = SimulationConfig(num_hosts=16, seed=7)
        config.dense_kernel = dense
        network = build_network(config)
        profiler = KernelProfiler()
        network.sim.attach_profiler(profiler)
        registry = MetricsRegistry()
        register_network_gauges(network, registry)
        # a period that does not divide the warmup/measure windows, so
        # sample points land mid-gap, not on workload time marks
        sampler = CycleSampler(registry, every=37)
        network.sim.add_component(sampler)
        workload = UniformRandomUnicast(
            load=0.005,
            payload_flits=16,
            warmup_cycles=300,
            measure_cycles=600,
        )
        result = run_workload(network, workload)
        return result, sampler.series, profiler

    def test_series_bit_identical_to_dense_kernel(self):
        active_result, active_series, profiler = self._run(dense=False)
        dense_result, dense_series, _ = self._run(dense=True)
        assert active_result.cycles == dense_result.cycles
        assert active_series == dense_series
        # the comparison was not vacuous: the active kernel really did
        # jump over sample points and the grid really was walked
        assert profiler.cycles_skipped > 0
        assert len(active_series) >= active_result.cycles // 37

    def test_no_sample_cycle_is_ever_skipped(self):
        result, series, _ = self._run(dense=False)
        expected = list(range(0, result.cycles, 37))
        assert [cycle for cycle, _ in series] == expected
