"""Benchmark archives carry provenance (satellite of the telemetry PR).

``benchmarks/_benchlib.show`` archives ``BENCH_<experiment>.json`` when
``REPRO_BENCH_OUT`` is set; each archive must embed a valid
:class:`repro.obs.manifest.RunManifest` so a number found on disk months
later can be traced to a commit, interpreter, and scale.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path
from types import SimpleNamespace

from repro.obs.sinks import SCHEMA_MANIFEST

BENCHMARKS_DIR = Path(__file__).parent.parent.parent / "benchmarks"


def _benchlib():
    if "_benchlib" in sys.modules:
        return sys.modules["_benchlib"]
    spec = importlib.util.spec_from_file_location(
        "_benchlib", BENCHMARKS_DIR / "_benchlib.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["_benchlib"] = module
    spec.loader.exec_module(module)
    return module


def _fake_result():
    return SimpleNamespace(
        experiment="e0_fake",
        table=SimpleNamespace(title="Fake table"),
        rows=[{"degree": 2, "latency": 10.0}],
        render=lambda: "Fake table\nrow",
    )


class TestWriteBenchJson:
    def test_archive_embeds_valid_manifest(self, tmp_path):
        benchlib = _benchlib()
        path = benchlib.write_bench_json(
            _fake_result(), str(tmp_path), wall_seconds=2.5
        )
        assert path == tmp_path / "BENCH_e0_fake.json"
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "e0_fake"
        assert payload["title"] == "Fake table"
        assert payload["rows"] == [{"degree": 2, "latency": 10.0}]
        manifest = payload["manifest"]
        assert manifest["schema"] == SCHEMA_MANIFEST
        assert manifest["wall_seconds"] == 2.5
        assert manifest["jobs"] == benchlib.JOBS
        assert manifest["extras"]["scale"] == "bench"

    def test_show_archives_only_when_env_set(
        self, tmp_path, monkeypatch, capsys
    ):
        benchlib = _benchlib()
        monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
        benchlib.show(_fake_result())
        assert list(tmp_path.iterdir()) == []

        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        benchlib.show(_fake_result(), wall_seconds=0.1)
        assert (tmp_path / "BENCH_e0_fake.json").exists()
        assert "Fake table" in capsys.readouterr().out
