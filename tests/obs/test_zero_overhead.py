"""Observability must be inert: same numbers with it off, on, or after.

The golden snapshots in ``tests/experiments/golden/`` pin every
experiment's quick-scale rows.  Here one cheap experiment runs with full
recording enabled (metrics + trace + sampling) and must still match its
snapshot bit-for-bit; a run after disabling must match again.  This is
the enforcement teeth behind the layer's contract (docs/observability.md):
instrumentation observes, it never steers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.schemes import MulticastScheme
from repro.experiments.common import QUICK
from repro.experiments.runner import EXPERIMENTS
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation
from repro.obs import runtime
from repro.obs.registry import NULL_REGISTRY
from repro.traffic.multicast import SingleMulticast

GOLDEN_DIR = Path(__file__).parent.parent / "experiments" / "golden"

#: the cheapest golden-pinned experiment (quick scale, ~1s serial)
EXPERIMENT = "x4"


def _golden_rows():
    return json.loads((GOLDEN_DIR / f"{EXPERIMENT}.json").read_text())


def _canonical(rows):
    return json.loads(json.dumps(rows))


class TestTablesAreUnchanged:
    def test_enabled_then_disabled_matches_golden(self, tmp_path):
        golden = _golden_rows()
        with runtime.enabled(
            metrics_out=str(tmp_path / "m.jsonl"),
            trace_out=str(tmp_path / "t.jsonl"),
            sample_every=100,
        ):
            recorded = EXPERIMENTS[EXPERIMENT](QUICK, jobs=1)
        assert _canonical(recorded.rows) == golden
        # recording actually happened — this was not a vacuous pass
        assert (tmp_path / "m.jsonl").stat().st_size > 0
        assert (tmp_path / "t.jsonl").stat().st_size > 0

        plain = EXPERIMENTS[EXPERIMENT](QUICK, jobs=1)
        assert _canonical(plain.rows) == golden
        assert plain.table.render() == recorded.table.render()


class TestSimulationIsUnchanged:
    def test_summary_identical_across_states(self, tmp_path):
        config = SimulationConfig(num_hosts=16)

        def workload():
            return SingleMulticast(
                source=0, degree=4, payload_flits=16,
                scheme=MulticastScheme.HARDWARE,
            )

        before = run_simulation(config, workload())
        with runtime.enabled(
            metrics_out=str(tmp_path / "m.jsonl"), sample_every=10
        ):
            during = run_simulation(config, workload())
        after = run_simulation(config, workload())
        assert before.summary() == during.summary() == after.summary()
        assert before.cycles == during.cycles == after.cycles


class TestDisabledPathIsNull:
    def test_default_build_uses_shared_null_registry(self):
        network = build_network(SimulationConfig(num_hosts=16))
        assert network.metrics is NULL_REGISTRY
        for switch in network.switches:
            assert switch.metrics is NULL_REGISTRY
            assert switch._obs is False
        # null counters record nothing even if poked
        network.switches[0]._c_forwarded.inc()
        assert NULL_REGISTRY.snapshot()["counters"] == {}
