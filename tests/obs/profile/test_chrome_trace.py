"""Chrome-trace building, validation, and the write gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.profile import (
    KernelProfiler,
    PacketLife,
    SpanProfiler,
    WormLifecycleTracer,
    build_trace,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.profile.chrome_trace import KERNEL_TID
from repro.obs.profile.runner import ProfileReport


def _life(packet_id, created, injected, delivered, hops=()):
    life = PacketLife(packet_id)
    life.created = created
    life.injected = injected
    life.delivered = delivered
    life.flits = 4
    for cycle, switch, event, waited in hops:
        life.hops.append(
            {
                "cycle": cycle,
                "switch": switch,
                "event": event,
                "waited": waited,
                "branches": 1,
            }
        )
    return life


def _report(arch="cb", packets=(), jumps=()):
    kernel = KernelProfiler()
    for start, length in jumps:
        kernel.record_fast_forward(start, length)
    return ProfileReport(
        arch=arch,
        scenario="unit",
        cycles=100,
        summary={"cycles": 100.0},
        kernel=kernel,
        spans=SpanProfiler(),
        lifecycle=WormLifecycleTracer(),
        packets=list(packets),
    )


class TestBuildTrace:
    def test_trace_validates_and_carries_all_rows(self):
        report = _report(
            packets=[
                _life(0, 0, 3, 30, hops=[(5, "sw.0", "route", 2)]),
                _life(1, 10, 10, 25),  # zero-setup worm: no setup slice
            ],
            jumps=[(40, 60)],
        )
        trace = build_trace([report])
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        names = [e["name"] for e in events]
        assert "process_name" in names
        assert "idle (fast-forwarded)" in names
        assert "route@sw.0" in names
        assert names.count("transfer") == 2
        assert names.count("setup") == 1  # the zero-setup worm drew none
        kernel_slices = [
            e for e in events
            if e["ph"] == "X" and e["tid"] == KERNEL_TID
        ]
        assert kernel_slices == [
            {
                "name": "idle (fast-forwarded)",
                "ph": "X",
                "ts": 40,
                "dur": 60,
                "pid": 1,
                "tid": KERNEL_TID,
                "args": {"cycles": 60},
            }
        ]

    def test_one_process_row_per_report(self):
        trace = build_trace([_report("cb"), _report("ib")])
        process_names = {
            event["args"]["name"]: event["pid"]
            for event in trace["traceEvents"]
            if event["name"] == "process_name"
        }
        assert process_names == {"cb/unit": 1, "ib/unit": 2}

    def test_incomplete_worms_are_skipped(self):
        incomplete = PacketLife(3)
        incomplete.created = 5  # never injected or delivered
        trace = build_trace([_report(packets=[incomplete])])
        assert validate_chrome_trace(trace) == []
        assert all(
            event["tid"] == KERNEL_TID or event["name"] == "process_name"
            for event in trace["traceEvents"]
        )

    def test_worm_threads_never_collide_with_the_kernel_thread(self):
        trace = build_trace([_report(packets=[_life(0, 0, 1, 2)])])
        worm_tids = {
            event["tid"]
            for event in trace["traceEvents"]
            if event["name"].startswith(("worm", "setup", "transfer"))
        }
        assert KERNEL_TID not in worm_tids


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) == ["trace must be a JSON object"]

    def test_rejects_missing_event_list(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_flags_bad_events_individually(self):
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "", "ph": "X", "pid": 1, "tid": 1,
                     "ts": 0, "dur": 1},
                    {"name": "ok", "ph": "B", "pid": 1, "tid": 1},
                    {"name": "ok", "ph": "i", "pid": "one", "tid": 1,
                     "ts": -3},
                    {"name": "ok", "ph": "X", "pid": 1, "tid": 1, "ts": 2},
                    "not-a-dict",
                ]
            }
        )
        assert len(errors) == 6
        assert any("empty name" in e for e in errors)
        assert any("unknown phase 'B'" in e for e in errors)
        assert any("pid must be an integer" in e for e in errors)
        assert any("ts must be a non-negative int" in e for e in errors)
        assert any("dur must be a non-negative int" in e for e in errors)
        assert any("not an object" in e for e in errors)

    def test_metadata_events_need_no_timestamp(self):
        trace = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "x"}}
            ]
        }
        assert validate_chrome_trace(trace) == []


class TestWriteTrace:
    def test_writes_valid_trace_and_returns_event_count(self, tmp_path):
        trace = build_trace([_report(packets=[_life(0, 0, 2, 9)])])
        path = tmp_path / "trace.json"
        count = write_trace(trace, str(path))
        assert count == len(trace["traceEvents"])
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["generator"] == "repro profile"

    def test_refuses_to_write_malformed_trace(self, tmp_path):
        path = tmp_path / "bad.json"
        with pytest.raises(ValueError, match="malformed trace"):
            write_trace({"traceEvents": [{"name": "x"}]}, str(path))
        assert not path.exists()
