"""WormLifecycleTracer: digesting the event stream into phase records."""

from __future__ import annotations

from repro.obs.profile import PacketLife, WormLifecycleTracer
from repro.sim.trace import Tracer


def _unicast_journey(tracer, packet=7):
    """One worm: created at 5, injected at 9, two hops, delivered at 40."""
    tracer.emit(9, "ni.0", "inject_start", packet=packet, flits=4, created=5)
    tracer.emit(12, "sw.0", "route", packet=packet, waited=0, branches=1)
    tracer.emit(20, "sw.1", "queue_cb", packet=packet, waited=6, branches=1)
    tracer.emit(40, "ni.3", "packet_delivered", packet=packet)


class TestDigestion:
    def test_unicast_phases_tile_the_end_to_end_latency(self):
        tracer = WormLifecycleTracer()
        _unicast_journey(tracer)
        life = tracer.packets[7]
        assert life.complete
        phases = life.phases()
        assert phases == {
            "setup": 4,       # 9 - 5
            "blocked": 6,     # the queue_cb wait
            "transfer": 25,   # 40 - 9 - 6
            "total": 35,      # 40 - 5
        }
        assert phases["setup"] + phases["blocked"] + phases["transfer"] == (
            phases["total"]
        )
        assert len(life.hops) == 2
        assert life.flits == 4

    def test_multicast_closes_at_last_delivery(self):
        tracer = WormLifecycleTracer()
        tracer.emit(0, "ni.0", "inject_start", packet=1, flits=8, created=0)
        tracer.emit(
            3, "sw.0", "admit_multidest", packet=1, waited=0, branches=3
        )
        tracer.emit(10, "ni.1", "packet_delivered", packet=1)
        tracer.emit(25, "ni.2", "packet_delivered", packet=1)
        tracer.emit(18, "ni.3", "packet_delivered", packet=1)
        life = tracer.packets[1]
        assert life.delivered == 25
        assert life.deliveries == 3
        assert life.branches == 2  # 3 branches = 2 extra copies

    def test_overblocked_multidest_transfer_clamps_at_zero(self):
        tracer = WormLifecycleTracer()
        tracer.emit(0, "ni.0", "inject_start", packet=2, flits=2, created=0)
        # blocked summed over replicated branches can exceed the wall
        # interval of the single tail delivery
        tracer.emit(1, "sw.0", "route", packet=2, waited=9, branches=1)
        tracer.emit(2, "sw.1", "route", packet=2, waited=9, branches=1)
        tracer.emit(10, "ni.1", "packet_delivered", packet=2)
        phases = tracer.packets[2].phases()
        assert phases["blocked"] == 18
        assert phases["transfer"] == 0

    def test_negative_waits_are_clamped(self):
        tracer = WormLifecycleTracer()
        tracer.emit(0, "ni.0", "inject_start", packet=3, flits=1, created=0)
        tracer.emit(2, "sw.0", "bypass", packet=3, waited=-4, branches=1)
        assert tracer.packets[3].blocked == 0
        assert tracer.packets[3].hops[0]["waited"] == 0

    def test_events_without_packet_id_are_counted_not_digested(self):
        tracer = WormLifecycleTracer()
        tracer.emit(0, "sw.0", "chunk_freed", chunks=3)
        tracer.emit(1, "sw.0", "credit_return")
        assert tracer.packets == {}
        assert tracer.ignored_events == 2

    def test_incomplete_worm_has_no_phases(self):
        tracer = WormLifecycleTracer()
        tracer.emit(0, "ni.0", "inject_start", packet=4, flits=2, created=0)
        life = tracer.packets[4]
        assert not life.complete
        snap = life.snapshot()
        assert "setup" not in snap
        assert snap["packet"] == 4


class TestFinaliseAndSummary:
    def test_finalise_returns_completed_sorted_by_id(self):
        tracer = WormLifecycleTracer()
        _unicast_journey(tracer, packet=9)
        _unicast_journey(tracer, packet=2)
        tracer.emit(50, "ni.0", "inject_start", packet=5, flits=1, created=50)
        done = tracer.finalise()
        assert [life.packet_id for life in done] == [2, 9]
        summary = tracer.phase_summary()
        assert summary["packets"] == 3
        assert summary["incomplete"] == 1
        assert summary["setup"] == {"count": 2, "mean": 4.0}
        assert summary["blocked"] == {"count": 2, "mean": 6.0}
        assert summary["transfer"] == {"count": 2, "mean": 25.0}
        assert summary["setup_hist"]["count"] == 2

    def test_snapshot_includes_phases_when_complete(self):
        tracer = WormLifecycleTracer()
        _unicast_journey(tracer)
        snap = tracer.packets[7].snapshot()
        assert snap["total"] == 35
        assert snap["hop_count"] == 2
        assert snap["deliveries"] == 1


class TestChaining:
    def test_inner_tracer_receives_every_event_verbatim(self):
        inner = Tracer(enabled=True)
        tracer = WormLifecycleTracer(inner=inner)
        _unicast_journey(tracer)
        tracer.emit(1, "sw.0", "credit_return")
        assert len(inner.records) == 5
        assert inner.records[0].event == "inject_start"

    def test_keep_retains_records_in_the_ring_buffer(self):
        tracer = WormLifecycleTracer(keep=True)
        _unicast_journey(tracer)
        assert len(tracer.records) == 4

    def test_default_retains_nothing(self):
        tracer = WormLifecycleTracer()
        _unicast_journey(tracer)
        assert len(tracer.records) == 0
        assert tracer.enabled  # still a live tracer for emit call sites


class TestPacketLife:
    def test_fresh_life_is_incomplete(self):
        life = PacketLife(0)
        assert not life.complete
        assert life.snapshot()["hop_count"] == 0
