"""Profiling must observe, never steer: bit-identical results.

The whole profiling subsystem — kernel profiler hook, span-profiler
link wrapping, lifecycle tracer emits, metrics registry — attaches to
the same simulation code the goldens run.  These tests drive random
workloads across both switch architectures, both kernel flavours and
random seeds, and assert a fully-profiled run's ``summary()`` equals an
unprofiled one bit-for-bit; the exported Chrome trace must also always
validate.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.obs.profile import (
    build_trace,
    run_profiled,
    validate_chrome_trace,
)
from repro.traffic.multicast import RandomMulticastStream
from repro.traffic.unicast import UniformRandomUnicast

ARCHITECTURES = (
    SwitchArchitecture.CENTRAL_BUFFER,
    SwitchArchitecture.INPUT_BUFFER,
)


def _config(arch, seed, packed):
    config = SimulationConfig(
        num_hosts=16, seed=seed, switch_architecture=arch
    )
    config.packed = packed
    return config


def _unicast():
    return UniformRandomUnicast(
        load=0.1,
        payload_flits=8,
        warmup_cycles=100,
        measure_cycles=200,
    )


def _mcast():
    return RandomMulticastStream(
        ops_per_host_per_kilocycle=2.0,
        degree=4,
        payload_flits=8,
        scheme=MulticastScheme.HARDWARE,
        warmup_cycles=100,
        measure_cycles=200,
    )


class TestProfilingIsInert:
    @given(
        arch=st.sampled_from(ARCHITECTURES),
        packed=st.booleans(),
        seed=st.integers(0, 2**16),
        make_workload=st.sampled_from([_unicast, _mcast]),
    )
    @settings(max_examples=10, deadline=None)
    def test_summary_bit_identical_with_profiling_on(
        self, arch, packed, seed, make_workload
    ):
        plain = run_workload(
            build_network(_config(arch, seed, packed)), make_workload()
        )
        report = run_profiled(
            _config(arch, seed, packed), make_workload()
        )
        assert report.summary == plain.summary()
        assert report.cycles == plain.cycles
        # the profiled run really was instrumented, not a no-op
        assert report.kernel.steps > 0
        assert report.spans.links_attached > 0

    @given(
        arch=st.sampled_from(ARCHITECTURES),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=6, deadline=None)
    def test_exported_trace_always_validates(self, arch, seed):
        report = run_profiled(
            _config(arch, seed, packed=True),
            _unicast(),
            arch_label=arch.value,
            scenario_label="hypothesis",
        )
        trace = build_trace([report])
        assert validate_chrome_trace(trace) == []
        assert report.packets  # some worms completed, so rows were drawn

    def test_lifecycle_digest_matches_collector_deliveries(self):
        config = _config(SwitchArchitecture.CENTRAL_BUFFER, 3, packed=True)
        report = run_profiled(config, _unicast())
        # every completed worm in the digest reached its destination; the
        # collector and the tracer must agree on how many did
        delivered = sum(life.deliveries for life in report.packets)
        assert delivered == report.counters.get("host.messages_delivered")
