"""Tests for the profiling subsystem (repro.obs.profile)."""
