"""`python -m repro profile` CLI: reports, exports, digests, errors."""

from __future__ import annotations

import json

from repro.bench.kernel import BENCH_SCHEMA
from repro.obs.profile import validate_chrome_trace
from repro.obs.profile.runner import main
from repro.obs.sinks import (
    PROFILE_SECTIONS,
    SCHEMA_LIFECYCLE,
    SCHEMA_PROFILE,
    validate_record,
)


class TestProfileCli:
    def test_profiles_both_archs_and_exports(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        digest_path = tmp_path / "digest.jsonl"
        code = main(
            [
                "--scenario", "saturation-hotspot",
                "--arch", "both",
                "--max-cycles", "400",
                "--export-trace", str(trace_path),
                "--out", str(digest_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel [cb/saturation-hotspot]" in out
        assert "kernel [ib/saturation-hotspot]" in out
        assert "worm phases" in out
        assert "link utilisation" in out

        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {1, 2}  # one process row per architecture

        records = [
            json.loads(line)
            for line in digest_path.read_text().splitlines()
        ]
        for record in records:
            assert validate_record(record) is None
        sections = {
            (r["arch"], r["section"])
            for r in records
            if r["schema"] == SCHEMA_PROFILE
        }
        assert sections == {
            (arch, section)
            for arch in ("cb", "ib")
            for section in PROFILE_SECTIONS
        }
        lives = [r for r in records if r["schema"] == SCHEMA_LIFECYCLE]
        assert lives
        assert all("packet" in r for r in lives)

    def test_single_arch_run(self, capsys):
        code = main(
            ["--scenario", "saturation-hotspot", "--arch", "cb",
             "--max-cycles", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel [cb/saturation-hotspot]" in out
        assert "ib/" not in out

    def test_unknown_scenario_fails_with_catalogue(self, capsys):
        code = main(["--scenario", "no-such-scenario"])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "saturation-hotspot" in err  # the catalogue is listed

    def test_bench_trend_mode(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_a.json"
        artifact.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "manifest": {"created_at": "2026-01-01"},
                    "scenarios": [{"scenario": "hot", "speedup": 2.2}],
                }
            )
        )
        code = main(["--bench-trend", str(artifact)])
        assert code == 0
        assert "speedup trend" in capsys.readouterr().out

    def test_bench_trend_rejects_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["--bench-trend", str(bad)])
        assert code == 1
        assert "profile:" in capsys.readouterr().err
