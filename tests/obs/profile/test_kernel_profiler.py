"""Unit tests for KernelProfiler and SpanProfiler accounting."""

from __future__ import annotations

from repro.obs.profile import KernelProfiler, SpanProfiler
from repro.obs.profile.kernel_profiler import MAX_JUMPS
from repro.sim.component import Component
from repro.switches.link import Link


class Noop(Component):
    def __init__(self, name: str = "noop") -> None:
        super().__init__(name)

    def tick(self, now: int) -> None:
        pass


class TestKernelProfiler:
    def test_ticks_attributed_by_class(self):
        prof = KernelProfiler()
        a, b = Noop("a"), Noop("b")
        for _ in range(3):
            prof.record_tick(a)
        prof.record_tick(b)
        assert prof.ticks_by_class == {"Noop": 4}
        assert prof.total_ticks == 4

    def test_step_accumulation_and_backlog_peak(self):
        prof = KernelProfiler()
        prof.record_step(0, events=2, backlog=5)
        prof.record_step(1, events=0, backlog=9)
        prof.record_step(2, events=1, backlog=1)
        assert prof.steps == 3
        assert prof.events == 3
        assert prof.backlog_peak == 9
        snap = prof.snapshot()
        assert snap["backlog_mean"] == 5.0

    def test_fast_forward_jump_accounting(self):
        prof = KernelProfiler()
        prof.record_fast_forward(10, 90)
        prof.record_fast_forward(200, 1)
        assert prof.fast_forwards == 2
        assert prof.cycles_skipped == 91
        assert prof.jumps == [(10, 90), (200, 1)]
        hist = prof.idle_spans.snapshot()
        assert hist["count"] == 2
        assert hist["total"] == 91

    def test_jump_records_are_capped_not_the_counters(self):
        prof = KernelProfiler()
        for start in range(MAX_JUMPS + 7):
            prof.record_fast_forward(start, 1)
        assert len(prof.jumps) == MAX_JUMPS
        assert prof.jumps_dropped == 7
        assert prof.fast_forwards == MAX_JUMPS + 7
        assert prof.cycles_skipped == MAX_JUMPS + 7

    def test_snapshot_is_json_ready_and_sorted(self):
        prof = KernelProfiler()
        prof.record_tick(Noop())
        prof.record_step(0, events=0, backlog=0)
        snap = prof.snapshot()
        assert set(snap) == {
            "steps", "events", "ticks", "ticks_by_class", "backlog_mean",
            "backlog_peak", "fast_forwards", "cycles_skipped",
            "idle_span_hist",
        }
        assert snap["ticks"] == 1

    def test_empty_snapshot_has_zero_mean(self):
        assert KernelProfiler().snapshot()["backlog_mean"] == 0.0


class TestSpanProfiler:
    @staticmethod
    def _link(name: str = "l", credits: int = 64) -> Link:
        link = Link(name)
        link.set_credits(credits)
        return link

    def test_span_send_and_receive_are_histogrammed(self):
        prof = SpanProfiler()
        link = self._link()
        prof.attach(link)
        worm = object()
        link.send_span(0, worm, 0, 8)
        # all 8 members have arrived by cycle latency + 7
        span = link.receive_span(8)
        assert span is not None and span[2] == 8
        snap = prof.snapshot()
        assert snap["links_attached"] == 1
        assert snap["tx_span_hist"] == {
            **snap["tx_span_hist"],
            "count": 1,
            "total": 8,
        }
        assert snap["rx_span_hist"]["count"] == 1
        assert snap["rx_span_hist"]["total"] == 8

    def test_per_flit_sends_land_in_the_one_bucket(self):
        prof = SpanProfiler()
        link = self._link()
        prof.attach(link)
        worm = object()
        link.send_packed(0, worm, 0)
        assert link.can_send(1)
        link.send_granted(1, worm, 1)
        tx = prof.tx_spans.snapshot()
        assert tx["count"] == 2
        assert tx["total"] == 2
        assert tx["counts"][0] == 2  # both in the <=1 bucket

    def test_empty_receive_is_not_counted(self):
        prof = SpanProfiler()
        link = self._link()
        prof.attach(link)
        assert link.receive_span(0) is None
        assert prof.rx_spans.snapshot()["count"] == 0

    def test_attach_is_idempotent_per_link(self):
        prof = SpanProfiler()
        link = self._link()
        prof.attach(link)
        prof.attach(link)
        assert prof.links_attached == 1
        worm = object()
        link.send_span(0, worm, 0, 4)
        # a double attach must not double-count
        assert prof.tx_spans.snapshot()["count"] == 1

    def test_attach_all_wraps_every_link(self):
        prof = SpanProfiler()
        links = [self._link(f"l{i}") for i in range(3)]
        prof.attach_all(links)
        assert prof.links_attached == 3

    def test_unattached_link_keeps_original_bindings(self):
        attached = self._link("a")
        plain = self._link("b")
        SpanProfiler().attach(attached)
        assert getattr(plain, "_span_profiled", False) is False
        assert plain.send_span == Link.send_span.__get__(plain)
