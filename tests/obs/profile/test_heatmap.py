"""Link-utilisation heatmaps: data extraction and ASCII rendering."""

from __future__ import annotations

from repro.core.schemes import MulticastScheme
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.obs.profile import link_heatmap, render_heatmap
from repro.obs.profile.heatmap import SHADES, _shade
from repro.traffic.multicast import SingleMulticast


def _run_heatmap():
    network = build_network(SimulationConfig(num_hosts=16, seed=1))
    result = run_workload(
        network,
        SingleMulticast(
            source=0,
            degree=15,
            payload_flits=32,
            scheme=MulticastScheme.HARDWARE,
        ),
    )
    return link_heatmap(network, result.cycles)


class TestLinkHeatmap:
    def test_structure_and_bounds(self):
        heatmap = _run_heatmap()
        assert heatmap["cycles"] > 0
        assert heatmap["switches"] and heatmap["hosts"]
        for entry in heatmap["switches"]:
            for port in entry["ports"]:
                assert 0.0 <= port["util"] <= 1.0
                assert port["flits"] >= 0
                assert isinstance(port["link"], str)
        # a broadcast crossed every switch: someone moved flits
        assert any(
            port["flits"] > 0
            for entry in heatmap["switches"]
            for port in entry["ports"]
        )

    def test_host_rows_cover_every_interface(self):
        heatmap = _run_heatmap()
        assert [host["host"] for host in heatmap["hosts"]] == list(range(16))
        # exactly one host injected (the multicast source)
        injectors = [h for h in heatmap["hosts"] if h["flits"] > 0]
        assert len(injectors) == 1 and injectors[0]["host"] == 0

    def test_zero_cycles_does_not_divide_by_zero(self):
        network = build_network(SimulationConfig(num_hosts=16, seed=1))
        heatmap = link_heatmap(network, 0)
        assert heatmap["cycles"] == 0


class TestRender:
    def test_shade_ramp_covers_both_extremes(self):
        assert _shade(0.0) == " "
        assert _shade(1.0) == "@"
        assert _shade(2.5) == "@"  # clamped
        assert _shade(-1.0) == " "

    def test_render_has_one_row_per_switch_plus_hosts(self):
        heatmap = _run_heatmap()
        text = render_heatmap(heatmap)
        lines = text.splitlines()
        assert lines[0].startswith("link utilisation over")
        assert SHADES in lines[0]
        switch_names = [s["name"] for s in heatmap["switches"]]
        for name in switch_names:
            assert any(line.strip().startswith(name) for line in lines)
        assert any("hosts" in line for line in lines)

    def test_long_host_rows_wrap_at_width(self):
        heatmap = {
            "cycles": 10,
            "switches": [],
            "hosts": [
                {"host": i, "link": f"l{i}", "flits": 0, "util": 0.0}
                for i in range(10)
            ],
        }
        text = render_heatmap(heatmap, width=4)
        host_rows = [l for l in text.splitlines() if "|" in l]
        assert len(host_rows) == 3  # 10 glyphs in rows of 4

    def test_render_empty_heatmap(self):
        assert "link utilisation" in render_heatmap({})
