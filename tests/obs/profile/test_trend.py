"""Bench-trend reporting over recorded BENCH_*.json artifacts."""

from __future__ import annotations

import json

import pytest

from repro.bench.kernel import BENCH_SCHEMA
from repro.obs.profile import render_trend
from repro.obs.profile.trend import TrendError, collect_trend, load_artifact


def _artifact(path, created_at, speedups):
    artifact = {
        "schema": BENCH_SCHEMA,
        "manifest": {"created_at": created_at},
        "scenarios": [
            {"scenario": name, "speedup": value}
            for name, value in speedups.items()
        ],
    }
    path.write_text(json.dumps(artifact))
    return str(path)


class TestLoadArtifact:
    def test_valid_artifact_loads(self, tmp_path):
        path = _artifact(tmp_path / "a.json", "2026-01-01", {"s": 2.0})
        artifact = load_artifact(path)
        assert artifact["schema"] == BENCH_SCHEMA
        assert artifact["_path"] == path

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/1", "scenarios": []}))
        with pytest.raises(TrendError, match="schema"):
            load_artifact(str(path))

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TrendError):
            load_artifact(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TrendError):
            load_artifact(str(tmp_path / "absent.json"))

    def test_missing_scenarios_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(TrendError, match="scenarios"):
            load_artifact(str(path))


class TestCollectTrend:
    def test_artifacts_are_ordered_chronologically(self, tmp_path):
        newer = _artifact(
            tmp_path / "n.json", "2026-02-01T00:00:00", {"s": 3.0}
        )
        older = _artifact(
            tmp_path / "o.json", "2026-01-01T00:00:00", {"s": 2.0}
        )
        # pass newest first: the trend must still read oldest -> newest
        labels, series = collect_trend([newer, older])
        assert labels == ["2026-01-01T00:00:00", "2026-02-01T00:00:00"]
        assert series == {"s": [2.0, 3.0]}

    def test_missing_scenario_leaves_a_hole(self, tmp_path):
        first = _artifact(
            tmp_path / "a.json", "2026-01-01", {"s": 2.0, "t": 1.5}
        )
        second = _artifact(tmp_path / "b.json", "2026-01-02", {"s": 2.5})
        _, series = collect_trend([first, second])
        assert series["t"] == [1.5, None]


class TestRenderTrend:
    def test_table_carries_delta_annotation(self, tmp_path):
        paths = [
            _artifact(tmp_path / "a.json", "2026-01-01", {"hot": 2.0}),
            _artifact(tmp_path / "b.json", "2026-01-02", {"hot": 2.5}),
        ]
        text = render_trend(paths)
        assert "speedup trend" in text
        assert "hot" in text
        assert "+0.50" in text

    def test_regression_shows_negative_delta(self, tmp_path):
        paths = [
            _artifact(tmp_path / "a.json", "2026-01-01", {"hot": 2.5}),
            _artifact(tmp_path / "b.json", "2026-01-02", {"hot": 2.0}),
        ]
        assert "-0.50" in render_trend(paths)

    def test_undated_artifact_falls_back_to_path_label(self, tmp_path):
        path = tmp_path / "undated.json"
        path.write_text(
            json.dumps({"schema": BENCH_SCHEMA, "scenarios": []})
        )
        text = render_trend([str(path)])
        assert "undated.json" in text
