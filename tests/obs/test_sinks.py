"""JSONL sinks: writers, streaming tracer, schema validation."""

from __future__ import annotations

import json

from repro.obs.sinks import (
    JsonlTracer,
    JsonlWriter,
    MetricsSink,
    SCHEMA_METRICS,
    SCHEMA_RUN,
    SCHEMA_TRACE,
    iter_jsonl,
    validate_file,
    validate_record,
)


class TestJsonlWriter:
    def test_appends_one_line_per_record(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlWriter(str(path)) as writer:
            writer.write({"a": 1})
            writer.write({"b": [1, 2]})
            assert writer.lines_written == 2
        with JsonlWriter(str(path)) as writer:  # append, not truncate
            writer.write({"c": 3})
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == [
            {"a": 1}, {"b": [1, 2]}, {"c": 3}
        ]

    def test_non_json_values_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlWriter(str(path)) as writer:
            writer.write({"obj": object()})
        (line,) = path.read_text().strip().splitlines()
        assert "object object" in json.loads(line)["obj"]

    def test_close_is_idempotent(self, tmp_path):
        writer = JsonlWriter(str(tmp_path / "out.jsonl"))
        writer.close()
        writer.close()


class TestMetricsSink:
    def test_run_events_and_points(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = MetricsSink(str(path))
        sink.write_run_event("r1", "start", seed=7)
        sink.write_point("r1", 100, {"g": 1.5})
        sink.write_run_event("r1", "end", cycles=200)
        sink.close()
        records = [obj for _, obj in iter_jsonl(str(path))]
        assert [r["schema"] for r in records] == [
            SCHEMA_RUN, SCHEMA_METRICS, SCHEMA_RUN
        ]
        assert records[0]["seed"] == 7
        assert records[1] == {
            "schema": SCHEMA_METRICS, "run": "r1",
            "cycle": 100, "values": {"g": 1.5},
        }
        assert validate_file(str(path)) == (3, [])


class TestJsonlTracer:
    def test_streams_without_retaining(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(str(path), run="r9")
        tracer.emit(5, "sw0", "flit_in", port=2)
        tracer.emit(6, "sw0", "flit_in", port=3)
        tracer.close()
        assert tracer.records == []  # not memory-bound
        assert tracer.lines_written == 2
        records = [obj for _, obj in iter_jsonl(str(path))]
        assert records[0] == {
            "schema": SCHEMA_TRACE, "run": "r9", "cycle": 5,
            "source": "sw0", "event": "flit_in", "details": {"port": 2},
        }
        assert validate_file(str(path)) == (2, [])

    def test_keep_records_also_fills_ring_buffer(self, tmp_path):
        tracer = JsonlTracer(
            str(tmp_path / "t.jsonl"), keep_records=True, limit=2
        )
        for i in range(4):
            tracer.emit(i, "a", "e", i=i)
        tracer.close()
        assert tracer.lines_written == 4  # the stream is complete
        assert [r.get("i") for r in tracer.records] == [2, 3]
        assert tracer.dropped_count == 2


class TestValidation:
    def test_unknown_schema_rejected(self):
        assert "unknown schema" in validate_record({"schema": "nope/9"})
        assert validate_record([1, 2]) == "record is not a JSON object"

    def test_metrics_record_requirements(self):
        good = {
            "schema": SCHEMA_METRICS, "run": "r", "cycle": 0, "values": {}
        }
        assert validate_record(good) is None
        assert validate_record({**good, "cycle": -1}) is not None
        assert validate_record({**good, "cycle": "0"}) is not None
        assert validate_record({**good, "values": {"g": "high"}}) is not None
        assert validate_record({**good, "run": 7}) is not None

    def test_trace_record_requirements(self):
        good = {
            "schema": SCHEMA_TRACE, "run": "r", "cycle": 1,
            "source": "sw0", "event": "flit_in", "details": {},
        }
        assert validate_record(good) is None
        assert validate_record({**good, "details": None}) is not None
        assert validate_record({**good, "source": 3}) is not None

    def test_missing_required_field_rejected(self):
        record = {
            "schema": SCHEMA_TRACE, "run": "r", "cycle": 1,
            "source": "sw0", "event": "flit_in", "details": {},
        }
        del record["run"]
        problem = validate_record(record)
        assert problem is not None
        assert "missing required field" in problem
        assert "run" in problem

    def test_run_record_requirements(self):
        good = {"schema": SCHEMA_RUN, "run": "r", "event": "start"}
        assert validate_record(good) is None
        assert validate_record({**good, "event": "middle"}) is not None

    def test_validate_file_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"schema": SCHEMA_RUN, "run": "r", "event": "start"}
            )
            + "\nnot json\n"
            + json.dumps({"schema": "bogus/1"})
            + "\n"
        )
        valid, errors = validate_file(str(path))
        assert valid == 1
        assert len(errors) == 2
        assert errors[0].startswith("line 2:")
        assert errors[1].startswith("line 3:")

    def test_iter_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"a":1}\n\n{"b":2}\n')
        assert [n for n, _ in iter_jsonl(str(path))] == [1, 3]
