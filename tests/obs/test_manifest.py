"""Run manifests: collection, round-trip, hashing."""

from __future__ import annotations

import json
import platform

import pytest

from repro.network.config import SimulationConfig, describe
from repro.obs.manifest import (
    RunManifest,
    config_sha256,
    git_sha,
    peak_rss_bytes,
)
from repro.obs.sinks import SCHEMA_MANIFEST


class TestCollect:
    def test_captures_process_provenance(self):
        manifest = RunManifest.collect(
            wall_seconds=1.5, jobs=4, experiments=["e1"]
        )
        assert manifest.python_version == platform.python_version()
        assert manifest.schema == SCHEMA_MANIFEST
        assert manifest.wall_seconds == 1.5
        assert manifest.jobs == 4
        assert manifest.extras == {"experiments": ["e1"]}
        assert manifest.created_at.endswith("Z")
        # this test runs inside the repository checkout
        assert len(manifest.git_sha) == 40

    def test_git_sha_is_hex_or_unknown(self):
        sha = git_sha()
        assert sha == "unknown" or all(
            c in "0123456789abcdef" for c in sha
        )

    def test_peak_rss_positive_on_posix(self):
        peak = peak_rss_bytes()
        assert peak is None or peak > 0


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        original = RunManifest.collect(jobs=2, note="hello")
        original.write(str(path))
        loaded = RunManifest.load(str(path))
        assert loaded == original

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a"):
            RunManifest.load(str(path))

    def test_to_dict_leads_with_schema(self):
        keys = list(RunManifest.collect().to_dict())
        assert keys[0] == "schema"


class TestConfigHash:
    def test_stable_and_short(self):
        fingerprint = describe(SimulationConfig(num_hosts=16))
        assert config_sha256(fingerprint) == config_sha256(fingerprint)
        assert len(config_sha256(fingerprint)) == 16

    def test_sensitive_to_config_changes(self):
        a = config_sha256(describe(SimulationConfig(num_hosts=16)))
        b = config_sha256(describe(SimulationConfig(num_hosts=16, seed=2)))
        assert a != b
