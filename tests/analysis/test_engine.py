"""Engine behaviour: baselines, fingerprints, parse errors, discovery."""

from __future__ import annotations

import textwrap

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import iter_python_files, lint_paths
from repro.analysis.findings import scan_suppressions
from tests.analysis.conftest import codes, lint_snippet

WALLCLOCK = """
    import time

    def stamp():
        return time.time()
    """


class TestBaseline:
    def test_baselined_findings_do_not_fail_the_gate(self, tmp_path):
        first = lint_snippet(tmp_path, "repro/sim/old.py", WALLCLOCK)
        assert codes(first) == ["REP002"]

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.new)
        fingerprints = load_baseline(baseline_path)
        assert len(fingerprints) == 1

        second = lint_snippet(
            tmp_path, "repro/sim/old.py", WALLCLOCK, baseline=fingerprints
        )
        assert second.new == []
        assert [f.code for f in second.baselined] == ["REP002"]
        assert second.exit_code == 0

    def test_fingerprint_survives_line_shift(self, tmp_path):
        first = lint_snippet(tmp_path, "repro/sim/old.py", WALLCLOCK)
        fingerprints = {f.fingerprint for f in first.new}

        shifted = "# a new leading comment\n\n" + textwrap.dedent(
            WALLCLOCK
        )
        second = lint_snippet(
            tmp_path, "repro/sim/old.py", shifted, baseline=fingerprints
        )
        assert second.new == []
        assert len(second.baselined) == 1

    def test_new_finding_still_fails_with_baseline(self, tmp_path):
        first = lint_snippet(tmp_path, "repro/sim/old.py", WALLCLOCK)
        fingerprints = {f.fingerprint for f in first.new}

        grown = textwrap.dedent(WALLCLOCK) + (
            "\ndef stamp2():\n    return time.perf_counter()\n"
        )
        second = lint_snippet(
            tmp_path, "repro/sim/old.py", grown, baseline=fingerprints
        )
        assert codes(second) == ["REP002"]
        assert len(second.baselined) == 1

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        source = """
            import time

            def a():
                return time.time()

            def b():
                return time.time()
            """
        result = lint_snippet(tmp_path, "repro/sim/twice.py", source)
        assert codes(result) == ["REP002", "REP002"]
        fingerprints = {f.fingerprint for f in result.new}
        assert len(fingerprints) == 2

    def test_baseline_file_is_schema_stamped(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [])
        import json

        data = json.loads(path.read_text())
        assert data["schema"] == BASELINE_SCHEMA


class TestEngine:
    def test_parse_error_is_a_rep000_finding(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/sim/broken.py", "def broken(:\n"
        )
        assert codes(result) == ["REP000"]
        assert result.exit_code == 1

    def test_parse_error_is_not_suppressible(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "repro/sim/broken.py",
            "def broken(:  # reprolint: ignore[REP000] nope\n",
        )
        assert codes(result) == ["REP000"]

    def test_clean_file_exit_zero(self, tmp_path):
        result = lint_snippet(
            tmp_path, "repro/sim/clean.py", "X = 1\n"
        )
        assert result.new == []
        assert result.exit_code == 0
        assert result.checked_files == 1

    def test_directory_discovery_skips_caches(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "a.py").write_text("A = 1\n")
        pycache = tmp_path / "repro" / "__pycache__"
        pycache.mkdir()
        (pycache / "a.cpython-311.py").write_text("B = 2\n")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["a.py"]

    def test_results_sorted_by_path_and_line(self, tmp_path):
        lint_snippet(tmp_path, "repro/sim/zz.py", WALLCLOCK)
        result_b = lint_snippet(tmp_path, "repro/sim/aa.py", WALLCLOCK)
        combined = lint_paths([tmp_path], root=tmp_path)
        paths = [f.path for f in combined.new]
        assert paths == sorted(paths)
        assert result_b.new  # both files individually dirty


class TestSuppressionScanner:
    def test_scan_finds_codes_and_reason(self):
        source = "x = 1  # reprolint: ignore[REP001, REP003] legacy rig\n"
        found = scan_suppressions(source)
        assert found[1].codes == {"REP001", "REP003"}
        assert found[1].reason == "legacy rig"

    def test_blanket_ignore_is_not_honoured(self):
        assert scan_suppressions("x = 1  # reprolint: ignore[]\n") == {}
        assert scan_suppressions("x = 1  # noqa\n") == {}
