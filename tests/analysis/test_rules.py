"""Per-rule fixture cases: positive, negative, and scoping behaviour."""

from __future__ import annotations

from tests.analysis.conftest import codes


class TestREP001Randomness:
    def test_module_level_random_call_flagged(self, lint):
        result = lint(
            "repro/traffic/bad.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert "REP001" in codes(result)

    def test_global_api_import_flagged(self, lint):
        result = lint(
            "repro/traffic/bad.py",
            "from random import randint\n",
        )
        assert codes(result) == ["REP001"]

    def test_numpy_random_flagged(self, lint):
        result = lint(
            "repro/core/bad.py",
            """
            import numpy as np

            def noise():
                return np.random.rand()
            """,
        )
        assert "REP001" in codes(result)

    def test_unseeded_random_flagged_seeded_allowed(self, lint):
        result = lint(
            "repro/topology/bad.py",
            """
            from random import Random

            unseeded = Random()
            seeded = Random(42)
            """,
        )
        assert codes(result) == ["REP001"]
        assert "unseeded" in result.new[0].message

    def test_rng_home_is_exempt(self, lint):
        result = lint(
            "repro/sim/rng.py",
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
        )
        assert codes(result) == []

    def test_named_stream_draws_not_flagged(self, lint):
        result = lint(
            "repro/traffic/good.py",
            """
            def gap(streams):
                return streams.stream("traffic").expovariate(0.5)
            """,
        )
        assert codes(result) == []


class TestREP002WallClock:
    def test_time_time_in_kernel_package_flagged(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert codes(result) == ["REP002"]

    def test_from_import_alias_flagged(self, lint):
        result = lint(
            "repro/sim/bad.py",
            """
            from time import perf_counter as pc

            def stamp():
                return pc()
            """,
        )
        assert codes(result) == ["REP002"]

    def test_datetime_now_flagged(self, lint):
        result = lint(
            "repro/network/bad.py",
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert codes(result) == ["REP002"]

    def test_obs_and_parallel_are_allowed(self, lint):
        source = """
            import time

            def stamp():
                return time.perf_counter()
            """
        assert codes(lint("repro/obs/ok.py", source)) == []
        assert codes(lint("repro/experiments/parallel.py", source)) == []

    def test_pure_gmtime_with_argument_allowed(self, lint):
        result = lint(
            "repro/host/ok.py",
            """
            import time

            EPOCH = time.gmtime(0)
            """,
        )
        assert codes(result) == []

    def test_zero_arg_gmtime_flagged(self, lint):
        result = lint(
            "repro/host/bad.py",
            """
            import time

            def stamp():
                return time.gmtime()
            """,
        )
        assert codes(result) == ["REP002"]


class TestREP003UnorderedIteration:
    def test_for_over_set_literal_flagged(self, lint):
        result = lint(
            "repro/sim/bad.py",
            """
            def drain():
                for port in {3, 1, 2}:
                    yield port
            """,
        )
        assert codes(result) == ["REP003"]

    def test_for_over_keys_flagged(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            def arbitrate(requests):
                for port in requests.keys():
                    return port
            """,
        )
        assert codes(result) == ["REP003"]

    def test_list_of_set_flagged(self, lint):
        result = lint(
            "repro/routing/bad.py",
            """
            def order(hosts):
                return list(set(hosts))
            """,
        )
        assert codes(result) == ["REP003"]

    def test_next_iter_and_pop_on_set_local_flagged(self, lint):
        result = lint(
            "repro/host/bad.py",
            """
            def pick(xs):
                pending = set(xs)
                first = next(iter(pending))
                second = pending.pop()
                return first, second
            """,
        )
        assert codes(result) == ["REP003", "REP003"]

    def test_sorted_wrapping_is_fine(self, lint):
        result = lint(
            "repro/sim/good.py",
            """
            def drain(ports):
                pending = set(ports)
                for port in sorted(pending):
                    yield port
            """,
        )
        assert codes(result) == []

    def test_order_insensitive_folds_are_fine(self, lint):
        result = lint(
            "repro/flits/good.py",
            """
            def summarise(xs):
                pending = set(xs)
                return min(pending), len(pending), 3 in pending
            """,
        )
        assert codes(result) == []

    def test_rule_is_scoped_to_kernel_packages(self, lint):
        result = lint(
            "repro/experiments/ok.py",
            """
            def order(hosts):
                return list(set(hosts))
            """,
        )
        assert codes(result) == []


class TestREP004PoolPicklability:
    def test_lambda_fn_flagged(self, lint):
        result = lint(
            "repro/experiments/bad.py",
            """
            from repro.experiments.parallel import RunSpec

            def plan():
                return [RunSpec(key=("a",), fn=lambda: 1)]
            """,
        )
        assert codes(result) == ["REP004"]

    def test_locally_defined_function_flagged(self, lint):
        result = lint(
            "repro/experiments/bad.py",
            """
            from repro.experiments.parallel import RunSpec

            def plan():
                def worker():
                    return 1

                return [RunSpec(key=("a",), fn=worker)]
            """,
        )
        assert codes(result) == ["REP004"]

    def test_module_level_worker_is_fine(self, lint):
        result = lint(
            "repro/experiments/good.py",
            """
            from repro.experiments.parallel import RunSpec

            def worker():
                return 1

            def plan():
                return [RunSpec(key=("a",), fn=worker)]
            """,
        )
        assert codes(result) == []

    def test_pool_map_lambda_flagged(self, lint):
        result = lint(
            "repro/experiments/bad.py",
            """
            def run(pool, xs):
                return pool.imap_unordered(lambda x: x + 1, xs)
            """,
        )
        assert codes(result) == ["REP004"]

    def test_partial_wrapping_lambda_flagged(self, lint):
        result = lint(
            "repro/experiments/bad.py",
            """
            from functools import partial
            from repro.experiments.parallel import RunSpec

            def plan():
                return RunSpec(key=("a",), fn=partial(lambda x: x, 1))
            """,
        )
        assert codes(result) == ["REP004"]

    def test_lambda_in_kwargs_literal_flagged(self, lint):
        result = lint(
            "repro/experiments/bad.py",
            """
            from repro.experiments.parallel import RunSpec

            def worker(cb):
                return cb()

            def plan():
                return RunSpec(
                    key=("a",), fn=worker, kwargs=dict(cb=lambda: 1)
                )
            """,
        )
        assert codes(result) == ["REP004"]


class TestREP005MetricsGuard:
    def test_unguarded_inc_flagged(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            class Switch:
                def tick(self, now):
                    self._c_forwarded.inc()
            """,
        )
        assert codes(result) == ["REP005"]

    def test_if_guard_accepted(self, lint):
        result = lint(
            "repro/switches/good.py",
            """
            class Switch:
                def tick(self, now):
                    if self._obs:
                        self._c_forwarded.inc()
            """,
        )
        assert codes(result) == []

    def test_compound_guard_accepted(self, lint):
        result = lint(
            "repro/switches/good.py",
            """
            class Switch:
                def tick(self, now, branches):
                    if self._obs and len(branches) > 1:
                        self._c_replicated.inc(len(branches) - 1)
            """,
        )
        assert codes(result) == []

    def test_early_return_guard_accepted(self, lint):
        result = lint(
            "repro/host/good.py",
            """
            class Host:
                def deliver(self, packet):
                    if not self._obs:
                        return
                    self._c_delivered.inc()
                    self._h_latency.observe(1.0)
            """,
        )
        assert codes(result) == []

    def test_inverted_guard_is_not_a_guard(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            class Switch:
                def tick(self, now):
                    if not self._obs:
                        self._c_forwarded.inc()
            """,
        )
        assert codes(result) == ["REP005"]

    def test_rule_scoped_to_kernel_packages(self, lint):
        result = lint(
            "repro/metrics/ok.py",
            """
            class Collector:
                def fold(self):
                    self.counter.inc()
            """,
        )
        assert codes(result) == []


class TestREP006SchemaStamp:
    def test_schemaless_record_flagged(self, lint):
        result = lint(
            "repro/obs/bad.py",
            """
            def emit(sink, run):
                sink.write({"run": run, "cycle": 0})
            """,
        )
        assert codes(result) == ["REP006"]

    def test_stamped_record_accepted(self, lint):
        result = lint(
            "repro/obs/good.py",
            """
            SCHEMA = "repro.metrics/1"

            def emit(sink, run):
                sink.write({"schema": SCHEMA, "run": run})
            """,
        )
        assert codes(result) == []

    def test_spread_record_not_flagged(self, lint):
        result = lint(
            "repro/obs/ok.py",
            """
            def emit(sink, fields):
                sink.write({**fields})
            """,
        )
        assert codes(result) == []


class TestREP007LinkDrainGuard:
    def test_unguarded_receive_in_tick_flagged(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            class Switch:
                def tick(self, now):
                    for link in self.in_links:
                        for flit in link.receive(now):
                            self.accept(flit)
            """,
        )
        assert codes(result) == ["REP007"]

    def test_unguarded_drain_in_tick_helper_flagged(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            class Switch:
                def tick(self, now):
                    self._receive(now)

                def _receive(self, now):
                    for link in self.in_links:
                        buf = []
                        link.receive_into(now, buf)
            """,
        )
        assert codes(result) == ["REP007"]

    def test_continue_guard_accepted(self, lint):
        result = lint(
            "repro/switches/good.py",
            """
            class Switch:
                def tick(self, now):
                    self._receive(now)

                def _receive(self, now):
                    for link in self.in_links:
                        if link is None or not link.pending_arrival(now):
                            continue
                        buf = []
                        link.receive_into(now, buf)
            """,
        )
        assert codes(result) == []

    def test_enclosing_if_guard_accepted(self, lint):
        result = lint(
            "repro/host/good.py",
            """
            class Interface:
                def tick(self, now):
                    if self.out_link.can_send(now):
                        credits = self.out_link.credits(now)
                        self.drain(credits)
            """,
        )
        assert codes(result) == []

    def test_guard_in_sibling_branch_does_not_count(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            class Switch:
                def tick(self, now):
                    if self.fast:
                        if not self.link.pending_arrival(now):
                            return
                        self.link.receive(now)
                    else:
                        self.link.receive(now)
            """,
        )
        assert codes(result) == ["REP007"]

    def test_method_not_reachable_from_tick_exempt(self, lint):
        result = lint(
            "repro/switches/ok.py",
            """
            class Switch:
                def tick(self, now):
                    pass

                def debug_credits(self, port):
                    return self.out_links[port].credits(self.sim.now)
            """,
        )
        assert codes(result) == []

    def test_link_module_is_exempt(self, lint):
        result = lint(
            "repro/switches/link.py",
            """
            class Link:
                def tick(self, now):
                    return self.credits(now)

                def credits(self, now):
                    return self._sub.credits(now)
            """,
        )
        assert codes(result) == []

    def test_outside_kernel_packages_exempt(self, lint):
        result = lint(
            "repro/experiments/probe.py",
            """
            class Probe:
                def tick(self, now):
                    return self.link.receive(now)
            """,
        )
        assert codes(result) == []


class TestREP008PackedFlitFree:
    def test_flit_construction_in_packed_module_flagged(self, lint):
        result = lint(
            "repro/switches/packed_central.py",
            """
            from repro.flits.flit import Flit

            class Switch:
                def _drain(self, worm, start, count, now):
                    for index in range(start, start + count):
                        self.accept(Flit(worm, index), now)
            """,
        )
        assert codes(result) == ["REP008"]

    def test_worm_flit_materialiser_flagged(self, lint):
        result = lint(
            "repro/host/packed_interface.py",
            """
            class Interface:
                def _eject(self, worm, index, now):
                    self.deliver(worm.flit(index), now)
            """,
        )
        assert codes(result) == ["REP008"]

    def test_span_flits_helper_flagged(self, lint):
        result = lint(
            "repro/switches/packed_input.py",
            """
            from repro.flits.packed import span_flits

            class Switch:
                def _trace(self, worm, start, count, now):
                    for flit in span_flits(worm, start, count):
                        self.tracer.emit(now, self.name, "x", flit=flit)
            """,
        )
        assert "REP008" in codes(result)

    def test_flit_repr_boundary_is_sanctioned(self, lint):
        result = lint(
            "repro/switches/packed_central.py",
            """
            from repro.flits.packed import flit_repr

            class Switch:
                def _trace(self, worm, start, count, now):
                    if not self.tracer.enabled:
                        return
                    for index in range(start, start + count):
                        self.tracer.emit(
                            now, self.name, "flit_in",
                            flit=flit_repr(worm, index),
                        )
            """,
        )
        assert codes(result) == []

    def test_object_plane_modules_exempt(self, lint):
        # the object reference path is *supposed* to build Flits
        result = lint(
            "repro/switches/central_buffer.py",
            """
            from repro.flits.flit import Flit

            class Switch:
                def _drive(self, worm, index, now):
                    self.out_link.send(now, Flit(worm, index))
            """,
        )
        assert codes(result) == []

    def test_helper_module_itself_exempt(self, lint):
        # the conversion helpers live in repro.flits.packed, outside the
        # packed-path module set
        result = lint(
            "repro/flits/packed.py",
            """
            from repro.flits.flit import Flit

            def span_flits(worm, start, count):
                for index in range(start, start + count):
                    yield Flit(worm, index)
            """,
        )
        assert codes(result) == []


class TestSuppressions:
    def test_matching_code_suppresses(self, lint):
        result = lint(
            "repro/switches/waived.py",
            """
            import time

            def stamp():
                return time.time()  # reprolint: ignore[REP002] test rig only
            """,
        )
        assert codes(result) == []
        assert [f.code for f in result.suppressed] == ["REP002"]

    def test_wrong_code_does_not_suppress(self, lint):
        result = lint(
            "repro/switches/waived.py",
            """
            import time

            def stamp():
                return time.time()  # reprolint: ignore[REP001] wrong code
            """,
        )
        assert codes(result) == ["REP002"]

    def test_multi_code_suppression(self, lint):
        result = lint(
            "repro/sim/waived.py",
            """
            import time

            def stamp(s):
                return time.time(), list(set(s))  # reprolint: ignore[REP002,REP003] rig
            """,
        )
        assert codes(result) == []
        assert sorted(f.code for f in result.suppressed) == [
            "REP002",
            "REP003",
        ]


class TestREP009TraceGuard:
    def test_unguarded_emit_flagged(self, lint):
        result = lint(
            "repro/switches/bad.py",
            """
            class Switch:
                def route(self, now, worm):
                    self.tracer.emit(now, self.name, "route", packet=1)
            """,
        )
        assert codes(result) == ["REP009"]

    def test_enabled_guard_accepted(self, lint):
        result = lint(
            "repro/switches/good.py",
            """
            class Switch:
                def route(self, now, worm):
                    if self.tracer.enabled:
                        self.tracer.emit(now, self.name, "route", packet=1)
            """,
        )
        assert codes(result) == []

    def test_profiler_hook_behind_is_not_none_accepted(self, lint):
        result = lint(
            "repro/sim/good.py",
            """
            class Kernel:
                def step(self):
                    prof = self._prof
                    if prof is not None:
                        prof.record_step(self.now, 0, 0)
            """,
        )
        assert codes(result) == []

    def test_profiler_hook_unguarded_flagged(self, lint):
        result = lint(
            "repro/sim/bad.py",
            """
            class Kernel:
                def step(self):
                    prof = self._prof
                    prof.record_tick(self)
                    prof.record_fast_forward(self.now, 5)
            """,
        )
        assert codes(result) == ["REP009", "REP009"]

    def test_is_none_branch_is_not_a_guard(self, lint):
        result = lint(
            "repro/sim/bad.py",
            """
            class Kernel:
                def step(self):
                    prof = self._prof
                    if prof is None:
                        prof.record_step(self.now, 0, 0)
            """,
        )
        assert codes(result) == ["REP009"]

    def test_early_exit_guard_accepted(self, lint):
        result = lint(
            "repro/host/good.py",
            """
            class Interface:
                def deliver(self, now, worm):
                    if not self.tracer.enabled:
                        return
                    self.tracer.emit(now, self.name, "packet_delivered",
                                     packet=worm.packet_id)
            """,
        )
        assert codes(result) == []

    def test_prof_is_none_early_exit_accepted(self, lint):
        result = lint(
            "repro/sim/good.py",
            """
            class Kernel:
                def jump(self, cycle):
                    prof = self._prof
                    if prof is None:
                        return
                    prof.record_fast_forward(self.now, cycle - self.now)
            """,
        )
        assert codes(result) == []

    def test_trace_home_is_exempt(self, lint):
        result = lint(
            "repro/sim/trace.py",
            """
            class Tracer:
                def relay(self, cycle, source, event):
                    self.inner.emit(cycle, source, event)
            """,
        )
        assert codes(result) == []

    def test_rule_scoped_to_kernel_packages(self, lint):
        result = lint(
            "repro/obs/ok.py",
            """
            class Digest:
                def forward(self, cycle, source, event):
                    self.inner.emit(cycle, source, event)
            """,
        )
        assert codes(result) == []


class TestREP013StoreJournalOnly:
    def test_direct_open_in_store_module_flagged(self, lint):
        result = lint(
            "repro/store/bad.py",
            """
            def slurp(path):
                with open(path, encoding="utf-8") as handle:
                    return handle.read()
            """,
        )
        assert codes(result) == ["REP013"]
        assert "open()" in result.new[0].message

    def test_aliased_os_open_resolved_and_flagged(self, lint):
        result = lint(
            "repro/store/bad.py",
            """
            import os as system

            def claim(path):
                return system.open(path, 0)
            """,
        )
        assert codes(result) == ["REP013"]

    def test_path_write_text_flagged(self, lint):
        result = lint(
            "repro/store/bad.py",
            """
            def stamp(path):
                path.write_text("{}", encoding="utf-8")
            """,
        )
        assert codes(result) == ["REP013"]
        assert "write_text" in result.new[0].message

    def test_unlink_and_rename_flagged(self, lint):
        result = lint(
            "repro/store/bad.py",
            """
            def rotate(old, new):
                new.unlink()
                old.rename(new)
            """,
        )
        assert codes(result) == ["REP013", "REP013"]

    def test_journal_home_is_exempt(self, lint):
        result = lint(
            "repro/store/journal.py",
            """
            import os

            def claim(path):
                return os.open(path, os.O_CREAT | os.O_EXCL)

            def persist(path, text):
                path.write_text(text, encoding="utf-8")
            """,
        )
        assert codes(result) == []

    def test_non_store_modules_unaffected(self, lint):
        result = lint(
            "repro/obs/ok.py",
            """
            def archive(path, text):
                path.write_text(text, encoding="utf-8")
                with open(path, encoding="utf-8") as handle:
                    return handle.read()
            """,
        )
        assert codes(result) == []

    def test_non_file_calls_in_store_not_flagged(self, lint):
        result = lint(
            "repro/store/ok.py",
            """
            def tidy(record):
                return {k: v for k, v in sorted(record.items())}
            """,
        )
        assert codes(result) == []


class TestREP014FarmTransportOnly:
    def test_direct_popen_in_farm_module_flagged(self, lint):
        result = lint(
            "repro/farm/bad.py",
            """
            import subprocess

            def launch(cmd):
                return subprocess.Popen(cmd, stdin=subprocess.PIPE)
            """,
        )
        assert codes(result) == ["REP014"]
        assert "subprocess.Popen()" in result.new[0].message

    def test_aliased_subprocess_run_resolved_and_flagged(self, lint):
        result = lint(
            "repro/farm/bad.py",
            """
            import subprocess as sp

            def shell(cmd):
                return sp.run(cmd, capture_output=True)
            """,
        )
        assert codes(result) == ["REP014"]

    def test_multiprocessing_pool_flagged(self, lint):
        result = lint(
            "repro/farm/bad.py",
            """
            import multiprocessing

            def fleet(n):
                return multiprocessing.Pool(processes=n)
            """,
        )
        assert codes(result) == ["REP014"]

    def test_direct_open_and_select_flagged(self, lint):
        result = lint(
            "repro/farm/bad.py",
            """
            import select

            def wait(path, streams):
                with open(path, "rb") as handle:
                    handle.read()
                return select.select(streams, [], [])
            """,
        )
        assert codes(result) == ["REP014", "REP014"]

    def test_path_write_text_flagged(self, lint):
        result = lint(
            "repro/farm/bad.py",
            """
            def stamp(path):
                path.write_text("{}", encoding="utf-8")
            """,
        )
        assert codes(result) == ["REP014"]
        assert "write_text" in result.new[0].message

    def test_transport_home_is_exempt(self, lint):
        result = lint(
            "repro/farm/transport.py",
            """
            import select
            import subprocess

            def spawn(cmd):
                return subprocess.Popen(cmd, bufsize=0)

            def wait(streams):
                return select.select(streams, [], [])
            """,
        )
        assert codes(result) == []

    def test_non_farm_modules_unaffected(self, lint):
        result = lint(
            "repro/obs/ok.py",
            """
            import subprocess

            def sha():
                return subprocess.run(["git", "rev-parse", "HEAD"])
            """,
        )
        assert codes(result) == []

    def test_frame_and_scheduler_logic_not_flagged(self, lint):
        result = lint(
            "repro/farm/ok.py",
            """
            import json

            def encode(frame):
                return (json.dumps(frame, sort_keys=True) + "\\n").encode()

            def deal(specs, shards):
                dealt = [[] for _ in range(shards)]
                for index, spec in enumerate(specs):
                    dealt[index % shards].append(spec)
                return dealt
            """,
        )
        assert codes(result) == []
