"""Cross-module (semantic) rules: transitive REP001/REP002, REP010-012.

Each positive case seeds a realistic bug into a ``repro``-shaped
fixture tree and asserts the rule catches it; each negative twin makes
the smallest correct change and asserts silence.  The repository gate
(``tests/analysis/test_cli.py::TestRepoGate``) is the standing negative
test over the real sources.
"""

from __future__ import annotations

from tests.analysis.conftest import codes


class TestTransitiveREP001:
    TREE = {
        # syntactically exempt: rng.py is RNG_HOME, so only the
        # reachability layer can flag this
        "repro/sim/rng.py": """
            import random

            def jitter():
                return random.random()
            """,
        "repro/switches/noisy.py": """
            from repro.sim.rng import jitter

            class NoisySwitch:
                def tick(self, now):
                    return self._advance(now)

                def _advance(self, now):
                    return jitter()
            """,
    }

    def test_kernel_reaching_global_rng_flagged(self, lint_files):
        result = lint_files(self.TREE, select=["REP001"])
        assert codes(result) == ["REP001"]
        finding = result.new[0]
        # anchored at the sink call site, in the allowlisted module
        assert finding.path == "repro/sim/rng.py"
        # the full chain is reported, entry point first
        assert finding.chain == (
            "repro.switches.noisy.NoisySwitch.tick",
            "repro.switches.noisy.NoisySwitch._advance",
            "repro.sim.rng.jitter",
            "random.random",
        )
        assert "switches.noisy.NoisySwitch.tick" in finding.message
        assert "sim.rng.jitter" in finding.message

    def test_unreached_rng_helper_is_silent(self, lint_files):
        tree = dict(self.TREE)
        tree["repro/switches/noisy.py"] = """
            class NoisySwitch:
                def tick(self, now):
                    return now
            """
        result = lint_files(tree, select=["REP001"])
        assert codes(result) == []

    def test_chain_is_part_of_the_fingerprint(self, lint_files):
        result = lint_files(self.TREE, select=["REP001"])
        finding = result.new[0]
        from dataclasses import replace

        rerouted = replace(
            finding, chain=finding.chain[:1] + finding.chain[2:]
        )
        assert rerouted.fingerprint != finding.fingerprint


class TestTransitiveREP002:
    TREE = {
        # syntactically exempt: repro.obs may read the wall clock
        "repro/obs/timing.py": """
            import time

            def stamp():
                return time.time()
            """,
        "repro/sim/pump.py": """
            from repro.obs.timing import stamp

            class Pump:
                def tick(self, now):
                    return stamp()
            """,
    }

    def test_kernel_reaching_wall_clock_flagged(self, lint_files):
        result = lint_files(self.TREE, select=["REP002"])
        assert codes(result) == ["REP002"]
        finding = result.new[0]
        assert finding.path == "repro/obs/timing.py"
        assert finding.chain[0] == "repro.sim.pump.Pump.tick"
        assert finding.chain[-1] == "time.time"

    def test_obs_only_wall_clock_is_silent(self, lint_files):
        tree = dict(self.TREE)
        tree["repro/sim/pump.py"] = """
            class Pump:
                def tick(self, now):
                    return now
            """
        result = lint_files(tree, select=["REP002"])
        assert codes(result) == []


class TestREP010LostWake:
    BUGGY = {
        "repro/host/device.py": """
            from repro.sim.component import Component

            class Device(Component):
                def __init__(self, env):
                    super().__init__(env)
                    self._queue = []

                def tick(self, now):
                    if self._queue:
                        self._queue.pop()

                def enqueue(self, item):
                    self._queue.append(item)
            """,
    }

    def test_mutation_without_wake_flagged(self, lint_files):
        result = lint_files(self.BUGGY, select=["REP010"])
        assert codes(result) == ["REP010"]
        finding = result.new[0]
        assert "Device.enqueue()" in finding.message
        assert "_queue" in finding.message

    def test_wake_now_discharges_the_obligation(self, lint_files):
        tree = {
            "repro/host/device.py": """
                from repro.sim.component import Component

                class Device(Component):
                    def tick(self, now):
                        pass

                    def enqueue(self, item):
                        self._queue.append(item)
                        self.wake_now()
                """,
        }
        result = lint_files(tree, select=["REP010"])
        assert codes(result) == []

    def test_wake_through_helper_counts(self, lint_files):
        tree = {
            "repro/host/device.py": """
                from repro.sim.component import Component

                class Device(Component):
                    def tick(self, now):
                        pass

                    def enqueue(self, item):
                        self._queue.append(item)
                        self._nudge()

                    def _nudge(self):
                        self.wake_now()
                """,
        }
        result = lint_files(tree, select=["REP010"])
        assert codes(result) == []

    def test_non_component_class_is_exempt(self, lint_files):
        tree = {
            "repro/host/plain.py": """
                class Plain:
                    def enqueue(self, item):
                        self._queue.append(item)
                """,
        }
        result = lint_files(tree, select=["REP010"])
        assert codes(result) == []

    def test_tick_closure_is_exempt(self, lint_files):
        tree = {
            "repro/host/device.py": """
                from repro.sim.component import Component

                class Device(Component):
                    def tick(self, now):
                        self._drain()

                    def _drain(self):
                        self._queue.pop()
                        self._credits += 1
                """,
        }
        result = lint_files(tree, select=["REP010"])
        assert codes(result) == []


class TestREP011PlaneParity:
    OBJECT_SIDE = """
        class CentralBufferSwitch:
            def __init__(self, metrics, tracer=None):
                self._tracer = tracer
                self._c_fwd = metrics.counter("switch.flits_forwarded")

            def tick(self, now):
                self._phase(now)

            def _phase(self, now):
                if self._tracer is not None:
                    self._tracer.emit(now, "s0", "flit_in")
                self._c_fwd.inc()
        """

    def test_dropped_emit_breaks_parity(self, lint_files):
        tree = {
            "repro/switches/central_buffer.py": self.OBJECT_SIDE,
            "repro/switches/packed_central.py": """
                from repro.switches.central_buffer import (
                    CentralBufferSwitch,
                )

                class PackedCentralBufferSwitch(CentralBufferSwitch):
                    def _phase(self, now):
                        self._c_fwd.inc()
                """,
        }
        result = lint_files(tree, select=["REP011"])
        assert codes(result) == ["REP011"]
        finding = result.new[0]
        assert finding.path == "repro/switches/packed_central.py"
        assert "flit_in" in finding.message
        assert "missing" in finding.message

    def test_extra_counter_breaks_parity(self, lint_files):
        tree = {
            "repro/switches/central_buffer.py": self.OBJECT_SIDE,
            "repro/switches/packed_central.py": """
                from repro.switches.central_buffer import (
                    CentralBufferSwitch,
                )

                class PackedCentralBufferSwitch(CentralBufferSwitch):
                    def __init__(self, metrics, tracer=None):
                        super().__init__(metrics, tracer)
                        self._c_extra = metrics.counter("switch.extra")

                    def _phase(self, now):
                        if self._tracer is not None:
                            self._tracer.emit(now, "s0", "flit_in")
                        self._c_fwd.inc()
                        self._c_extra.inc()
                """,
        }
        result = lint_files(tree, select=["REP011"])
        assert codes(result) == ["REP011"]
        assert "switch.extra" in result.new[0].message
        assert "extra" in result.new[0].message

    def test_faithful_override_is_silent(self, lint_files):
        tree = {
            "repro/switches/central_buffer.py": self.OBJECT_SIDE,
            "repro/switches/packed_central.py": """
                from repro.switches.central_buffer import (
                    CentralBufferSwitch,
                )

                class PackedCentralBufferSwitch(CentralBufferSwitch):
                    def _phase(self, now):
                        if self._tracer is not None:
                            self._tracer.emit(now, "s0", "flit_in")
                        self._c_fwd.inc()
                """,
        }
        result = lint_files(tree, select=["REP011"])
        assert codes(result) == []

    def test_unpaired_module_is_ignored(self, lint_files):
        tree = {
            "repro/switches/packed_central.py": """
                class PackedCentralBufferSwitch:
                    def tick(self, now):
                        pass
                """,
        }
        result = lint_files(tree, select=["REP011"])
        assert codes(result) == []


class TestREP012SchemaDrift:
    REGISTRY = """
        SCHEMA_RUN = "repro.run/1"

        SCHEMA_FIELDS = {
            SCHEMA_RUN: ("run", "event"),
        }
        """

    def test_missing_required_field_flagged(self, lint_files):
        tree = {
            "repro/obs/sinks.py": self.REGISTRY,
            "repro/experiments/writer.py": """
                from repro.obs.sinks import SCHEMA_RUN

                def emit(writer, run):
                    writer.write({"schema": SCHEMA_RUN, "run": run})
                """,
        }
        result = lint_files(tree, select=["REP012"])
        assert codes(result) == ["REP012"]
        finding = result.new[0]
        assert finding.path == "repro/experiments/writer.py"
        assert "'repro.run/1'" in finding.message
        assert "event" in finding.message

    def test_unregistered_tag_flagged(self, lint_files):
        tree = {
            "repro/obs/sinks.py": self.REGISTRY,
            "repro/experiments/writer.py": """
                def emit(writer, run):
                    writer.write(
                        {"schema": "repro.bogus/1", "run": run}
                    )
                """,
        }
        result = lint_files(tree, select=["REP012"])
        assert codes(result) == ["REP012"]
        assert "not registered" in result.new[0].message

    def test_complete_record_is_silent(self, lint_files):
        tree = {
            "repro/obs/sinks.py": self.REGISTRY,
            "repro/experiments/writer.py": """
                from repro.obs.sinks import SCHEMA_RUN

                def emit(writer, run):
                    writer.write(
                        {
                            "schema": SCHEMA_RUN,
                            "run": run,
                            "event": "start",
                        }
                    )
                """,
        }
        result = lint_files(tree, select=["REP012"])
        assert codes(result) == []

    def test_spread_record_only_tag_checked(self, lint_files):
        tree = {
            "repro/obs/sinks.py": self.REGISTRY,
            "repro/experiments/writer.py": """
                from repro.obs.sinks import SCHEMA_RUN

                def emit(writer, fields):
                    writer.write({"schema": SCHEMA_RUN, **fields})
                """,
        }
        result = lint_files(tree, select=["REP012"])
        assert codes(result) == []

    def test_schemaless_record_left_to_rep006(self, lint_files):
        tree = {
            "repro/obs/sinks.py": self.REGISTRY,
            "repro/experiments/writer.py": """
                def emit(writer, run):
                    writer.write({"run": run})
                """,
        }
        result = lint_files(tree, select=["REP012"])
        assert codes(result) == []
