"""ProjectIndex construction: imports, call graph, determinism."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.project import ProjectIndex, repro_roots
from repro.analysis.source import SourceModule

REPO_ROOT = Path(__file__).resolve().parents[2]


def build_index(tmp_path, files):
    """Write ``repro/...``-shaped fixture files and index them."""
    sources = []
    for rel_path, source in files.items():
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        sources.append(
            SourceModule.parse(target, display_path=rel_path)
        )
    return ProjectIndex.build(sources)


class TestImportResolution:
    def test_import_cycle_tolerated(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/sim/a.py": """
                    from repro.sim.b import beta

                    def alpha():
                        return beta()
                    """,
                "repro/sim/b.py": """
                    from repro.sim.a import alpha

                    def beta():
                        return alpha()
                    """,
            },
        )
        assert set(project.modules) == {"repro.sim.a", "repro.sim.b"}
        chains = project.reachable_from(["repro.sim.a.alpha"])
        assert "repro.sim.b.beta" in chains
        # the back edge closes the cycle without hanging the BFS
        assert chains["repro.sim.b.beta"] == (
            "repro.sim.a.alpha", "repro.sim.b.beta"
        )

    def test_relative_import_single_level(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/switches/__init__.py": "",
                "repro/switches/a.py": """
                    from .b import helper

                    def use():
                        return helper()
                    """,
                "repro/switches/b.py": """
                    def helper():
                        return 1
                    """,
            },
        )
        bindings = project.modules["repro.switches.a"].bindings
        assert bindings["helper"] == "repro.switches.b.helper"
        chains = project.reachable_from(["repro.switches.a.use"])
        assert "repro.switches.b.helper" in chains

    def test_relative_import_walks_up_packages(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/sim/__init__.py": "",
                "repro/sim/util.py": """
                    def tool():
                        return 0
                    """,
                "repro/switches/__init__.py": "",
                "repro/switches/c.py": """
                    from ..sim.util import tool

                    def use():
                        return tool()
                    """,
            },
        )
        bindings = project.modules["repro.switches.c"].bindings
        assert bindings["tool"] == "repro.sim.util.tool"

    def test_package_reexport_canonicalizes(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/sim/__init__.py": """
                    from repro.sim.impl import thing
                    """,
                "repro/sim/impl.py": """
                    def thing():
                        return 7
                    """,
                "repro/sim/user.py": """
                    from repro.sim import thing

                    def use():
                        return thing()
                    """,
            },
        )
        assert (
            project.canonicalize("repro.sim.thing")
            == "repro.sim.impl.thing"
        )
        chains = project.reachable_from(["repro.sim.user.use"])
        assert "repro.sim.impl.thing" in chains


class TestCallGraph:
    TREE = {
        "repro/switches/base.py": """
            class Base:
                def entry(self):
                    return self.hook()

                def hook(self):
                    return 0
            """,
        "repro/switches/sub.py": """
            from repro.switches.base import Base

            class Sub(Base):
                def hook(self):
                    return 1
            """,
    }

    def test_self_call_reaches_descendant_overrides(self, tmp_path):
        """The global graph is sound: an entry on the base class may
        execute any override, so both hooks are reachable."""
        project = build_index(tmp_path, self.TREE)
        chains = project.reachable_from(
            ["repro.switches.base.Base.entry"]
        )
        assert "repro.switches.base.Base.hook" in chains
        assert "repro.switches.sub.Sub.hook" in chains

    def test_method_closure_is_view_aware(self, tmp_path):
        """Per-class closures resolve self-calls in that class's own
        MRO — the base view never sees the subclass override, and the
        subclass view replaces (not augments) the base hook."""
        project = build_index(tmp_path, self.TREE)
        base_view = project.method_closure(
            "repro.switches.base.Base", "entry"
        )
        assert "repro.switches.base.Base.hook" in base_view
        assert "repro.switches.sub.Sub.hook" not in base_view
        sub_view = project.method_closure(
            "repro.switches.sub.Sub", "entry"
        )
        assert "repro.switches.sub.Sub.hook" in sub_view
        assert "repro.switches.base.Base.hook" not in sub_view

    def test_class_call_reaches_init(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/sim/factory.py": """
                    class Widget:
                        def __init__(self):
                            self.x = 1

                    def make():
                        return Widget()
                    """,
            },
        )
        chains = project.reachable_from(["repro.sim.factory.make"])
        assert "repro.sim.factory.Widget.__init__" in chains

    def test_descendants_cross_module(self, tmp_path):
        project = build_index(tmp_path, self.TREE)
        assert project.descendants("repro.switches.base.Base") == (
            "repro.switches.sub.Sub",
        )


class TestConstants:
    def test_dict_of_named_constants(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/obs/reg.py": """
                    TAG = "repro.x/1"
                    FIELDS = {TAG: ("run", "event")}
                    """,
            },
        )
        assert project.constant("repro.obs.reg", "FIELDS") == {
            "repro.x/1": ("run", "event")
        }

    def test_imported_constant_resolves(self, tmp_path):
        project = build_index(
            tmp_path,
            {
                "repro/obs/reg.py": 'TAG = "repro.x/1"\n',
                "repro/obs/use.py": """
                    from repro.obs.reg import TAG

                    ALIAS = TAG
                    """,
            },
        )
        assert (
            project.constant("repro.obs.use", "ALIAS") == "repro.x/1"
        )

    def test_non_constant_is_none(self, tmp_path):
        project = build_index(
            tmp_path,
            {"repro/obs/reg.py": "VALUE = compute()\n"},
        )
        assert project.constant("repro.obs.reg", "VALUE") is None


class TestReproRoots:
    def test_innermost_repro_dirs(self, tmp_path):
        inner = tmp_path / "repro" / "sim"
        inner.mkdir(parents=True)
        (inner / "x.py").write_text("", encoding="utf-8")
        roots = repro_roots([inner / "x.py"])
        assert roots == [tmp_path / "repro"]


class TestDeterminism:
    def test_repo_lint_is_byte_identical_across_runs(self, capsys):
        """Two full semantic runs over ``src/repro`` produce identical
        JSON — index construction, chain ordering and occurrence
        numbering are all deterministic."""
        import os

        from repro.analysis.cli import main

        cwd = os.getcwd()
        os.chdir(REPO_ROOT)
        try:
            outputs = []
            for _ in range(2):
                main(
                    ["src/repro", "--format", "json", "--no-baseline"]
                )
                outputs.append(capsys.readouterr().out)
        finally:
            os.chdir(cwd)
        assert outputs[0] == outputs[1]
