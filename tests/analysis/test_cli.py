"""CLI behaviour: formats, exit codes, the JSON schema, the repo gate."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import LINT_JSON_SCHEMA, LINT_SCHEMA, main

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        assert main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out

    def test_missing_path_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2

    def test_unknown_rule_code_exits_two(self, tmp_path):
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--select", "REP999"])
        assert excinfo.value.code == 2

    def test_select_runs_only_requested_rules(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        assert main(
            [str(tmp_path), "--select", "REP001", "--no-baseline"]
        ) == 0
        capsys.readouterr()

    def test_list_rules_names_all_six(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006"
        ):
            assert code in out


class TestJsonFormat:
    def _lint_json(self, tmp_path, capsys, *extra):
        code = main([str(tmp_path), "--no-baseline", "--format", "json",
                     *extra])
        payload = json.loads(capsys.readouterr().out)
        return code, payload

    def test_output_matches_documented_schema(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        code, payload = self._lint_json(tmp_path, capsys)
        assert code == 1
        jsonschema.validate(payload, LINT_JSON_SCHEMA)
        assert payload["schema"] == LINT_SCHEMA
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["code"] == "REP002"

    def test_clean_output_matches_schema_too(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        code, payload = self._lint_json(tmp_path, capsys)
        assert code == 0
        jsonschema.validate(payload, LINT_JSON_SCHEMA)
        assert payload["findings"] == []

    def test_finding_paths_are_relative_to_cwd(
        self, tmp_path, capsys, monkeypatch
    ):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        monkeypatch.chdir(tmp_path)
        code, payload = self._lint_json(Path("repro"), capsys)
        assert code == 1
        assert payload["findings"][0]["path"] == "repro/sim/bad.py"


class TestBaselineWorkflow:
    def test_write_then_respect_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        monkeypatch.chdir(tmp_path)
        assert main(["repro", "--write-baseline"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".reprolint-baseline.json").exists()

        assert main(["repro"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

        assert main(["repro", "--no-baseline"]) == 1
        capsys.readouterr()


class TestRepoGate:
    def test_repository_lints_clean(self, capsys, monkeypatch):
        """The regression gate: the tree must satisfy its own linter."""
        monkeypatch.chdir(REPO_ROOT)
        exit_code = main(["src"])
        out = capsys.readouterr().out
        assert exit_code == 0, f"reprolint found new violations:\n{out}"

    def test_checked_in_baseline_loads(self):
        from repro.analysis.baseline import load_baseline

        fingerprints = load_baseline(
            REPO_ROOT / ".reprolint-baseline.json"
        )
        assert isinstance(fingerprints, set)


class TestMainDispatch:
    def test_unknown_subcommand_exits_two_with_usage(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'frobnicate'" in err
        for command in ("demo", "inspect", "lint"):
            assert command in err

    def test_top_level_help_lists_all_subcommands(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ("demo", "inspect", "lint"):
            assert command in out

    def test_lint_subcommand_dispatches(self, capsys, monkeypatch):
        from repro.__main__ import main as repro_main

        monkeypatch.chdir(REPO_ROOT)
        assert repro_main(["lint", "src/repro/sim"]) == 0
        assert "file(s) checked" in capsys.readouterr().out
