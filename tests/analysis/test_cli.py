"""CLI behaviour: formats, exit codes, the JSON schema, the repo gate."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import LINT_JSON_SCHEMA, LINT_SCHEMA, main

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        assert main([str(tmp_path), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        assert main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out

    def test_missing_path_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2

    def test_unknown_rule_code_exits_two(self, tmp_path):
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--select", "REP999"])
        assert excinfo.value.code == 2

    def test_unknown_rule_message_names_code_and_catalog(
        self, tmp_path, capsys
    ):
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--select", "REP999,REP001"])
        err = capsys.readouterr().err
        assert "REP999" in err
        assert "available" in err
        assert "REP001" in err

    def test_unknown_rule_raises_from_the_api_too(self):
        from repro.analysis.rules import UnknownRuleError, all_rules

        with pytest.raises(UnknownRuleError, match="REP999"):
            all_rules(["REP999"])
        with pytest.raises(ValueError):
            all_rules([])

    def test_select_runs_only_requested_rules(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        assert main(
            [str(tmp_path), "--select", "REP001", "--no-baseline"]
        ) == 0
        capsys.readouterr()

    def test_list_rules_names_all_twelve(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 13):
            assert f"REP{number:03d}" in out


class TestJsonFormat:
    def _lint_json(self, tmp_path, capsys, *extra):
        code = main([str(tmp_path), "--no-baseline", "--format", "json",
                     *extra])
        payload = json.loads(capsys.readouterr().out)
        return code, payload

    def test_output_matches_documented_schema(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        code, payload = self._lint_json(tmp_path, capsys)
        assert code == 1
        jsonschema.validate(payload, LINT_JSON_SCHEMA)
        assert payload["schema"] == LINT_SCHEMA
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["code"] == "REP002"

    def test_clean_output_matches_schema_too(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        code, payload = self._lint_json(tmp_path, capsys)
        assert code == 0
        jsonschema.validate(payload, LINT_JSON_SCHEMA)
        assert payload["findings"] == []

    def test_finding_paths_are_relative_to_cwd(
        self, tmp_path, capsys, monkeypatch
    ):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        monkeypatch.chdir(tmp_path)
        code, payload = self._lint_json(Path("repro"), capsys)
        assert code == 1
        assert payload["findings"][0]["path"] == "repro/sim/bad.py"


class TestGithubFormat:
    def test_one_annotation_per_finding(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        code = main(
            [str(tmp_path), "--no-baseline", "--format", "github"]
        )
        assert code == 1
        out = capsys.readouterr().out
        lines = [
            line for line in out.splitlines()
            if line.startswith("::error ")
        ]
        assert len(lines) == 1  # the wall-clock call
        assert "title=reprolint REP002" in lines[0]
        assert "line=" in lines[0] and "col=" in lines[0]
        # property values escape their separators
        assert "file=" in lines[0]
        assert "1 file(s) checked" in out

    def test_clean_tree_emits_no_annotations(self, tmp_path, capsys):
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        code = main(
            [str(tmp_path), "--no-baseline", "--format", "github"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "::error" not in out

    def test_messages_escape_newlines_and_percent(self):
        from repro.analysis.cli import (
            _gh_escape_data,
            _gh_escape_property,
        )

        assert _gh_escape_data("a%b\nc\rd") == "a%25b%0Ac%0Dd"
        assert _gh_escape_property("a:b,c") == "a%3Ab%2Cc"


class TestChangedOnly:
    @pytest.fixture
    def git_repo(self, tmp_path, monkeypatch):
        """A git repo with one committed clean file on ``main``."""
        import subprocess

        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        monkeypatch.chdir(tmp_path)
        git("init", "-q", "-b", "main")
        git("config", "user.email", "t@example.invalid")
        git("config", "user.name", "t")
        _write(tmp_path, "repro/sim/clean.py", "X = 1\n")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        return tmp_path

    def test_nothing_changed_exits_zero(self, git_repo, capsys):
        code = main(
            ["repro", "--no-baseline", "--changed-only",
             "--since", "HEAD"]
        )
        assert code == 0
        assert "nothing to lint" in capsys.readouterr().out

    def test_untracked_dirty_file_is_linted(self, git_repo, capsys):
        _write(git_repo, "repro/sim/bad.py", DIRTY)
        code = main(
            ["repro", "--no-baseline", "--changed-only",
             "--since", "HEAD"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REP002" in out
        assert "1 file(s) checked" in out

    def test_committed_change_vs_ref_is_linted(self, git_repo, capsys):
        import subprocess

        _write(git_repo, "repro/sim/bad.py", DIRTY)
        subprocess.run(
            ["git", "add", "."], cwd=git_repo, check=True,
            capture_output=True,
        )
        subprocess.run(
            ["git", "commit", "-q", "-m", "dirty"],
            cwd=git_repo, check=True, capture_output=True,
        )
        code = main(
            ["repro", "--no-baseline", "--changed-only",
             "--since", "HEAD~1"]
        )
        assert code == 1
        assert "REP002" in capsys.readouterr().out

    def test_changes_outside_the_lint_paths_are_ignored(
        self, git_repo, capsys
    ):
        _write(git_repo, "scripts/tool.py", DIRTY)
        code = main(
            ["repro", "--no-baseline", "--changed-only",
             "--since", "HEAD"]
        )
        assert code == 0
        assert "nothing to lint" in capsys.readouterr().out

    def test_bad_ref_exits_two(self, git_repo, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["repro", "--changed-only", "--since",
                 "no-such-ref"]
            )
        assert excinfo.value.code == 2


class TestBaselineWorkflow:
    def test_write_then_respect_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        _write(tmp_path, "repro/sim/bad.py", DIRTY)
        monkeypatch.chdir(tmp_path)
        assert main(["repro", "--write-baseline"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".reprolint-baseline.json").exists()

        assert main(["repro"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

        assert main(["repro", "--no-baseline"]) == 1
        capsys.readouterr()


class TestRepoGate:
    def test_repository_lints_clean(self, capsys, monkeypatch):
        """The regression gate: the tree must satisfy its own linter."""
        monkeypatch.chdir(REPO_ROOT)
        exit_code = main(["src"])
        out = capsys.readouterr().out
        assert exit_code == 0, f"reprolint found new violations:\n{out}"

    def test_checked_in_baseline_loads(self):
        from repro.analysis.baseline import load_baseline

        fingerprints = load_baseline(
            REPO_ROOT / ".reprolint-baseline.json"
        )
        assert isinstance(fingerprints, set)


class TestDocsCatalog:
    def test_docs_table_matches_rule_catalog(self):
        """docs/static-analysis.md's catalogue table carries exactly
        the registered codes with their exact summary strings."""
        import re

        from repro.analysis.rules import rule_catalog

        text = (REPO_ROOT / "docs" / "static-analysis.md").read_text(
            encoding="utf-8"
        )
        rows = dict(
            re.findall(r"^\| (REP\d{3}) +\| (.+?) \|$", text, re.M)
        )
        catalog = {code: summary for code, summary, _ in rule_catalog()}
        assert rows == catalog

    def test_every_rule_has_a_docs_section(self):
        from repro.analysis.rules import rule_catalog

        text = (REPO_ROOT / "docs" / "static-analysis.md").read_text(
            encoding="utf-8"
        )
        for code, _, _ in rule_catalog():
            assert f"### {code} — " in text, f"{code} undocumented"


class TestMainDispatch:
    def test_unknown_subcommand_exits_two_with_usage(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'frobnicate'" in err
        for command in ("demo", "inspect", "lint"):
            assert command in err

    def test_top_level_help_lists_all_subcommands(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in ("demo", "inspect", "lint"):
            assert command in out

    def test_lint_subcommand_dispatches(self, capsys, monkeypatch):
        from repro.__main__ import main as repro_main

        monkeypatch.chdir(REPO_ROOT)
        assert repro_main(["lint", "src/repro/sim"]) == 0
        assert "file(s) checked" in capsys.readouterr().out
