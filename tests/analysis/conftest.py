"""Helpers for the reprolint test suite.

Fixture snippets are written into a throwaway ``repro``-shaped tree so
the package-scoped rules (kernel paths, the rng/obs allowlists) see the
module names they key on: ``lint_snippet(tmp_path, "repro/sim/x.py",
src)`` behaves exactly like linting ``src/repro/sim/x.py``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Optional, Sequence, Set

import pytest

from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.rules import all_rules


def lint_snippet(
    tmp_path: Path,
    rel_path: str,
    source: str,
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> LintResult:
    """Write ``source`` at ``rel_path`` under ``tmp_path`` and lint it."""
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = all_rules(select) if select is not None else None
    return lint_paths(
        [target], rules=rules, baseline=baseline, root=tmp_path
    )


def lint_tree(
    tmp_path: Path,
    files: dict,
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> LintResult:
    """Write a multi-file fixture tree and lint all of it.

    ``files`` maps ``repro/...``-shaped relative paths to sources; the
    engine indexes the whole tree, so this is the entry point for the
    cross-module (semantic) rule tests.
    """
    targets = []
    for rel_path, source in files.items():
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        targets.append(target)
    rules = all_rules(select) if select is not None else None
    return lint_paths(
        targets, rules=rules, baseline=baseline, root=tmp_path
    )


@pytest.fixture
def lint(tmp_path):
    """Partial application of :func:`lint_snippet` over ``tmp_path``."""

    def _lint(rel_path, source, select=None, baseline=None):
        return lint_snippet(
            tmp_path, rel_path, source, select=select, baseline=baseline
        )

    return _lint


@pytest.fixture
def lint_files(tmp_path):
    """Partial application of :func:`lint_tree` over ``tmp_path``."""

    def _lint(files, select=None, baseline=None):
        return lint_tree(
            tmp_path, files, select=select, baseline=baseline
        )

    return _lint


def codes(result: LintResult) -> list:
    """The codes of the *new* findings, in report order."""
    return [finding.code for finding in result.new]
