"""Module-level worker for the crash-resume integration test.

Lives in its own importable module (not the test file, not a script's
``__main__``) so the spec's content address — which includes the
worker's ``module:qualname`` — is identical in the campaign subprocess
that gets killed and in the parent process that resumes it.
"""

from __future__ import annotations

import time


def slow_run(tag=0, seconds=0.0):
    """A deterministic result that takes a controllable wall time."""
    if seconds:
        time.sleep(seconds)
    return {"tag": tag, "squared": tag * tag}
