"""Bit-exact roundtrip guarantees of the store's value codec."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.simulation import RunSummary, StatsSummary
from repro.store.codec import (
    CodecError,
    decode_value,
    encodable,
    encode_value,
)


def _summary(**overrides) -> RunSummary:
    defaults = dict(
        num_hosts=16,
        cycles=1_200,
        completed=True,
        operations=7,
        op_last_latency=StatsSummary(7, 41.5, 12.0, 99.0),
        op_average_latency=StatsSummary(7, 38.25, 11.0, 90.0),
        class_latency={"unicast": StatsSummary(40, 17.75, 4.0, 60.0)},
        class_deliveries={"unicast": 40},
        class_payload_flits={"unicast": 640},
        extras={"occupancy": (0.25, 0.5)},
    )
    defaults.update(overrides)
    return RunSummary(**defaults)


def roundtrip(value):
    """Encode, push through real JSON text, decode."""
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestRoundtrip:
    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**52), max_value=2**52),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
            ),
            lambda leaf: st.one_of(
                st.lists(leaf, max_size=4),
                st.tuples(leaf, leaf),
                st.dictionaries(st.text(max_size=8), leaf, max_size=4),
            ),
            max_leaves=25,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_json_values_roundtrip_bit_exactly(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is type(value)

    def test_tuples_stay_tuples(self):
        assert roundtrip((1, (2, 3), [4])) == (1, (2, 3), [4])

    def test_dict_insertion_order_is_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(value)) == ["z", "a", "m"]

    def test_tag_like_user_keys_do_not_collide(self):
        value = {"$tuple": [1, 2], "$stats": "text"}
        assert roundtrip(value) == value

    def test_stats_summary_roundtrips(self):
        stats = StatsSummary(11, 3.3333333333333335, 0.1, 9.9)
        assert roundtrip(stats) == stats

    def test_run_summary_roundtrips(self):
        summary = _summary()
        assert roundtrip(summary) == summary
        assert roundtrip(summary).extras["occupancy"] == (0.25, 0.5)

    def test_shortest_repr_floats_survive_json(self):
        values = [0.1, 1e-17, 2.220446049250313e-16, 1 / 3]
        assert roundtrip(values) == values


class TestRejections:
    def test_live_object_value_raises(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_non_primitive_mapping_key_raises(self):
        with pytest.raises(CodecError):
            encode_value({(1, 2): "tuple-keyed"})

    def test_unknown_tag_raises_on_decode(self):
        with pytest.raises(CodecError):
            decode_value({"$mystery": []})

    def test_untagged_multikey_dict_raises_on_decode(self):
        with pytest.raises(CodecError):
            decode_value({"a": 1, "b": 2})

    def test_encodable_predicate(self):
        assert encodable(_summary())
        assert encodable({"a": [1, (2, 3)]})
        assert not encodable(object())
        assert not encodable({("k",): 1})
