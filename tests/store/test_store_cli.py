"""``python -m repro store`` subcommand behaviour and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.store.backend import JournalStore, StoreEntry
from repro.store.cli import main
from repro.store.journal import list_segments
from repro.store.runtime import ENV_STORE_DIR


def _entry(key: str, payload: int) -> StoreEntry:
    return StoreEntry(
        key=key,
        fn="tests.store:worker",
        result_version=1,
        value={"$dict": [["payload", payload]]},
        wall_seconds=0.25,
    )


@pytest.fixture
def populated(tmp_path):
    store_dir = tmp_path / "store"
    with JournalStore(store_dir) as store:
        store.put(_entry("k1", 1))
        store.put(_entry("k2", 2))
    return store_dir


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(ENV_STORE_DIR, raising=False)


class TestStats:
    def test_stats_prints_index_json(self, populated, capsys):
        assert main(["stats", "--dir", str(populated)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["segments"] == 1
        assert payload["backend"] == "journal"

    def test_env_var_names_the_store(
        self, populated, capsys, monkeypatch
    ):
        monkeypatch.setenv(ENV_STORE_DIR, str(populated))
        assert main(["stats"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 2

    def test_no_dir_anywhere_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_missing_store_exits_two(self, tmp_path, capsys):
        code = main(["stats", "--dir", str(tmp_path / "absent")])
        assert code == 2
        assert "no store at" in capsys.readouterr().err


class TestVerify:
    def test_clean_store_exits_zero(self, populated, capsys):
        assert main(["verify", "--dir", str(populated)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupt_store_exits_one(self, populated, capsys):
        segment = list_segments(populated)[0]
        lines = segment.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "{broken")
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert main(["verify", "--dir", str(populated)]) == 1
        assert "CORRUPT" in capsys.readouterr().out


class TestGc:
    def test_gc_compacts(self, populated, capsys):
        assert main(["gc", "--dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "kept 2" in out
        assert len(list_segments(populated)) == 1

    def test_dry_run_is_labelled_and_inert(self, populated, capsys):
        before = list_segments(populated)[0].read_text(encoding="utf-8")
        code = main(
            ["gc", "--dir", str(populated), "--max-age-days", "0",
             "--dry-run"]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("[dry-run]")
        after = list_segments(populated)[0].read_text(encoding="utf-8")
        assert after == before


class TestExportImport:
    def test_export_then_import(self, populated, tmp_path, capsys):
        dump = tmp_path / "dump.jsonl"
        assert main(["export", "--dir", str(populated), str(dump)]) == 0
        assert "exported 2" in capsys.readouterr().out
        target = tmp_path / "other"
        code = main(["import", "--dir", str(target), str(dump)])
        assert code == 0
        assert "imported 2" in capsys.readouterr().out
        with JournalStore(target, create=False) as store:
            assert store.stats()["entries"] == 2

    def test_import_of_corrupt_file_exits_two(
        self, populated, tmp_path, capsys
    ):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n{}\n", encoding="utf-8")
        code = main(["import", "--dir", str(populated), str(bad)])
        assert code == 2
        assert "line 1" in capsys.readouterr().err
