"""Property tests for the store's canonical spec hashing.

The content address must be *stable* (dict order, process identity and
``PYTHONHASHSEED`` must not matter) and *sensitive* (every field that
changes what would be computed must change the key).  Both properties
are what make warm resume and cross-experiment dedup safe, so they get
hypothesis coverage rather than a handful of examples.
"""

from __future__ import annotations

import enum
import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.parallel import RunSpec
from repro.store.hashing import (
    SpecHashError,
    canonicalize,
    spec_fingerprint,
    spec_key,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def work(a=0, b=0, c=0, d=0):
    """Module-level worker: hashable by reference."""
    return (a, b, c, d)


def other_work(a=0, b=0, c=0, d=0):
    """A second worker with an identical signature."""
    return (a, b, c, d)


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Point:
    x: int = 0
    y: int = 0


def _spec(fn=work, result_version=1, **kwargs) -> RunSpec:
    return RunSpec(
        key=("k",), fn=fn, kwargs=kwargs, result_version=result_version
    )


primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

kwargs_dicts = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
    ),
    st.one_of(
        primitives,
        st.dictionaries(st.text(max_size=6), primitives, max_size=3),
        st.lists(primitives, max_size=4),
        st.tuples(primitives, primitives),
    ),
    min_size=1,
    max_size=5,
)


class TestOrderInvariance:
    @given(kwargs_dicts)
    @settings(max_examples=80, deadline=None)
    def test_kwargs_insertion_order_is_erased(self, kwargs):
        forward = RunSpec(key=("k",), fn=work, kwargs=kwargs)
        backward = RunSpec(
            key=("other",),
            fn=work,
            kwargs=dict(reversed(list(kwargs.items()))),
        )
        assert spec_key(forward) == spec_key(backward)

    @given(st.dictionaries(st.text(max_size=6), primitives, min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_nested_mapping_order_is_erased(self, mapping):
        shuffled = dict(reversed(list(mapping.items())))
        a = _spec(payload=mapping)
        b = _spec(payload=shuffled)
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_set_order_is_erased(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_grid_key_is_excluded(self):
        a = RunSpec(key=("grid", 1), fn=work, kwargs={"a": 1})
        b = RunSpec(key=("other-grid", 99), fn=work, kwargs={"a": 1})
        assert spec_key(a) == spec_key(b)


class TestSensitivity:
    @given(kwargs_dicts)
    @settings(max_examples=60, deadline=None)
    def test_every_kwarg_value_participates(self, kwargs):
        base = spec_key(RunSpec(key=("k",), fn=work, kwargs=kwargs))
        for name in kwargs:
            mutated = dict(kwargs)
            mutated[name] = ["#sentinel", kwargs[name]]
            assert (
                spec_key(RunSpec(key=("k",), fn=work, kwargs=mutated))
                != base
            )

    def test_result_version_salts_the_key(self):
        assert spec_key(_spec(result_version=1)) != spec_key(
            _spec(result_version=2)
        )

    def test_worker_function_participates(self):
        assert spec_key(_spec(fn=work)) != spec_key(_spec(fn=other_work))

    def test_tuple_and_list_hash_differently(self):
        assert spec_key(_spec(a=(1, 2))) != spec_key(_spec(a=[1, 2]))

    def test_enum_and_dataclass_fields_participate(self):
        red = _spec(color=Color.RED, at=Point(1, 2))
        blue = _spec(color=Color.BLUE, at=Point(1, 2))
        moved = _spec(color=Color.RED, at=Point(1, 3))
        keys = {spec_key(red), spec_key(blue), spec_key(moved)}
        assert len(keys) == 3


class TestUncacheable:
    def test_lambda_kwarg_raises(self):
        with pytest.raises(SpecHashError):
            spec_key(_spec(fn_arg=lambda: None))

    def test_local_function_kwarg_raises(self):
        def local():  # pragma: no cover - identity only
            return None

        with pytest.raises(SpecHashError):
            spec_key(_spec(fn_arg=local))

    def test_live_object_kwarg_raises(self):
        with pytest.raises(SpecHashError):
            spec_key(_spec(handle=object()))


_SUBPROCESS_SCRIPT = """
import sys
from repro.experiments.common import base_config, simulate_summary
from repro.experiments.parallel import RunSpec
from repro.store.hashing import spec_key
from repro.traffic.unicast import UniformRandomUnicast

spec = RunSpec(
    key=("probe", 1),
    fn=simulate_summary,
    kwargs=dict(
        config=base_config(num_hosts=16, seed=3),
        workload_cls=UniformRandomUnicast,
        workload_kwargs={"load": 0.2, "payload_flits": 16},
        max_cycles=1_000,
    ),
)
sys.stdout.write(spec_key(spec))
"""


class TestCrossProcessStability:
    def _key_under_hashseed(self, seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        completed = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return completed.stdout.strip()

    def test_key_survives_hashseed_and_process_changes(self):
        first = self._key_under_hashseed("0")
        second = self._key_under_hashseed("271828")
        assert first == second
        assert len(first) == 64
        from repro.experiments.common import base_config, simulate_summary
        from repro.traffic.unicast import UniformRandomUnicast

        local = RunSpec(
            key=("probe", 1),
            fn=simulate_summary,
            kwargs=dict(
                config=base_config(num_hosts=16, seed=3),
                workload_cls=UniformRandomUnicast,
                workload_kwargs={"load": 0.2, "payload_flits": 16},
                max_cycles=1_000,
            ),
        )
        assert spec_key(local) == first
