"""Kill a campaign mid-run; the next run resumes from the journal.

This is the crash-safety story end to end: a subprocess campaign
journals results as they complete, gets SIGKILLed part-way (possibly
mid-write, leaving a torn final line), and a warm restart answers the
finished runs from the store, executes only the remainder, and leaves
a journal that ``verify`` calls clean.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.parallel import (
    SOURCE_EXECUTED,
    SOURCE_HIT,
    ExecutionPlan,
    RunSpec,
    resolve,
)
from repro.store.backend import JournalStore
from repro.store.memo import memoized_outcomes

from tests.conftest import (
    journal_entry_count,
    poll_until,
    wait_journal_quiescent,
)
from tests.store import _crash_worker

REPO_ROOT = Path(__file__).resolve().parents[2]

#: runs in the campaign and seconds each one sleeps: long enough that
#: the kill always lands mid-campaign, short enough to stay CI-cheap
RUNS = 40
SECONDS_PER_RUN = 0.05

_CAMPAIGN_SCRIPT = """
import sys
from pathlib import Path

from repro.experiments.parallel import ExecutionPlan, RunSpec
from repro.store.backend import JournalStore
from repro.store.memo import memoized_outcomes
from tests.store import _crash_worker

specs = [
    RunSpec(
        key=("crash", index),
        fn=_crash_worker.slow_run,
        kwargs=dict(tag=index, seconds={seconds}),
    )
    for index in range({runs})
]
with JournalStore(Path(sys.argv[1])) as store:
    memoized_outcomes(ExecutionPlan("crash", specs), store, jobs=1)
print("campaign-finished")
"""


def _plan() -> ExecutionPlan:
    specs = [
        RunSpec(
            key=("crash", index),
            fn=_crash_worker.slow_run,
            kwargs=dict(tag=index, seconds=SECONDS_PER_RUN),
        )
        for index in range(RUNS)
    ]
    return ExecutionPlan("crash", specs)


class TestCrashResume:
    def test_killed_campaign_resumes_from_journal(self, tmp_path):
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        script = _CAMPAIGN_SCRIPT.format(
            runs=RUNS, seconds=SECONDS_PER_RUN
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(store_dir)],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:

            def journaled_enough():
                if process.poll() is not None:
                    out, err = process.communicate()
                    pytest.fail(
                        "campaign finished before it could be killed: "
                        f"{out!r} {err!r}"
                    )
                return journal_entry_count(store_dir) >= 3

            poll_until(
                journaled_enough,
                message="the campaign to journal 3 entries",
            )
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=30)

        # the kill may have raced a write in flight: wait for the
        # journal to stop changing, not a fixed post-kill sleep
        journaled = wait_journal_quiescent(store_dir)
        assert 0 < journaled < RUNS

        with JournalStore(store_dir) as store:
            outcomes = memoized_outcomes(_plan(), store, jobs=1)
            report = store.verify()

        sources = [outcome.source for outcome in outcomes]
        hits = sources.count(SOURCE_HIT)
        executed = sources.count(SOURCE_EXECUTED)
        assert hits >= 3  # the killed campaign's completed runs
        assert executed == RUNS - hits  # only the remainder re-ran
        assert resolve(outcomes) == {
            ("crash", index): {"tag": index, "squared": index * index}
            for index in range(RUNS)
        }
        # torn tails are legal crash artifacts; corruption is not
        assert report.ok, report.render()
        assert report.entries == RUNS

        with JournalStore(store_dir) as store:
            warm = memoized_outcomes(_plan(), store, jobs=1)
        assert all(o.source == SOURCE_HIT for o in warm)
