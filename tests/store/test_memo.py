"""Memoizing execution: hits, coalescing, refresh, uncacheable specs."""

from __future__ import annotations

import pytest

from repro.experiments.parallel import (
    SOURCE_COALESCED,
    SOURCE_EXECUTED,
    SOURCE_HIT,
    ExecutionPlan,
    RunSpec,
    resolve,
    run_outcomes,
)
from repro.store.backend import MemoryStore
from repro.store.memo import memoized_outcomes, partition_plan

#: executions recorded by the module-level worker (jobs=1 is serial,
#: so the worker runs in-process and the list is visible to the test)
CALLS = []


def work(tag=0, factor=1, probe=None):
    CALLS.append(tag)
    return {"tag": tag, "scaled": tag * factor}


def opaque(tag=0):
    CALLS.append(tag)
    return object()  # not encodable: the value is execute-only


def _plan(name="grid", tags=(1, 2, 3), prefix="run"):
    specs = [
        RunSpec(key=(prefix, tag), fn=work, kwargs={"tag": tag})
        for tag in tags
    ]
    return ExecutionPlan(name, specs)


@pytest.fixture(autouse=True)
def _clear_calls():
    CALLS.clear()
    yield


class TestHits:
    def test_second_campaign_is_all_hits(self):
        store = MemoryStore()
        plan = _plan()
        cold = memoized_outcomes(plan, store, jobs=1)
        executed = list(CALLS)
        warm = memoized_outcomes(plan, store, jobs=1)
        assert executed == [1, 2, 3]
        assert list(CALLS) == executed  # nothing re-ran
        assert resolve(warm) == resolve(cold)
        assert all(o.source == SOURCE_HIT for o in warm)
        assert all(o.wall_seconds == 0.0 for o in warm)
        assert all(o.saved_seconds >= 0.0 for o in warm)

    def test_store_values_match_plain_execution(self):
        plan = _plan()
        plain = resolve(run_outcomes(plan, jobs=1))
        store = MemoryStore()
        assert resolve(memoized_outcomes(plan, store, jobs=1)) == plain
        assert resolve(memoized_outcomes(plan, store, jobs=1)) == plain

    def test_hits_cross_plan_and_grid_keys(self):
        store = MemoryStore()
        memoized_outcomes(_plan(prefix="first"), store, jobs=1)
        warm = memoized_outcomes(
            _plan(name="other", prefix="second"), store, jobs=1
        )
        assert all(o.source == SOURCE_HIT for o in warm)


class TestCoalescing:
    def _dup_plan(self):
        specs = [
            RunSpec(key=(prefix, tag), fn=work, kwargs={"tag": tag})
            for tag in (1, 2)
            for prefix in ("a", "b")
        ]
        return ExecutionPlan("dup", specs)

    def test_duplicates_execute_once_and_fan_out(self):
        store = MemoryStore()
        outcomes = memoized_outcomes(self._dup_plan(), store, jobs=1)
        assert sorted(CALLS) == [1, 2]  # one execution per unique spec
        by_source = {}
        for outcome in outcomes:
            by_source.setdefault(outcome.source, []).append(outcome)
        assert len(by_source[SOURCE_EXECUTED]) == 2
        assert len(by_source[SOURCE_COALESCED]) == 2
        plain = resolve(run_outcomes(self._dup_plan(), jobs=1))
        assert resolve(outcomes) == plain

    def test_partition_reports_the_split(self):
        store = MemoryStore()
        plan = self._dup_plan()
        part = partition_plan(plan, store)
        assert len(part.leaders) == 2
        assert part.coalesced_count == 2
        assert not part.hits
        memoized_outcomes(plan, store, jobs=1)
        warm = partition_plan(plan, store)
        assert len(warm.hits) == 4
        assert not warm.leaders


class TestRefresh:
    def test_refresh_reexecutes_but_still_coalesces(self):
        store = MemoryStore()
        plan = _plan(tags=(5,))
        memoized_outcomes(plan, store, jobs=1)
        assert CALLS == [5]
        dup = ExecutionPlan(
            "dup",
            [
                RunSpec(key=("a", 5), fn=work, kwargs={"tag": 5}),
                RunSpec(key=("b", 5), fn=work, kwargs={"tag": 5}),
            ],
        )
        outcomes = memoized_outcomes(dup, store, jobs=1, refresh=True)
        assert CALLS == [5, 5]  # re-ran once despite the journal
        sources = sorted(o.source for o in outcomes)
        assert sources == [SOURCE_COALESCED, SOURCE_EXECUTED]
        assert store.puts == 2  # the fresh result was re-journaled

    def test_result_version_bump_misses(self):
        store = MemoryStore()
        memoized_outcomes(_plan(tags=(9,)), store, jobs=1)
        bumped = ExecutionPlan(
            "v2",
            [
                RunSpec(
                    key=("run", 9),
                    fn=work,
                    kwargs={"tag": 9},
                    result_version=2,
                )
            ],
        )
        outcomes = memoized_outcomes(bumped, store, jobs=1)
        assert CALLS == [9, 9]
        assert outcomes[0].source == SOURCE_EXECUTED


class TestUncacheable:
    def test_unhashable_spec_always_executes(self):
        store = MemoryStore()
        plan = ExecutionPlan(
            "local",
            [
                RunSpec(
                    key=("run", 1),
                    fn=work,
                    kwargs={"tag": 1, "probe": lambda: 2},
                )
            ],
        )
        first = memoized_outcomes(plan, store, jobs=1)
        second = memoized_outcomes(plan, store, jobs=1)
        assert CALLS == [1, 1]
        assert store.puts == 0
        assert first[0].source == SOURCE_EXECUTED
        assert second[0].source == SOURCE_EXECUTED

    def test_unencodable_value_is_not_journaled(self):
        store = MemoryStore()
        plan = ExecutionPlan(
            "opaque",
            [RunSpec(key=("run", 1), fn=opaque, kwargs={"tag": 1})],
        )
        memoized_outcomes(plan, store, jobs=1)
        memoized_outcomes(plan, store, jobs=1)
        assert CALLS == [1, 1]
        assert store.puts == 0


class TestProgress:
    def test_done_total_spans_the_whole_plan(self):
        store = MemoryStore()
        plan = _plan(tags=(1, 2, 3, 4))
        memoized_outcomes(plan, store, jobs=1)
        seen = []

        def progress(outcome, done, total):
            seen.append((outcome.source, done, total))

        memoized_outcomes(plan, store, jobs=1, progress=progress)
        assert [(done, total) for _, done, total in seen] == [
            (1, 4), (2, 4), (3, 4), (4, 4)
        ]
        assert all(source == SOURCE_HIT for source, _, _ in seen)

    def test_mixed_plan_counts_every_source(self):
        store = MemoryStore()
        memoized_outcomes(_plan(tags=(1,)), store, jobs=1)
        mixed = ExecutionPlan(
            "mixed",
            [
                RunSpec(key=("hit", 1), fn=work, kwargs={"tag": 1}),
                RunSpec(key=("miss", 2), fn=work, kwargs={"tag": 2}),
                RunSpec(key=("dup", 2), fn=work, kwargs={"tag": 2}),
            ],
        )
        seen = []

        def progress(outcome, done, total):
            seen.append((outcome.source, done, total))

        memoized_outcomes(mixed, store, jobs=1, progress=progress)
        assert [done for _, done, _ in seen] == [1, 2, 3]
        assert {total for _, _, total in seen} == {3}
        assert [source for source, _, _ in seen] == [
            SOURCE_HIT, SOURCE_EXECUTED, SOURCE_COALESCED
        ]
