"""Backend behaviour: journal recovery, gc, verify, export/import."""

from __future__ import annotations

import json

import pytest

from repro.obs.manifest import utc_now_iso
from repro.obs.sinks import SCHEMA_STORE_ENTRY, SCHEMA_STORE_SEGMENT
from repro.store.backend import (
    JournalStore,
    MemoryStore,
    StoreEntry,
    StoreError,
)
from repro.store.hashing import STORE_SCHEMA_VERSION
from repro.store.journal import list_segments


def _entry(key: str, payload: int, **overrides) -> StoreEntry:
    defaults = dict(
        key=key,
        fn="tests.store:worker",
        result_version=1,
        value={"$dict": [["payload", payload]]},
        wall_seconds=0.5,
    )
    defaults.update(overrides)
    return StoreEntry(**defaults)


def _segment_lines(store_dir) -> list:
    segments = list_segments(store_dir)
    assert segments, f"no segments under {store_dir}"
    lines = []
    for path in segments:
        lines.extend(path.read_text(encoding="utf-8").splitlines())
    return lines


class TestMemoryStore:
    def test_get_put_stats(self):
        store = MemoryStore()
        assert store.get("missing") is None
        store.put(_entry("k1", 1))
        store.put(_entry("k1", 2))
        assert store.get("k1").value == {"$dict": [["payload", 2]]}
        assert store.puts == 2
        assert store.stats()["entries"] == 1
        store.close()


class TestStoreEntryRecord:
    def test_record_roundtrip(self):
        entry = _entry("k", 7, created_at="2026-08-08T00:00:00Z",
                       git_sha="abc123")
        record = entry.to_record()
        assert record["schema"] == SCHEMA_STORE_ENTRY
        assert StoreEntry.from_record(record) == entry


class TestJournalStore:
    def test_entries_survive_reopen_newest_wins(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(_entry("k1", 1))
            store.put(_entry("k2", 2))
        with JournalStore(tmp_path / "store") as store:
            store.put(_entry("k1", 10))
        with JournalStore(tmp_path / "store") as store:
            assert store.get("k1").value == {"$dict": [["payload", 10]]}
            assert store.get("k2").value == {"$dict": [["payload", 2]]}
            stats = store.stats()
        assert stats["entries"] == 2
        assert stats["segments"] == 2
        assert stats["bytes"] > 0

    def test_missing_store_without_create_raises(self, tmp_path):
        with pytest.raises(StoreError):
            JournalStore(tmp_path / "absent", create=False)

    def test_each_writer_session_claims_its_own_segment(self, tmp_path):
        for round_number in range(3):
            with JournalStore(tmp_path / "store") as store:
                store.put(_entry(f"k{round_number}", round_number))
        names = [path.name for path in list_segments(tmp_path / "store")]
        assert names == ["seg-00001.jsonl", "seg-00002.jsonl",
                         "seg-00003.jsonl"]

    def test_session_stamps_provenance(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(_entry("k", 1))
            stamped = store.get("k")
        assert stamped.created_at
        assert stamped.git_sha


class TestCrashRecovery:
    def test_torn_tail_is_recovered_not_reported(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(_entry("k1", 1))
            store.put(_entry("k2", 2))
        segment = list_segments(tmp_path / "store")[-1]
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.store.entry/1", "k')
        with JournalStore(tmp_path / "store") as store:
            assert store.get("k1") is not None
            assert store.get("k2") is not None
            report = store.verify()
        assert report.ok
        assert report.torn_tails == 1
        assert report.entries == 2

    def test_mid_file_corruption_is_reported(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(_entry("k1", 1))
            store.put(_entry("k2", 2))
        segment = list_segments(tmp_path / "store")[-1]
        lines = segment.read_text(encoding="utf-8").splitlines()
        lines.insert(2, "not json at all {{{")
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with JournalStore(tmp_path / "store") as store:
            report = store.verify()
        assert not report.ok
        assert any("invalid JSON" in message for message in report.errors)

    def test_missing_segment_header_is_reported(self, tmp_path):
        store_dir = tmp_path / "store"
        segments = store_dir / "segments"
        segments.mkdir(parents=True)
        line = json.dumps(_entry("k", 1).to_record())
        (segments / "seg-00001.jsonl").write_text(
            line + "\n", encoding="utf-8"
        )
        with JournalStore(store_dir) as store:
            report = store.verify()
        assert any(
            "missing segment header" in message
            for message in report.errors
        )

    def test_stale_schema_segments_are_skipped(self, tmp_path):
        store_dir = tmp_path / "store"
        segments = store_dir / "segments"
        segments.mkdir(parents=True)
        header = {
            "schema": SCHEMA_STORE_SEGMENT,
            "store_schema": STORE_SCHEMA_VERSION - 1,
            "created_at": utc_now_iso(),
            "manifest": {},
        }
        records = [header, _entry("old-key", 1).to_record()]
        (segments / "seg-00001.jsonl").write_text(
            "".join(json.dumps(record) + "\n" for record in records),
            encoding="utf-8",
        )
        with JournalStore(store_dir) as store:
            assert store.get("old-key") is None
            report = store.verify()
            assert report.ok
            assert report.stale_schema == 1
            gc_report = store.gc()
        assert gc_report.dropped_stale == 1
        assert gc_report.kept == 0


class TestGc:
    def test_age_cutoff_drops_old_entries(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(
                _entry("old", 1, created_at="2001-01-01T00:00:00Z")
            )
            store.put(_entry("new", 2, created_at=utc_now_iso()))
            report = store.gc(max_age_days=30.0)
            assert report.dropped_age == 1
            assert report.kept == 1
            assert store.get("old") is None
            assert store.get("new") is not None

    def test_size_cap_evicts_oldest_first(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(
                _entry("old", 1, created_at="2020-01-01T00:00:00Z")
            )
            store.put(
                _entry("mid", 2, created_at="2023-01-01T00:00:00Z")
            )
            store.put(
                _entry("new", 3, created_at="2026-01-01T00:00:00Z")
            )
            line_size = len(
                json.dumps(
                    store.get("new").to_record(),
                    sort_keys=True,
                    separators=(",", ":"),
                )
            ) + 1
            report = store.gc(max_bytes=line_size * 2)
            assert report.dropped_size == 1
            assert report.kept == 2
            assert store.get("old") is None
            assert store.get("new") is not None

    def test_compaction_rewrites_into_one_segment(self, tmp_path):
        for round_number in range(3):
            with JournalStore(tmp_path / "store") as store:
                store.put(_entry(f"k{round_number}", round_number))
        with JournalStore(tmp_path / "store") as store:
            report = store.gc()
            assert report.kept == 3
            assert report.segments_removed == 3
        assert len(list_segments(tmp_path / "store")) == 1
        with JournalStore(tmp_path / "store") as store:
            assert store.stats()["entries"] == 3
            assert store.verify().ok

    def test_dry_run_changes_nothing(self, tmp_path):
        with JournalStore(tmp_path / "store") as store:
            store.put(
                _entry("old", 1, created_at="2001-01-01T00:00:00Z")
            )
        before = _segment_lines(tmp_path / "store")
        with JournalStore(tmp_path / "store") as store:
            report = store.gc(max_age_days=1.0, dry_run=True)
            assert report.dropped_age == 1
            assert store.get("old") is not None
        assert _segment_lines(tmp_path / "store") == before


class TestExportImport:
    def test_export_then_import_merges_new_entries(self, tmp_path):
        with JournalStore(tmp_path / "a") as source:
            source.put(_entry("k1", 1))
            source.put(_entry("k2", 2))
            count = source.export(tmp_path / "dump.jsonl")
        assert count == 2
        with JournalStore(tmp_path / "b") as target:
            target.put(_entry("k1", 99))
            imported = target.import_file(tmp_path / "dump.jsonl")
            assert imported == 1  # k1 already present, kept as-is
            assert target.get("k1").value == {"$dict": [["payload", 99]]}
            assert target.get("k2") is not None
            assert target.verify().ok

    def test_import_of_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n{}\n", encoding="utf-8")
        with JournalStore(tmp_path / "store") as store:
            with pytest.raises(StoreError):
                store.import_file(bad)
