"""Destination sets: algebra, invariants, immutability."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.flits.destset import DestinationSet

universes = st.integers(min_value=1, max_value=256)


@st.composite
def sets_with_universe(draw, universe=None):
    n = universe if universe is not None else draw(universes)
    ids = draw(st.lists(st.integers(0, n - 1), max_size=32, unique=True))
    return DestinationSet.from_ids(n, ids)


class TestConstruction:
    def test_from_ids_roundtrip(self):
        d = DestinationSet.from_ids(16, [3, 1, 7])
        assert list(d) == [1, 3, 7]
        assert len(d) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DestinationSet.from_ids(4, [4])
        with pytest.raises(ValueError):
            DestinationSet(4, 1 << 4)

    def test_bad_universe_rejected(self):
        with pytest.raises(ValueError):
            DestinationSet(0)

    def test_full_and_empty(self):
        assert len(DestinationSet.full(8)) == 8
        assert not DestinationSet.empty(8)

    def test_single(self):
        d = DestinationSet.single(8, 3)
        assert d.is_singleton()
        assert d.lowest() == 3

    def test_immutable(self):
        d = DestinationSet.single(8, 1)
        with pytest.raises(AttributeError):
            d.mask = 7


class TestQueries:
    def test_contains(self):
        d = DestinationSet.from_ids(8, [2, 5])
        assert 2 in d and 5 in d
        assert 3 not in d
        assert 100 not in d

    def test_lowest_of_empty_raises(self):
        with pytest.raises(ValueError):
            DestinationSet.empty(4).lowest()

    def test_singleton_detection(self):
        assert not DestinationSet.empty(4).is_singleton()
        assert DestinationSet.single(4, 0).is_singleton()
        assert not DestinationSet.from_ids(4, [0, 1]).is_singleton()


class TestAlgebra:
    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DestinationSet.empty(4) | DestinationSet.empty(8)

    @given(sets_with_universe(universe=64), sets_with_universe(universe=64))
    def test_operations_match_python_sets(self, a, b):
        sa, sb = set(a), set(b)
        assert set(a | b) == sa | sb
        assert set(a & b) == sa & sb
        assert set(a - b) == sa - sb
        assert a.issubset(b) == sa.issubset(sb)
        assert a.isdisjoint(b) == sa.isdisjoint(sb)

    @given(sets_with_universe())
    def test_iteration_sorted_and_consistent(self, d):
        members = list(d)
        assert members == sorted(members)
        assert len(members) == len(d)
        assert all(m in d for m in members)

    @given(sets_with_universe(universe=32))
    def test_without_removes_member(self, d):
        for member in d:
            assert member not in d.without(member)
            break

    def test_intersect_mask_is_and(self):
        d = DestinationSet.from_ids(8, [1, 2, 3])
        assert d.intersect_mask(0b0110).mask == 0b0110

    @given(sets_with_universe(universe=32))
    def test_hash_eq_consistency(self, d):
        copy = DestinationSet(d.universe, d.mask)
        assert d == copy
        assert hash(d) == hash(copy)

    def test_repr_compact_for_large_sets(self):
        text = repr(DestinationSet.full(64))
        assert "64 total" in text
