"""Messages, packets, worms and flits."""

from __future__ import annotations

import pytest

from repro.flits.destset import DestinationSet
from repro.flits.encoding import BitStringEncoding
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm


def make_message(payload=32, dests=(1, 2, 3), universe=16, source=0):
    return Message(
        message_id=0,
        source=source,
        destinations=DestinationSet.from_ids(universe, dests),
        payload_flits=payload,
        traffic_class=TrafficClass.MULTICAST,
        created_cycle=0,
    )


class TestMessage:
    def test_rejects_empty_destinations(self):
        with pytest.raises(ValueError):
            make_message(dests=())

    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            make_message(dests=(0, 1), source=0)

    def test_rejects_zero_payload(self):
        with pytest.raises(ValueError):
            make_message(payload=0)

    def test_segmentation_single_packet(self):
        msg = make_message(payload=32)
        enc = BitStringEncoding(16)
        (packet,) = msg.segment(enc, max_payload_flits=128, first_packet_id=5)
        assert packet.packet_id == 5
        assert packet.payload_flits == 32
        assert packet.is_last
        assert packet.header_flits == enc.header_flits(msg.destinations)

    def test_segmentation_splits_and_numbers(self):
        msg = make_message(payload=100)
        packets = msg.segment(BitStringEncoding(16), 40, first_packet_id=0)
        assert [p.payload_flits for p in packets] == [40, 40, 20]
        assert [p.packet_id for p in packets] == [0, 1, 2]
        assert [p.sequence for p in packets] == [0, 1, 2]
        assert [p.is_last for p in packets] == [False, False, True]

    def test_segment_preserves_total_payload(self):
        msg = make_message(payload=77)
        packets = msg.segment(BitStringEncoding(16), 16, 0)
        assert sum(p.payload_flits for p in packets) == 77


class TestPacket:
    def test_size_and_source(self):
        msg = make_message(payload=10)
        packet = Packet(0, msg, msg.destinations, header_flits=2,
                        payload_flits=10)
        assert packet.size_flits == 12
        assert packet.source == 0
        assert packet.is_multidestination
        assert packet.traffic_class is TrafficClass.MULTICAST

    def test_rejects_bad_sizes(self):
        msg = make_message()
        with pytest.raises(ValueError):
            Packet(0, msg, msg.destinations, header_flits=0, payload_flits=1)
        with pytest.raises(ValueError):
            Packet(0, msg, msg.destinations, header_flits=1, payload_flits=0)


class TestWorm:
    def make_worm(self):
        msg = make_message(payload=6, dests=(1, 2, 3))
        packet = Packet(0, msg, msg.destinations, header_flits=2,
                        payload_flits=6)
        return Worm.root(packet)

    def test_root_carries_full_destinations(self):
        worm = self.make_worm()
        assert worm.destinations == worm.packet.destinations
        assert not worm.descending
        assert worm.parent is None

    def test_branch_subsets(self):
        worm = self.make_worm()
        sub = DestinationSet.from_ids(16, [1, 2])
        child = worm.branch(sub, descending=True)
        assert child.destinations == sub
        assert child.descending
        assert child.parent is worm
        assert child.packet is worm.packet

    def test_branch_must_be_subset(self):
        worm = self.make_worm()
        with pytest.raises(ValueError):
            worm.branch(DestinationSet.from_ids(16, [9]), descending=True)

    def test_branch_must_be_nonempty(self):
        worm = self.make_worm()
        with pytest.raises(ValueError):
            worm.branch(DestinationSet.empty(16), descending=True)

    def test_singleton_branch_is_not_multidestination(self):
        worm = self.make_worm()
        child = worm.branch(DestinationSet.single(16, 2), True)
        assert worm.is_multidestination
        assert not child.is_multidestination


class TestFlit:
    def make_worm(self, header=2, payload=4):
        msg = make_message(payload=payload)
        packet = Packet(0, msg, msg.destinations, header, payload)
        return Worm.root(packet)

    def test_kinds(self):
        worm = self.make_worm(header=2, payload=4)
        flits = [Flit(worm, i) for i in range(worm.size_flits)]
        assert flits[0].is_head and flits[0].is_header
        assert flits[1].is_header and not flits[1].is_head
        assert not flits[2].is_header
        assert flits[-1].is_tail
        assert not any(f.is_tail for f in flits[:-1])

    def test_index_bounds(self):
        worm = self.make_worm()
        with pytest.raises(ValueError):
            Flit(worm, worm.size_flits)
        with pytest.raises(ValueError):
            Flit(worm, -1)

    def test_equality_is_per_worm(self):
        worm = self.make_worm()
        sibling = worm.branch(DestinationSet.single(16, 1), True)
        assert Flit(worm, 0) == Flit(worm, 0)
        assert Flit(worm, 0) != Flit(sibling, 0)
        assert Flit(worm, 0) != Flit(worm, 1)

    def test_packet_passthrough(self):
        worm = self.make_worm()
        assert Flit(worm, 0).packet is worm.packet
