"""Packed flit plane: lossless word roundtrips and span-queue laws.

The packed data plane (``repro.flits.packed``) replaces ``Flit`` objects
with integer words and spans; every conversion back to the object world
must be lossless for every flit kind (head/body/tail, header/payload)
and every destination-set shape.  These are property-based pins of that
contract, mirroring the style of ``tests/flits/test_encoding.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packed import (
    FLAG_HEAD,
    FLAG_HEADER,
    FLAG_TAIL,
    SpanQueue,
    WORD_INDEX_BITS,
    WormTable,
    flit_flags,
    flit_repr,
    pack_word,
    span_flits,
    unpack_word,
)
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm


def make_worm(
    universe: int = 16,
    destination_ids=(1,),
    header_flits: int = 1,
    payload_flits: int = 4,
    source: int = 0,
    packet_id: int = 0,
) -> Worm:
    destinations = DestinationSet.from_ids(universe, destination_ids)
    message = Message(
        0, source, destinations, payload_flits, TrafficClass.UNICAST, 0
    )
    packet = Packet(
        packet_id, message, destinations, header_flits, payload_flits
    )
    return Worm.root(packet)


#: a worm of varying destination-set shape (singleton through broadcast),
#: header length and payload length — every flit-kind combination
def worms():
    return st.integers(2, 5).flatmap(  # universe = 2**k hosts
        lambda k: st.builds(
            make_worm,
            universe=st.just(2 ** k),
            destination_ids=st.lists(
                st.integers(1, 2 ** k - 1), min_size=1,
                max_size=2 ** k - 1, unique=True,
            ),
            header_flits=st.integers(1, 4),
            payload_flits=st.integers(1, 12),
            packet_id=st.integers(0, 2 ** 20),
        )
    )


class TestWordRoundtrip:
    @given(
        slot=st.integers(0, 2 ** 40),
        index=st.integers(0, (1 << WORD_INDEX_BITS) - 1),
        flags=st.integers(0, 7),
    )
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_is_identity(self, slot, index, flags):
        assert unpack_word(pack_word(slot, index, flags)) == (
            slot, index, flags,
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ProtocolError):
            pack_word(0, 1 << WORD_INDEX_BITS, 0)
        with pytest.raises(ProtocolError):
            pack_word(-1, 0, 0)

    @given(worm=worms())
    @settings(max_examples=60, deadline=None)
    def test_flags_match_flit_kind_for_every_index(self, worm):
        for index in range(worm.size_flits):
            flit = Flit(worm, index)
            flags = flit_flags(worm, index)
            assert bool(flags & FLAG_HEAD) == flit.is_head
            assert bool(flags & FLAG_TAIL) == flit.is_tail
            assert bool(flags & FLAG_HEADER) == flit.is_header


class TestWormTableRoundtrip:
    @given(worm=worms())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_lossless_for_every_flit(self, worm):
        table = WormTable()
        for index in range(worm.size_flits):
            decoded = table.decode(table.encode(worm, index))
            # identity, not just equality: the decoded flit must carry
            # the same live worm (branch), hence the same destination
            # set, header split and packet
            assert decoded.worm is worm
            assert decoded.index == index
            assert decoded == Flit(worm, index)

    @given(worm=worms())
    @settings(max_examples=40, deadline=None)
    def test_repr_matches_object_flit(self, worm):
        for index in range(worm.size_flits):
            assert flit_repr(worm, index) == repr(Flit(worm, index))

    def test_destination_set_shape_survives(self):
        multi = make_worm(universe=16, destination_ids=(1, 5, 7, 12))
        table = WormTable()
        decoded = table.decode(table.encode(multi, 0))
        assert decoded.worm.destinations == multi.destinations
        assert decoded.worm.is_multidestination

    def test_index_outside_worm_rejected(self):
        worm = make_worm(payload_flits=2)
        table = WormTable()
        with pytest.raises(ProtocolError):
            table.encode(worm, worm.size_flits)

    @given(count=st.integers(1, 24))
    @settings(max_examples=30, deadline=None)
    def test_slots_recycle_and_stay_bijective(self, count):
        table = WormTable()
        live = [make_worm(packet_id=i) for i in range(count)]
        slots = [table.intern(worm) for worm in live]
        assert len(set(slots)) == count  # bijective while live
        assert all(table.intern(w) == s for w, s in zip(live, slots))
        table.release(live[0])
        with pytest.raises(ProtocolError):
            table.worm(slots[0])
        with pytest.raises(ProtocolError):
            table.release(live[0])  # double release
        replacement = make_worm(packet_id=count)
        assert table.intern(replacement) == slots[0]  # slot recycled

    def test_span_flits_materialises_the_exact_range(self):
        worm = make_worm(payload_flits=6)
        flits = list(span_flits(worm, 2, 3))
        assert flits == [Flit(worm, 2), Flit(worm, 3), Flit(worm, 4)]


class TestSpanQueue:
    """Laws of the in-flight ring: merge, grow, partial take."""

    @given(
        sizes=st.lists(st.integers(1, 6), min_size=1, max_size=20),
        base=st.integers(0, 50),
        capacity=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_contiguous_pushes_drain_as_one_ordered_stream(
        self, sizes, base, capacity
    ):
        # split one worm into contiguous chunks pushed with the
        # consecutive-arrival contract: they must merge into a single
        # record and drain, flit by flit, at exactly their arrival cycles
        total = sum(sizes)
        worm = make_worm(payload_flits=max(total, 1))
        queue = SpanQueue(capacity)
        start = 0
        for size in sizes:
            queue.push_span(base + start, worm, start, size)
            start += size
        assert len(queue) == total
        assert queue.records == 1  # merged
        assert not queue.has_arrived(base - 1)
        got = []
        now = base
        while len(queue):
            assert queue.has_arrived(now)
            span = queue.take(now, limit=1)
            assert span is not None
            got_worm, got_start, got_count = span
            assert got_worm is worm and got_count == 1
            got.append(got_start)
            now += 1
        assert got == list(range(total))
        assert queue.take(now) is None

    @given(worm_count=st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_distinct_worms_never_merge_and_grow_preserves_order(
        self, worm_count
    ):
        queue = SpanQueue(2)  # force _grow along the way
        worms_ = [make_worm(packet_id=i) for i in range(worm_count)]
        for position, worm in enumerate(worms_):
            queue.push_span(position, worm, 0, 1)
        assert queue.records == worm_count
        drained = []
        for now in range(worm_count):
            drained.append(queue.take(now)[0])
        assert drained == worms_

    def test_partial_take_advances_the_span_in_place(self):
        worm = make_worm(payload_flits=8)
        queue = SpanQueue()
        queue.push_span(10, worm, 0, 5)  # flits 0..4 arrive cycles 10..14
        assert queue.take(9) is None  # nothing matured yet
        assert queue.take(12) == (worm, 0, 3)  # arrived prefix only
        assert len(queue) == 2
        assert not queue.has_arrived(12)  # remainder matures later
        assert queue.take(12, limit=4) is None
        assert queue.take(14) == (worm, 3, 2)
        assert len(queue) == 0

    def test_limit_caps_an_arrived_span(self):
        worm = make_worm(payload_flits=8)
        queue = SpanQueue()
        queue.push_span(0, worm, 0, 4)
        assert queue.take(100, limit=3) == (worm, 0, 3)
        assert queue.take(100) == (worm, 3, 1)

    def test_non_positive_span_rejected(self):
        worm = make_worm()
        with pytest.raises(ValueError):
            SpanQueue().push_span(0, worm, 0, 0)
