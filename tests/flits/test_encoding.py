"""Header encodings: sizes and phase decompositions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.flits.destset import DestinationSet
from repro.flits.encoding import BitStringEncoding, MultiportEncoding


def random_destsets(universe: int):
    return st.lists(
        st.integers(0, universe - 1), min_size=1, max_size=universe, unique=True
    ).map(lambda ids: DestinationSet.from_ids(universe, ids))


class TestBitString:
    def test_unicast_header_is_control_only(self):
        enc = BitStringEncoding(64, flit_payload_bits=16)
        assert enc.header_flits(DestinationSet.single(64, 5)) == 1

    def test_multidest_header_scales_with_system_size(self):
        d16 = DestinationSet.from_ids(16, [0, 1])
        d64 = DestinationSet.from_ids(64, [0, 1])
        d256 = DestinationSet.from_ids(256, [0, 1])
        assert BitStringEncoding(16).header_flits(d16) == 1 + 1
        assert BitStringEncoding(64).header_flits(d64) == 1 + 4
        assert BitStringEncoding(256).header_flits(d256) == 1 + 16

    def test_single_phase_for_arbitrary_sets(self):
        enc = BitStringEncoding(64)
        d = DestinationSet.from_ids(64, [0, 17, 33, 63])
        assert enc.phases(d) == [d]
        assert enc.covers_in_one_phase(d)

    def test_empty_set_has_no_phases(self):
        assert BitStringEncoding(16).phases(DestinationSet.empty(16)) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BitStringEncoding(0)
        with pytest.raises(ValueError):
            BitStringEncoding(16, flit_payload_bits=0)
        with pytest.raises(ValueError):
            BitStringEncoding(16, control_flits=0)


class TestMultiportDigits:
    def test_digit_roundtrip(self):
        enc = MultiportEncoding(arity=4, levels=3)
        for host in (0, 1, 17, 42, 63):
            assert enc.host_from_digits(enc.digits(host)) == host

    def test_digits_most_significant_first(self):
        enc = MultiportEncoding(arity=4, levels=3)
        assert enc.digits(1) == (0, 0, 1)
        assert enc.digits(16) == (1, 0, 0)

    def test_out_of_range_rejected(self):
        enc = MultiportEncoding(arity=4, levels=2)
        with pytest.raises(ValueError):
            enc.digits(16)
        with pytest.raises(ValueError):
            enc.host_from_digits((4, 0))
        with pytest.raises(ValueError):
            enc.host_from_digits((0,))


class TestMultiportPhases:
    def test_product_set_is_single_phase(self):
        enc = MultiportEncoding(arity=4, levels=2)
        # {0,1} x {2,3} digit products -> hosts {2,3,6,7}
        d = DestinationSet.from_ids(16, [2, 3, 6, 7])
        assert enc.is_product_set(d)
        assert len(enc.phases(d)) == 1

    def test_non_product_needs_multiple_phases(self):
        enc = MultiportEncoding(arity=4, levels=2)
        d = DestinationSet.from_ids(16, [0, 5])
        assert not enc.is_product_set(d)
        assert len(enc.phases(d)) == 2

    def test_broadcast_is_single_phase(self):
        enc = MultiportEncoding(arity=4, levels=3)
        assert len(enc.phases(DestinationSet.full(64))) == 1

    def test_universe_mismatch_rejected(self):
        enc = MultiportEncoding(arity=4, levels=2)
        with pytest.raises(ValueError):
            enc.phases(DestinationSet.full(64))

    @given(random_destsets(64))
    @settings(max_examples=60, deadline=None)
    def test_phases_partition_the_destination_set(self, d):
        enc = MultiportEncoding(arity=4, levels=3)
        phases = enc.phases(d)
        seen = DestinationSet.empty(64)
        for phase in phases:
            assert phase, "empty phase"
            assert phase.isdisjoint(seen), "phases overlap"
            assert enc.is_product_set(phase), "phase is not a product set"
            seen = seen | phase
        assert seen == d

    @given(random_destsets(64))
    @settings(max_examples=60, deadline=None)
    def test_bitstring_and_multiport_cover_same_hosts(self, d):
        bits = BitStringEncoding(64)
        multi = MultiportEncoding(arity=4, levels=3)
        union_bits = DestinationSet.empty(64)
        for phase in bits.phases(d):
            union_bits = union_bits | phase
        union_multi = DestinationSet.empty(64)
        for phase in multi.phases(d):
            union_multi = union_multi | phase
        assert union_bits == union_multi == d

    def test_header_smaller_than_bitstring_on_big_systems(self):
        d = DestinationSet.from_ids(256, [0, 1, 2])
        bits = BitStringEncoding(256).header_flits(d)
        multi = MultiportEncoding(arity=4, levels=4).header_flits(d)
        assert multi < bits
