"""End-to-end simulation facade."""

from __future__ import annotations

from repro.core.schemes import MulticastScheme
from repro.flits.packet import TrafficClass
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation
from repro.traffic.multicast import MultipleMulticastBurst, SingleMulticast
from repro.traffic.unicast import UniformRandomUnicast


class TestRunSimulation:
    def test_single_multicast_completes(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16, self_check=True),
            SingleMulticast(
                source=0, degree=4, payload_flits=16,
                scheme=MulticastScheme.HARDWARE,
            ),
        )
        assert result.completed
        assert result.op_last_latency.count == 1
        assert result.collector.operations_created == 1

    def test_burst_completes_all_operations(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16, self_check=True),
            MultipleMulticastBurst(
                num_multicasts=4, degree=4, payload_flits=16,
                scheme=MulticastScheme.HARDWARE,
            ),
        )
        assert result.op_last_latency.count == 4

    def test_budget_exhaustion_reports_incomplete(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            UniformRandomUnicast(
                load=0.9, payload_flits=32,
                warmup_cycles=100, measure_cycles=2_000,
            ),
            max_cycles=2_500,
        )
        assert not result.completed
        assert result.cycles >= 2_500

    def test_summary_keys(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            SingleMulticast(
                source=1, degree=3, payload_flits=8,
                scheme=MulticastScheme.SOFTWARE,
            ),
        )
        summary = result.summary()
        assert summary["completed"] == 1.0
        assert summary["operations"] == 1.0
        assert "op_last_latency_mean" in summary
        assert "unicast_latency_mean" in summary

    def test_throughput_accessor(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            UniformRandomUnicast(
                load=0.1, payload_flits=16,
                warmup_cycles=200, measure_cycles=1_000,
            ),
        )
        throughput = result.throughput(TrafficClass.UNICAST, 1_000)
        assert 0.0 < throughput < 1.0

    def test_latency_accessors_match_collector(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            SingleMulticast(
                source=0, degree=4, payload_flits=16,
                scheme=MulticastScheme.HARDWARE,
            ),
        )
        assert (
            result.multicast_message_latency.count
            == result.collector.classes[TrafficClass.MULTICAST].latency.count
        )
        assert result.op_average_latency.count == 1
