"""Network assembly."""

from __future__ import annotations

import pytest

from repro.core.schemes import SwitchArchitecture
from repro.network.builder import build_network
from repro.network.config import SimulationConfig, TopologyKind
from repro.switches.central_buffer import CentralBufferSwitch
from repro.switches.input_buffer import InputBufferSwitch


class TestBuild:
    def test_component_counts(self):
        network = build_network(SimulationConfig(num_hosts=64))
        assert len(network.switches) == 48
        assert len(network.interfaces) == 64
        assert len(network.nodes) == 64
        # 64 host cables + 2 levels * 16 switches * 4 ups, two links each
        assert len(network.links) == 2 * (64 + 128)

    def test_architecture_selects_switch_class(self):
        cb = build_network(SimulationConfig(num_hosts=16))
        assert all(isinstance(s, CentralBufferSwitch) for s in cb.switches)
        ib = build_network(
            SimulationConfig(
                num_hosts=16,
                switch_architecture=SwitchArchitecture.INPUT_BUFFER,
            )
        )
        assert all(isinstance(s, InputBufferSwitch) for s in ib.switches)

    def test_every_bmin_port_wired(self):
        network = build_network(SimulationConfig(num_hosts=16))
        for switch in network.switches:
            table = switch.table
            for port in list(table.down_reach) + list(table.up_ports):
                assert switch.in_links[port] is not None, (switch.name, port)
                assert switch.out_links[port] is not None

    def test_interfaces_fully_wired(self):
        network = build_network(SimulationConfig(num_hosts=16))
        for ni in network.interfaces:
            assert ni.out_link is not None
            assert ni.in_link is not None

    def test_validation_runs(self):
        with pytest.raises(Exception):
            build_network(SimulationConfig(num_hosts=48))

    def test_umin_builds(self):
        network = build_network(
            SimulationConfig(num_hosts=16, topology=TopologyKind.UMIN)
        )
        assert len(network.switches) == 8

    def test_irregular_builds(self):
        network = build_network(
            SimulationConfig(
                num_hosts=16,
                topology=TopologyKind.IRREGULAR,
                irregular_switches=8,
            )
        )
        assert len(network.switches) == 8

    def test_quiescent_when_fresh(self):
        network = build_network(SimulationConfig(num_hosts=16))
        assert network.quiescent()

    def test_unicast_header_flits(self):
        network = build_network(SimulationConfig(num_hosts=64))
        assert network.unicast_header_flits() == 1
