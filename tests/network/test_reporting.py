"""Run reports and configuration fingerprints."""

from __future__ import annotations

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.network.config import SimulationConfig, describe
from repro.network.simulation import run_simulation
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.multicast import SingleMulticast


class TestDescribe:
    def test_contains_every_behavioural_knob(self):
        text = describe(SimulationConfig())
        for fragment in (
            "N=64", "arity=4", "topo=bmin", "arch=central_buffer",
            "enc=bitstring", "mode=turnaround", "repl=asynchronous",
            "cb=2048/8", "sw=40/40", "seed=1",
        ):
            assert fragment in text

    def test_changes_show_up(self):
        base = describe(SimulationConfig())
        changed = describe(
            SimulationConfig(
                switch_architecture=SwitchArchitecture.INPUT_BUFFER,
                seed=9,
            )
        )
        assert base != changed
        assert "arch=input_buffer" in changed
        assert "seed=9" in changed

    def test_identical_configs_identical_fingerprints(self):
        assert describe(SimulationConfig()) == describe(SimulationConfig())


class TestReport:
    def run_mixed(self):
        return run_simulation(
            SimulationConfig(num_hosts=16, seed=2),
            BimodalTraffic(
                load=0.2, multicast_fraction=0.3, degree=4,
                payload_flits=16, scheme=MulticastScheme.HARDWARE,
                warmup_cycles=50, measure_cycles=800,
            ),
            max_cycles=120_000,
        )

    def test_report_sections(self):
        report = self.run_mixed().report()
        assert "simulation report" in report
        assert "per-class deliveries" in report
        assert "multicast operations" in report
        assert "unicast" in report
        assert "completed" in report

    def test_report_without_operations(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            BimodalTraffic(
                load=0.15, multicast_fraction=0.0, payload_flits=16,
                scheme=MulticastScheme.HARDWARE,
                warmup_cycles=50, measure_cycles=500,
            ),
            max_cycles=60_000,
        )
        report = result.report()
        assert "multicast operations" not in report

    def test_exhausted_budget_flagged(self):
        result = run_simulation(
            SimulationConfig(num_hosts=16),
            SingleMulticast(
                source=0, degree=4, payload_flits=16,
                scheme=MulticastScheme.HARDWARE, start_cycle=10_000,
            ),
            max_cycles=50,
        )
        assert "BUDGET EXHAUSTED" in result.report()

    def test_percentiles_ordered(self):
        result = self.run_mixed()
        stats = result.collector.classes
        for class_stats in stats.values():
            if class_stats.deliveries < 2:
                continue
            p50 = class_stats.latency_histogram.percentile(0.5)
            p95 = class_stats.latency_histogram.percentile(0.95)
            assert p50 is not None and p95 is not None
            assert p50 <= p95
