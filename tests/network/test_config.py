"""Simulation configuration: derivations and validation."""

from __future__ import annotations

import pytest

from repro.core.schemes import SwitchArchitecture
from repro.errors import ConfigurationError
from repro.flits.encoding import BitStringEncoding, MultiportEncoding
from repro.network.config import EncodingKind, SimulationConfig, TopologyKind


class TestDefaults:
    def test_paper_baseline(self):
        cfg = SimulationConfig()
        cfg.validate()
        assert cfg.num_hosts == 64
        assert cfg.arity == 4
        assert cfg.switch_architecture is SwitchArchitecture.CENTRAL_BUFFER
        assert cfg.central_buffer_flits == 2048  # 4 KB of 2-byte flits

    def test_derived_copy(self):
        cfg = SimulationConfig()
        other = cfg.derived(num_hosts=16)
        assert other.num_hosts == 16
        assert cfg.num_hosts == 64


class TestEncodings:
    def test_bitstring_encoding_built(self):
        cfg = SimulationConfig(num_hosts=64)
        assert isinstance(cfg.build_encoding(), BitStringEncoding)

    def test_multiport_encoding_built(self):
        cfg = SimulationConfig(num_hosts=64, encoding=EncodingKind.MULTIPORT)
        encoding = cfg.build_encoding()
        assert isinstance(encoding, MultiportEncoding)
        assert encoding.num_hosts == 64

    def test_max_header_grows_with_system(self):
        small = SimulationConfig(num_hosts=16)
        large = SimulationConfig(num_hosts=256)
        assert large.max_header_flits() > small.max_header_flits()

    def test_max_packet_includes_header(self):
        cfg = SimulationConfig(num_hosts=64, max_packet_payload_flits=100)
        assert cfg.max_packet_flits() == cfg.max_header_flits() + 100


class TestInputBufferSizing:
    def test_auto_sized_to_max_packet(self):
        cfg = SimulationConfig(num_hosts=64)
        assert cfg.effective_input_buffer_flits() >= cfg.max_packet_flits()

    def test_explicit_size_respected(self):
        cfg = SimulationConfig(num_hosts=64, input_buffer_flits=512)
        assert cfg.effective_input_buffer_flits() == 512

    def test_too_small_explicit_size_rejected(self):
        cfg = SimulationConfig(num_hosts=64, input_buffer_flits=16)
        with pytest.raises(ConfigurationError, match="deadlock"):
            cfg.validate()


class TestValidation:
    def test_non_power_of_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_hosts=48).validate()

    def test_central_buffer_must_hold_max_packet(self):
        cfg = SimulationConfig(
            num_hosts=64,
            central_buffer_flits=64,
            max_packet_payload_flits=128,
        )
        with pytest.raises(ConfigurationError, match="deadlock"):
            cfg.validate()

    def test_multiport_on_irregular_rejected(self):
        cfg = SimulationConfig(
            num_hosts=16,
            topology=TopologyKind.IRREGULAR,
            encoding=EncodingKind.MULTIPORT,
            irregular_switches=8,
        )
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_irregular_host_division(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(
                num_hosts=15,
                topology=TopologyKind.IRREGULAR,
                irregular_switches=4,
            ).validate()

    def test_tiny_system_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_hosts=1).validate()

    def test_bad_link_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(link_latency=0).validate()

    @pytest.mark.parametrize("hosts", [16, 64, 256])
    def test_paper_system_sizes_valid(self, hosts):
        SimulationConfig(num_hosts=hosts).validate()


class TestSettingsDerivation:
    def test_switch_settings_mirror_config(self):
        cfg = SimulationConfig(
            cb_write_bandwidth=4, routing_delay=5, chunk_flits=16
        )
        settings = cfg.switch_settings()
        assert settings.cb_write_bandwidth == 4
        assert settings.routing_delay == 5
        assert settings.chunk_flits == 16

    def test_host_params_mirror_config(self):
        cfg = SimulationConfig(sw_send_overhead=99)
        assert cfg.host_params().sw_send_overhead == 99
