"""Irregular networks and their routing trees."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.irregular import IrregularNetwork


class TestGeneration:
    def test_basic_shape(self):
        net = IrregularNetwork(8, hosts_per_switch=2, ports_per_switch=8, seed=3)
        assert net.num_hosts == 16
        assert net.num_switches == 8

    def test_deterministic_for_seed(self):
        a = IrregularNetwork(8, 2, 8, extra_links=3, seed=5)
        b = IrregularNetwork(8, 2, 8, extra_links=3, seed=5)
        assert a.tree_parent == b.tree_parent
        assert a.adjacency() == b.adjacency()

    def test_different_seeds_differ(self):
        trees = {
            tuple(IrregularNetwork(8, 2, 8, seed=s).tree_parent)
            for s in range(6)
        }
        assert len(trees) > 1

    def test_out_of_ports_rejected(self):
        with pytest.raises(TopologyError):
            IrregularNetwork(4, hosts_per_switch=4, ports_per_switch=4, seed=0)

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            IrregularNetwork(0)
        with pytest.raises(TopologyError):
            IrregularNetwork(2, hosts_per_switch=0)


class TestTree:
    def test_root_is_switch_zero(self):
        net = IrregularNetwork(8, 2, 8, seed=1)
        assert net.tree_parent[0] is None
        assert net.parent_port[0] is None

    def test_every_other_switch_has_a_parent(self):
        net = IrregularNetwork(8, 2, 8, seed=1)
        for switch in range(1, 8):
            assert net.tree_parent[switch] is not None
            assert net.parent_port[switch] is not None

    def test_tree_is_connected_and_acyclic(self):
        net = IrregularNetwork(10, 1, 8, seed=2)
        for switch in range(10):
            seen = set()
            node = switch
            while node is not None:
                assert node not in seen, "cycle in routing tree"
                seen.add(node)
                node = net.tree_parent[node]
            assert 0 in seen

    def test_subtree_hosts_of_root_is_everything(self):
        net = IrregularNetwork(6, 3, 10, seed=4)
        assert net.subtree_hosts(0) == list(range(18))

    def test_subtree_partition_at_children(self):
        net = IrregularNetwork(6, 2, 8, seed=4)
        own = {h for h, _ in net.host_ports[0]}
        child_sets = [set(net.subtree_hosts(c)) for c, _ in net.child_ports[0]]
        union = set(own)
        for child_set in child_sets:
            assert union.isdisjoint(child_set)
            union |= child_set
        assert union == set(range(net.num_hosts))

    def test_tree_depth(self):
        net = IrregularNetwork(8, 2, 8, seed=1)
        assert net.tree_depth(0) == 0
        for switch in range(1, 8):
            parent = net.tree_parent[switch]
            assert net.tree_depth(switch) == net.tree_depth(parent) + 1

    def test_host_switch(self):
        net = IrregularNetwork(4, 3, 8, seed=0)
        assert net.host_switch(0) == 0
        assert net.host_switch(11) == 3
        with pytest.raises(TopologyError):
            net.host_switch(12)

    def test_extra_links_added(self):
        plain = IrregularNetwork(8, 1, 8, extra_links=0, seed=9)
        extra = IrregularNetwork(8, 1, 8, extra_links=4, seed=9)
        assert extra.extra_links_added > 0
        assert len(extra.topology.links) > len(plain.topology.links)
