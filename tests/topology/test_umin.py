"""Unidirectional MIN (butterfly) structure."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.graph import Endpoint, NodeKind
from repro.topology.umin import UnidirectionalMin


class TestShape:
    @pytest.mark.parametrize(
        "arity,stages,hosts,switches",
        [(2, 2, 4, 4), (4, 2, 16, 8), (4, 3, 64, 48)],
    )
    def test_counts(self, arity, stages, hosts, switches):
        u = UnidirectionalMin(arity, stages)
        assert u.num_hosts == hosts
        assert u.num_switches == switches

    def test_invalid_shapes(self):
        with pytest.raises(TopologyError):
            UnidirectionalMin(1, 2)
        with pytest.raises(TopologyError):
            UnidirectionalMin(4, 0)


class TestWiring:
    def test_hosts_inject_stage0_and_eject_last(self):
        u = UnidirectionalMin(4, 2)
        for host in range(16):
            out = u.topology.link_from(Endpoint.host(host))
            assert out is not None
            assert u.switch_stage(out.dst.node) == 0
            into = u.topology.link_into(Endpoint.host(host))
            assert into is not None
            assert u.switch_stage(into.src.node) == u.stages - 1

    def test_stage_links_go_forward_only(self):
        u = UnidirectionalMin(4, 3)
        for link in u.topology.iter_switch_links():
            assert (
                u.switch_stage(link.dst.node)
                == u.switch_stage(link.src.node) + 1
            )

    def test_input_ports_have_no_outgoing_links(self):
        u = UnidirectionalMin(4, 2)
        for switch in range(u.num_switches):
            for port in u.input_ports(switch):
                assert u.topology.link_from(Endpoint.switch(switch, port)) is None
            for port in u.output_ports(switch):
                assert u.topology.link_into(Endpoint.switch(switch, port)) is None


class TestDestinationTagRouting:
    def follow(self, u: UnidirectionalMin, source: int, dest: int) -> int:
        """Walk the butterfly with destination-tag port choices."""
        endpoint = u.topology.link_from(Endpoint.host(source)).dst
        for stage in range(u.stages):
            switch = endpoint.node
            assert u.switch_stage(switch) == stage
            digit_position = u.stages - 1 - stage
            digit = dest // (u.arity**digit_position) % u.arity
            out = Endpoint.switch(switch, u.arity + digit)
            endpoint = u.topology.link_from(out).dst
        assert endpoint.kind == NodeKind.HOST
        return endpoint.node

    @pytest.mark.parametrize("arity,stages", [(2, 2), (4, 2), (4, 3)])
    def test_every_pair_routable(self, arity, stages):
        u = UnidirectionalMin(arity, stages)
        for source in range(0, u.num_hosts, max(1, u.num_hosts // 8)):
            for dest in range(u.num_hosts):
                assert self.follow(u, source, dest) == dest
