"""Generic topology container."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.graph import Endpoint, NodeKind, Topology


def star(hosts=2, ports=4):
    """hosts hosts attached bidirectionally to one switch."""
    topo = Topology(num_hosts=hosts, switch_ports=[ports])
    for h in range(hosts):
        topo.add_bidirectional(Endpoint.host(h), Endpoint.switch(0, h))
    return topo


class TestEndpoints:
    def test_host_constructor(self):
        e = Endpoint.host(3)
        assert e.kind == NodeKind.HOST and e.node == 3 and e.port == 0

    def test_switch_constructor(self):
        e = Endpoint.switch(1, 5)
        assert e.kind == NodeKind.SWITCH and e.port == 5

    def test_invalid_kind_rejected(self):
        with pytest.raises(TopologyError):
            Endpoint("router", 0, 0)

    def test_negative_values_rejected(self):
        with pytest.raises(TopologyError):
            Endpoint(NodeKind.HOST, -1, 0)


class TestConstruction:
    def test_duplicate_outgoing_rejected(self):
        topo = Topology(2, [4])
        topo.add_link(Endpoint.host(0), Endpoint.switch(0, 0))
        with pytest.raises(TopologyError):
            topo.add_link(Endpoint.host(0), Endpoint.switch(0, 1))

    def test_duplicate_incoming_rejected(self):
        topo = Topology(2, [4])
        topo.add_link(Endpoint.host(0), Endpoint.switch(0, 0))
        with pytest.raises(TopologyError):
            topo.add_link(Endpoint.host(1), Endpoint.switch(0, 0))

    def test_unknown_nodes_rejected(self):
        topo = Topology(2, [4])
        with pytest.raises(TopologyError):
            topo.add_link(Endpoint.host(5), Endpoint.switch(0, 0))
        with pytest.raises(TopologyError):
            topo.add_link(Endpoint.host(0), Endpoint.switch(1, 0))
        with pytest.raises(TopologyError):
            topo.add_link(Endpoint.host(0), Endpoint.switch(0, 9))

    def test_host_port_must_be_zero(self):
        topo = Topology(2, [4])
        with pytest.raises(TopologyError):
            topo.add_link(Endpoint(NodeKind.HOST, 0, 1), Endpoint.switch(0, 0))

    def test_empty_shapes_rejected(self):
        with pytest.raises(TopologyError):
            Topology(0, [4])
        with pytest.raises(TopologyError):
            Topology(1, [0])


class TestQueries:
    def test_neighbor_and_attachment(self):
        topo = star()
        assert topo.host_attachment(1) == Endpoint.switch(0, 1)
        assert topo.neighbor_of(Endpoint.switch(0, 0)) == Endpoint.host(0)
        assert topo.neighbor_of(Endpoint.switch(0, 3)) is None

    def test_switch_port_peers(self):
        topo = star(hosts=2, ports=4)
        peers = topo.switch_port_peers(0)
        assert peers[0] == Endpoint.host(0)
        assert peers[2] is None

    def test_iter_switch_links(self):
        topo = Topology(2, [4, 4])
        topo.add_bidirectional(Endpoint.host(0), Endpoint.switch(0, 0))
        topo.add_bidirectional(Endpoint.host(1), Endpoint.switch(1, 0))
        topo.add_bidirectional(Endpoint.switch(0, 1), Endpoint.switch(1, 1))
        assert len(list(topo.iter_switch_links())) == 2

    def test_unattached_host_attachment_raises(self):
        topo = Topology(2, [4])
        with pytest.raises(TopologyError):
            topo.host_attachment(0)


class TestValidation:
    def test_valid_star_passes(self):
        star().validate()

    def test_unattached_host_fails(self):
        topo = Topology(2, [4])
        topo.add_bidirectional(Endpoint.host(0), Endpoint.switch(0, 0))
        with pytest.raises(TopologyError):
            topo.validate()

    def test_one_way_switch_port_fails_symmetric(self):
        topo = star()
        topo.add_link(Endpoint.switch(0, 2), Endpoint.switch(0, 3))
        with pytest.raises(TopologyError):
            topo.validate()
        topo.validate(require_symmetric=False)

    def test_asymmetric_host_attachment_fails(self):
        topo = Topology(1, [4])
        topo.add_link(Endpoint.host(0), Endpoint.switch(0, 0))
        topo.add_link(Endpoint.switch(0, 1), Endpoint.host(0))
        with pytest.raises(TopologyError):
            topo.validate()
        topo.validate(require_symmetric=False)
