"""Bidirectional MIN (k-ary n-tree) structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology.bmin import BidirectionalMin
from repro.topology.graph import Endpoint, NodeKind


class TestShape:
    @pytest.mark.parametrize(
        "arity,levels,hosts,switches",
        [(4, 1, 4, 1), (4, 2, 16, 8), (4, 3, 64, 48), (2, 3, 8, 12)],
    )
    def test_counts(self, arity, levels, hosts, switches):
        b = BidirectionalMin(arity, levels)
        assert b.num_hosts == hosts
        assert b.num_switches == switches
        assert b.topology.num_hosts == hosts

    def test_for_hosts(self):
        assert BidirectionalMin.for_hosts(64).levels == 3
        assert BidirectionalMin.for_hosts(16).levels == 2
        with pytest.raises(TopologyError):
            BidirectionalMin.for_hosts(48)

    def test_invalid_shapes(self):
        with pytest.raises(TopologyError):
            BidirectionalMin(1, 2)
        with pytest.raises(TopologyError):
            BidirectionalMin(4, 0)

    def test_validated_on_construction(self):
        # construction runs Topology.validate; absence of exception is the test
        BidirectionalMin(2, 4)


class TestIdentity:
    def test_switch_id_roundtrip(self):
        b = BidirectionalMin(4, 3)
        for level in range(3):
            for index in range(b.switches_per_level):
                sid = b.switch_id(level, index)
                assert b.switch_level(sid) == level
                assert b.switch_index(sid) == index

    def test_bounds_checked(self):
        b = BidirectionalMin(4, 2)
        with pytest.raises(TopologyError):
            b.switch_id(2, 0)
        with pytest.raises(TopologyError):
            b.switch_id(0, 4)
        with pytest.raises(TopologyError):
            b.host_switch(16)

    def test_top_level_has_no_up_ports(self):
        b = BidirectionalMin(4, 2)
        top = b.switch_id(1, 0)
        assert list(b.up_ports(top)) == []
        leaf = b.switch_id(0, 0)
        assert list(b.up_ports(leaf)) == [4, 5, 6, 7]
        assert list(b.down_ports(leaf)) == [0, 1, 2, 3]


class TestWiring:
    def test_hosts_attach_in_blocks(self):
        b = BidirectionalMin(4, 2)
        for host in range(16):
            attach = b.topology.host_attachment(host)
            assert attach.node == b.host_switch(host)
            assert attach.port == host % 4

    def test_up_links_land_on_next_level(self):
        b = BidirectionalMin(4, 3)
        for level in range(2):
            for index in range(b.switches_per_level):
                switch = b.switch_id(level, index)
                for up in b.up_ports(switch):
                    peer = b.topology.neighbor_of(Endpoint.switch(switch, up))
                    assert peer is not None
                    assert peer.kind == NodeKind.SWITCH
                    assert b.switch_level(peer.node) == level + 1
                    # the peer's port must be a down port
                    assert peer.port < b.arity

    def test_host_digits(self):
        b = BidirectionalMin(4, 3)
        assert b.host_digits(0) == (0, 0, 0)
        assert b.host_digits(63) == (3, 3, 3)
        assert b.host_digits(17) == (1, 0, 1)


class TestLcaAndHops:
    def test_same_leaf(self):
        b = BidirectionalMin(4, 3)
        assert b.lca_level([0, 1]) == 0
        assert b.min_switch_hops(0, 1) == 1

    def test_adjacent_subtrees(self):
        b = BidirectionalMin(4, 3)
        assert b.lca_level([0, 5]) == 1
        assert b.min_switch_hops(0, 5) == 3

    def test_opposite_halves(self):
        b = BidirectionalMin(4, 3)
        assert b.lca_level([0, 63]) == 2
        assert b.min_switch_hops(0, 63) == 5

    def test_same_host_zero_hops(self):
        b = BidirectionalMin(4, 2)
        assert b.min_switch_hops(3, 3) == 0

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_lca_level_dominates_pairwise(self, hosts):
        """The group LCA is the max over pairwise LCAs."""
        b = BidirectionalMin(4, 3)
        group = b.lca_level(hosts)
        pairwise = max(
            (b.lca_level([a, c]) for a in hosts for c in hosts), default=0
        )
        assert group == pairwise
