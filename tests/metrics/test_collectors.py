"""Metrics collector: delivery accounting and sampling windows."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, Packet, TrafficClass
from repro.metrics.collectors import MetricsCollector


def make_message(collector, source, dest_ids, payload=8, created=0,
                 traffic_class=TrafficClass.UNICAST, op_id=None, universe=16):
    message = Message(
        message_id=collector.new_message_id(),
        source=source,
        destinations=DestinationSet.from_ids(universe, dest_ids),
        payload_flits=payload,
        traffic_class=traffic_class,
        created_cycle=created,
        op_id=op_id,
    )
    return message


def packet_of(message, sequence=0, is_last=True):
    return Packet(
        packet_id=sequence,
        message=message,
        destinations=message.destinations,
        header_flits=1,
        payload_flits=message.payload_flits,
        sequence=sequence,
        is_last=is_last,
    )


class TestMessageAccounting:
    def test_single_packet_delivery(self):
        collector = MetricsCollector(16)
        message = make_message(collector, 0, [3], created=10)
        collector.register_message(message, expected_packets=1)
        assert collector.outstanding_messages == 1
        done = collector.packet_delivered(packet_of(message), host=3, now=60)
        assert done
        assert collector.outstanding_messages == 0
        stats = collector.classes[TrafficClass.UNICAST]
        assert stats.deliveries == 1
        assert stats.latency.mean == 50

    def test_multi_packet_needs_all_packets(self):
        collector = MetricsCollector(16)
        message = make_message(collector, 0, [3])
        collector.register_message(message, expected_packets=3)
        assert not collector.packet_delivered(packet_of(message, 0), 3, 20)
        assert not collector.packet_delivered(packet_of(message, 1), 3, 30)
        assert collector.packet_delivered(packet_of(message, 2), 3, 40)

    def test_multicast_message_counts_per_destination(self):
        collector = MetricsCollector(16)
        message = make_message(
            collector, 0, [1, 2], traffic_class=TrafficClass.MULTICAST
        )
        collector.register_message(message, 1)
        assert collector.packet_delivered(packet_of(message), 1, 15)
        assert collector.outstanding_messages == 1
        assert collector.packet_delivered(packet_of(message), 2, 25)
        assert collector.outstanding_messages == 0
        assert collector.classes[TrafficClass.MULTICAST].deliveries == 2

    def test_duplicate_delivery_rejected(self):
        collector = MetricsCollector(16)
        message = make_message(collector, 0, [3])
        collector.register_message(message, 1)
        collector.packet_delivered(packet_of(message), 3, 20)
        with pytest.raises(ProtocolError):
            collector.packet_delivered(packet_of(message), 3, 21)

    def test_unregistered_message_rejected(self):
        collector = MetricsCollector(16)
        message = make_message(collector, 0, [3])
        with pytest.raises(ProtocolError):
            collector.packet_delivered(packet_of(message), 3, 0)

    def test_wrong_host_rejected(self):
        collector = MetricsCollector(16)
        message = make_message(collector, 0, [3])
        collector.register_message(message, 1)
        with pytest.raises(ProtocolError):
            collector.packet_delivered(packet_of(message), 5, 0)

    def test_double_registration_rejected(self):
        collector = MetricsCollector(16)
        message = make_message(collector, 0, [3])
        collector.register_message(message, 1)
        with pytest.raises(ProtocolError):
            collector.register_message(message, 1)


class TestSampleWindow:
    def test_out_of_window_not_sampled(self):
        collector = MetricsCollector(16)
        collector.set_sample_window(100, 200)
        early = make_message(collector, 0, [3], created=50)
        collector.register_message(early, 1)
        collector.packet_delivered(packet_of(early), 3, 140)
        inside = make_message(collector, 0, [4], created=150)
        collector.register_message(inside, 1)
        collector.packet_delivered(packet_of(inside), 4, 190)
        late = make_message(collector, 0, [5], created=250)
        collector.register_message(late, 1)
        collector.packet_delivered(packet_of(late), 5, 260)
        stats = collector.classes[TrafficClass.UNICAST]
        assert stats.deliveries == 1
        assert stats.latency.mean == 40

    def test_window_applies_to_operations(self):
        collector = MetricsCollector(16)
        collector.set_sample_window(100)
        op = collector.register_operation(
            0, DestinationSet.from_ids(16, [1]), 8, "hardware",
            created_cycle=50,
        )
        message = make_message(
            collector, 0, [1], created=50,
            traffic_class=TrafficClass.MULTICAST, op_id=op.op_id,
        )
        collector.register_message(message, 1)
        collector.packet_delivered(packet_of(message), 1, 120)
        assert op.completed_cycle == 120
        assert collector.op_last_latency.count == 0  # created before window


class TestOperations:
    def make_op(self, collector, dest_ids=(1, 2, 3), created=0):
        return collector.register_operation(
            0, DestinationSet.from_ids(16, dest_ids), 8, "hardware", created
        )

    def test_completion_and_latencies(self):
        collector = MetricsCollector(16)
        op = self.make_op(collector, (1, 2), created=10)
        assert not op.record_arrival(1, 30)
        assert op.record_arrival(2, 50)
        assert op.last_latency == 40
        assert op.average_latency == pytest.approx(30.0)

    def test_duplicate_arrival_rejected(self):
        collector = MetricsCollector(16)
        op = self.make_op(collector)
        op.record_arrival(1, 5)
        with pytest.raises(ProtocolError):
            op.record_arrival(1, 6)

    def test_non_member_arrival_rejected(self):
        collector = MetricsCollector(16)
        op = self.make_op(collector)
        with pytest.raises(ProtocolError):
            op.record_arrival(9, 5)

    def test_outstanding_operations(self):
        collector = MetricsCollector(16)
        op = self.make_op(collector, (1,))
        assert collector.outstanding_operations == 1
        op.record_arrival(1, 5)
        assert collector.outstanding_operations == 0
        assert collector.completed_operations() == [op]

    def test_operation_lookup(self):
        collector = MetricsCollector(16)
        op = self.make_op(collector)
        assert collector.operation(op.op_id) is op
        assert collector.operation(999) is None

    def test_incomplete_latencies_are_none(self):
        collector = MetricsCollector(16)
        op = self.make_op(collector)
        assert op.last_latency is None
        assert op.average_latency is None


class TestThroughput:
    def test_flits_per_cycle(self):
        collector = MetricsCollector(16)
        for i, dest in enumerate((1, 2, 3, 4)):
            message = make_message(collector, 0, [dest], payload=10)
            collector.register_message(message, 1)
            collector.packet_delivered(packet_of(message), dest, 50 + i)
        assert collector.throughput_flits_per_cycle(
            TrafficClass.UNICAST, elapsed_cycles=100
        ) == pytest.approx(0.4)

    def test_zero_elapsed(self):
        collector = MetricsCollector(16)
        assert collector.throughput_flits_per_cycle(
            TrafficClass.UNICAST, 0
        ) == 0.0


class TestArrivalSkew:
    def test_incomplete_is_none(self):
        collector = MetricsCollector(16)
        op = collector.register_operation(
            0, DestinationSet.from_ids(16, [1, 2]), 8, "hardware", 0
        )
        assert op.arrival_skew is None

    def test_skew_is_arrival_spread(self):
        collector = MetricsCollector(16)
        op = collector.register_operation(
            0, DestinationSet.from_ids(16, [1, 2, 3]), 8, "hardware", 0
        )
        op.record_arrival(1, 50)
        op.record_arrival(2, 70)
        op.record_arrival(3, 90)
        assert op.arrival_skew == 40

    def test_simultaneous_arrivals_zero_skew(self):
        collector = MetricsCollector(16)
        op = collector.register_operation(
            0, DestinationSet.from_ids(16, [1, 2]), 8, "hardware", 0
        )
        op.record_arrival(1, 60)
        op.record_arrival(2, 60)
        assert op.arrival_skew == 0
