"""Post-run network probes."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.metrics.probe import (
    central_buffer_occupancy,
    central_buffer_occupancy_by_level,
    link_utilisation,
)
from repro.network.builder import build_network
from repro.network.config import SimulationConfig, TopologyKind
from repro.network.simulation import run_workload
from repro.traffic.multicast import MultipleMulticastBurst


def run_burst(**overrides):
    config = SimulationConfig(num_hosts=16, **overrides)
    network = build_network(config)
    workload = MultipleMulticastBurst(
        num_multicasts=4, degree=5, payload_flits=32,
        scheme=MulticastScheme.HARDWARE,
    )
    run_workload(network, workload, max_cycles=60_000)
    return network


class TestCentralBufferOccupancy:
    def test_fresh_network_is_empty(self):
        network = build_network(SimulationConfig(num_hosts=16))
        stats = central_buffer_occupancy(network)
        assert stats["mean_chunks"] == 0.0
        assert stats["peak_chunks"] == 0.0

    def test_traffic_raises_peak(self):
        network = run_burst()
        stats = central_buffer_occupancy(network)
        assert stats["peak_chunks"] > 0
        assert 0 < stats["mean_chunks"] <= stats["peak_chunks"]

    def test_by_level_covers_all_levels(self):
        network = run_burst()
        by_level = central_buffer_occupancy_by_level(network)
        assert sorted(by_level) == [0, 1]
        assert all(value >= 0 for value in by_level.values())

    def test_by_level_rejects_non_bmin(self):
        config = SimulationConfig(
            num_hosts=16,
            topology=TopologyKind.IRREGULAR,
            irregular_switches=8,
        )
        network = build_network(config)
        with pytest.raises(TypeError):
            central_buffer_occupancy_by_level(network)

    def test_ib_network_reports_zero(self):
        config = SimulationConfig(
            num_hosts=16,
            switch_architecture=SwitchArchitecture.INPUT_BUFFER,
        )
        network = build_network(config)
        stats = central_buffer_occupancy(network)
        assert stats == {"mean_chunks": 0.0, "peak_chunks": 0.0}

    def test_by_level_rejects_non_central_buffer_switches(self):
        config = SimulationConfig(
            num_hosts=16,
            switch_architecture=SwitchArchitecture.INPUT_BUFFER,
        )
        network = build_network(config)
        with pytest.raises(TypeError, match="central-buffer"):
            central_buffer_occupancy_by_level(network)


class TestLinkUtilisation:
    def test_idle_network(self):
        network = build_network(SimulationConfig(num_hosts=16))
        network.sim.run(100)
        stats = link_utilisation(network, 100)
        assert stats["mean"] == 0.0

    def test_traffic_registers(self):
        network = run_burst()
        stats = link_utilisation(network, network.sim.now)
        assert 0 < stats["mean"] < 1.0
        assert stats["peak"] <= 1.0

    def test_zero_elapsed(self):
        network = build_network(SimulationConfig(num_hosts=16))
        assert link_utilisation(network, 0) == {"mean": 0.0, "peak": 0.0}

    def test_empty_network_has_no_links(self):
        # a network with no links at all must not divide by zero
        empty = SimpleNamespace(links=[])
        assert link_utilisation(empty, 100) == {"mean": 0.0, "peak": 0.0}
