"""Report table formatting."""

from __future__ import annotations

import io

import pytest

from repro.metrics.report import Table, format_table


class TestTable:
    def make(self):
        table = Table("Latency vs load", ["load", "latency", "scheme"])
        table.add_row(0.1, 91.25, "cb-hw")
        table.add_row(0.2, 135, "cb-hw")
        table.add_row(None, 1.0, "sw")
        return table

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "Latency vs load" in text
        assert "91.25" in text
        assert "cb-hw" in text

    def test_float_formatting(self):
        table = self.make()
        assert table.rows[0][0] == "0.10"
        assert table.rows[1][1] == "135"
        assert table.rows[2][0] == "-"

    def test_wrong_cell_count_rejected(self):
        with pytest.raises(ValueError):
            self.make().add_row(1, 2)

    def test_csv(self):
        csv = self.make().to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "load,latency,scheme"
        assert len(lines) == 4

    def test_write_to_stream(self):
        stream = io.StringIO()
        self.make().write(stream)
        assert "Latency vs load" in stream.getvalue()

    def test_alignment(self):
        text = format_table("t", ["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.split("\n")
        # all data lines equal length
        assert len({len(line) for line in lines[2:]}) == 1
