"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.metrics.ascii_chart import render_chart


def sample_series():
    return {
        "cb": [(0.1, 90.0), (0.3, 120.0), (0.5, 170.0)],
        "ib": [(0.1, 95.0), (0.3, 130.0), (0.5, 240.0)],
    }


class TestRenderChart:
    def test_contains_marks_and_legend(self):
        text = render_chart(sample_series(), title="latency vs load")
        assert "latency vs load" in text
        assert "*=cb" in text
        assert "o=ib" in text
        assert "*" in text and "o" in text

    def test_axis_annotations(self):
        text = render_chart(sample_series(), x_label="load",
                            y_label="cycles")
        assert "0.1" in text
        assert "0.5" in text
        assert "240" in text
        assert "load" in text
        assert "cycles" in text

    def test_single_point_series(self):
        text = render_chart({"only": [(1.0, 5.0)]})
        assert "*" in text

    def test_dimensions(self):
        text = render_chart(sample_series(), width=30, height=6)
        lines = text.split("\n")
        chart_rows = [line for line in lines if "|" in line]
        assert len(chart_rows) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_chart({})
        with pytest.raises(ValueError):
            render_chart({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_chart(sample_series(), width=5)

    def test_extremes_land_on_edges(self):
        text = render_chart({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        rows = [line.split("|", 1)[1] for line in text.split("\n")
                if "|" in line]
        assert rows[0].rstrip().endswith("*")     # max at top right
        assert rows[-1].startswith("*")           # min at bottom left
