"""Stateful property test: the link protocol under arbitrary schedules.

Hypothesis drives a random interleaving of sends, receives, credit
returns and clock advances against a model of what the link must do:
deliver every flit exactly once, in order, after its latency, and never
let the sender overrun the receiver's declared buffer.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.switches.link import Link

DEPTH = 4
LATENCY = 2


def flit_stream(count=512):
    destinations = DestinationSet.single(4, 1)
    message = Message(0, 0, destinations, count - 1, TrafficClass.UNICAST, 0)
    packet = Packet(0, message, destinations, 1, count - 1)
    worm = Worm.root(packet)
    return [Flit(worm, i) for i in range(count)]


class LinkProtocol(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.link = Link("dut", latency=LATENCY, credit_latency=LATENCY)
        self.link.set_credits(DEPTH)
        self.now = 0
        self.flits = flit_stream()
        self.sent = 0
        self.received = 0
        self.held_by_receiver = 0

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    @precondition(lambda self: self.link.can_send(self.now)
                  and self.sent < len(self.flits))
    @rule()
    def send(self):
        self.link.send(self.now, self.flits[self.sent])
        self.sent += 1

    @rule()
    def receive(self):
        arrived = self.link.receive(self.now)
        for flit in arrived:
            assert flit.index == self.received, "delivery out of order"
            self.received += 1
            self.held_by_receiver += 1

    @precondition(lambda self: self.held_by_receiver > 0)
    @rule()
    def free_slot(self):
        self.link.return_credit(self.now)
        self.held_by_receiver -= 1

    @rule(ticks=st.integers(1, 5))
    def advance(self, ticks):
        self.now += ticks

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def credits_conserved(self):
        accounted = self.link.accounted_credits()
        assert accounted + self.held_by_receiver == DEPTH

    @invariant()
    def no_overrun(self):
        # flits the receiver has not freed can never exceed the buffer
        unfreed = self.sent - self.received + self.held_by_receiver
        assert unfreed <= DEPTH

    @invariant()
    def nothing_lost(self):
        assert self.received + self.link.in_flight() <= self.sent


LinkProtocolTest = LinkProtocol.TestCase
LinkProtocolTest.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)
