"""Link: latency, credits, protocol enforcement."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.switches.link import Link


def flits(count=8, universe=4):
    size = max(count, 2)
    destinations = DestinationSet.single(universe, 1)
    message = Message(0, 0, destinations, size - 1, TrafficClass.UNICAST, 0)
    packet = Packet(0, message, destinations, 1, size - 1)
    worm = Worm.root(packet)
    return [Flit(worm, i) for i in range(count)]


def make_link(depth=4, latency=1, credit_latency=None):
    link = Link("test", latency=latency, credit_latency=credit_latency)
    link.set_credits(depth)
    return link


class TestDelivery:
    def test_arrives_after_latency(self):
        link = make_link(latency=3)
        f = flits(1)[0]
        link.send(0, f)
        assert link.receive(1) == []
        assert link.receive(2) == []
        assert link.receive(3) == [f]

    def test_order_preserved(self):
        link = make_link(depth=4)
        fs = flits(3)
        for cycle, f in enumerate(fs):
            link.send(cycle, f)
        assert link.receive(10) == fs

    def test_one_flit_per_cycle(self):
        link = make_link(depth=4)
        fs = flits(2)
        link.send(0, fs[0])
        with pytest.raises(ProtocolError):
            link.send(0, fs[1])

    def test_receive_does_not_deliver_early(self):
        link = make_link(latency=2)
        f = flits(1)[0]
        link.send(5, f)
        assert link.receive(6) == []
        assert link.receive(7) == [f]


class TestCredits:
    def test_send_consumes_credit(self):
        link = make_link(depth=2)
        fs = flits(3)
        link.send(0, fs[0])
        link.send(1, fs[1])
        assert not link.can_send(2)
        with pytest.raises(ProtocolError):
            link.send(2, fs[2])

    def test_credit_returns_after_latency(self):
        link = make_link(depth=1, latency=1, credit_latency=2)
        fs = flits(2)
        link.send(0, fs[0])
        link.receive(1)
        link.return_credit(1)
        assert not link.can_send(2)
        assert link.can_send(3)
        link.send(3, fs[1])

    def test_credits_must_be_declared_once(self):
        link = Link("x")
        with pytest.raises(ProtocolError):
            link.credits(0)
        link.set_credits(2)
        with pytest.raises(ProtocolError):
            link.set_credits(2)

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Link("x", latency=0)
        with pytest.raises(ConfigurationError):
            Link("x", credit_latency=0)
        with pytest.raises(ConfigurationError):
            make_link(depth=0)
        with pytest.raises(ValueError):
            make_link().return_credit(0, count=0)

    def test_can_send_false_same_cycle_after_send(self):
        link = make_link(depth=4)
        link.send(0, flits(1)[0])
        assert not link.can_send(0)
        assert link.can_send(1)


class TestConservation:
    def test_credits_conserved_through_traffic(self):
        depth = 3
        link = make_link(depth=depth, latency=2, credit_latency=2)
        fs = flits(12)
        held_by_receiver = 0
        sent = 0
        for cycle in range(60):
            arrived = link.receive(cycle)
            held_by_receiver += len(arrived)
            # receiver frees one slot every other cycle
            if held_by_receiver and cycle % 2 == 0:
                link.return_credit(cycle)
                held_by_receiver -= 1
            if sent < len(fs) and link.can_send(cycle):
                link.send(cycle, fs[sent])
                sent += 1
            assert link.accounted_credits() + held_by_receiver == depth
        assert sent == len(fs)

    def test_flits_sent_counter(self):
        link = make_link(depth=8)
        for cycle, f in enumerate(flits(5)):
            link.send(cycle, f)
        assert link.flits_sent == 5
