"""Central-buffer switch behaviour on a single-switch micro network."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.flits.packet import TrafficClass
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.sim.trace import Tracer


def one_switch_config(**overrides):
    """8 hosts on one 8-port switch, zero software overhead, checks on."""
    defaults = dict(
        num_hosts=8,
        arity=8,
        switch_architecture=SwitchArchitecture.CENTRAL_BUFFER,
        max_packet_payload_flits=64,
        sw_send_overhead=0,
        sw_recv_overhead=0,
        self_check=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def build(config, trace=False):
    tracer = Tracer(enabled=trace)
    network = build_network(config, tracer=tracer)
    return network, tracer


def schedule_unicast(network, cycle, source, dest, payload):
    network.sim.schedule_at(
        cycle, lambda: network.nodes[source].post_unicast(dest, payload)
    )


def schedule_multicast(network, cycle, source, dest_ids, payload,
                       scheme=MulticastScheme.HARDWARE):
    dset = DestinationSet.from_ids(network.num_hosts, dest_ids)
    network.sim.schedule_at(
        cycle,
        lambda: network.nodes[source].post_multicast(dset, payload, scheme),
    )


def run_to_quiescence(network, max_cycles=20_000):
    network.sim.run_until(
        lambda: network.collector.outstanding_messages == 0
        and network.collector.messages_created > 0,
        max_cycles=max_cycles,
        stall_limit=5_000,
    )


class TestUnicastPaths:
    def test_idle_output_uses_bypass(self):
        network, tracer = build(one_switch_config(), trace=True)
        schedule_unicast(network, 0, 0, 5, payload=8)
        run_to_quiescence(network)
        counts = tracer.counts()
        assert counts.get("bypass", 0) == 1
        assert "queue_cb" not in counts

    def test_busy_output_queues_in_central_buffer(self):
        network, tracer = build(one_switch_config(), trace=True)
        schedule_unicast(network, 0, 0, 5, payload=64)
        schedule_unicast(network, 10, 1, 5, payload=64)
        run_to_quiescence(network)
        counts = tracer.counts()
        assert counts.get("bypass") == 1
        assert counts.get("queue_cb") == 1

    def test_deliveries_in_arrival_order_per_output(self):
        network, _ = build(one_switch_config())
        schedule_unicast(network, 0, 0, 5, payload=64)
        schedule_unicast(network, 10, 1, 5, payload=8)
        run_to_quiescence(network)
        stats = network.collector.classes[TrafficClass.UNICAST]
        assert stats.deliveries == 2

    def test_switch_returns_to_idle(self):
        network, _ = build(one_switch_config())
        schedule_unicast(network, 0, 0, 5, payload=16)
        schedule_unicast(network, 3, 2, 6, payload=16)
        run_to_quiescence(network)
        network.sim.run(10)
        (switch,) = network.switches
        assert switch.idle()
        assert switch.pool.used_chunks == 0

    def test_non_head_packet_not_blocked_by_busy_output(self):
        """The CB design drains a blocked packet out of the input FIFO,
        freeing the path for the packet behind it."""
        network, _ = build(one_switch_config())
        schedule_unicast(network, 0, 0, 5, payload=120)  # occupies output 5
        schedule_unicast(network, 5, 1, 5, payload=120)  # queues in CB
        schedule_unicast(network, 6, 1, 6, payload=8)    # behind it, free output
        run_to_quiescence(network)
        # The small packet must finish long before the queued long one.
        ops = network.collector.classes[TrafficClass.UNICAST]
        assert ops.deliveries == 3


class TestMulticastReplication:
    def test_worm_delivered_to_every_destination(self):
        network, tracer = build(one_switch_config(), trace=True)
        dests = [1, 2, 4, 6, 7]
        schedule_multicast(network, 0, 0, dests, payload=16)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        assert sorted(op.arrival_cycles) == dests
        assert tracer.counts().get("admit_multidest") == 1

    def test_each_destination_gets_whole_packet(self):
        network, _ = build(one_switch_config())
        dests = [2, 3, 4]
        schedule_multicast(network, 0, 1, dests, payload=16)
        run_to_quiescence(network)
        header = network.encoding.header_flits(
            DestinationSet.from_ids(8, dests)
        )
        for dest in dests:
            assert network.interfaces[dest].flits_ejected == 16 + header

    def test_chunks_fully_released_after_drain(self):
        network, _ = build(one_switch_config())
        schedule_multicast(network, 0, 0, [1, 2, 3, 4, 5, 6, 7], payload=64)
        run_to_quiescence(network)
        (switch,) = network.switches
        assert switch.pool.free_chunks == switch.pool.capacity_chunks

    def test_slow_branch_does_not_block_fast_branches(self):
        """Asynchronous replication: one congested destination must not
        delay the others by more than queueing on its own link."""
        network, _ = build(one_switch_config())
        # keep output 7 busy with a long unicast first
        schedule_unicast(network, 0, 6, 7, payload=200)
        schedule_multicast(network, 5, 0, [1, 2, 7], payload=16)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        fast_arrivals = [op.arrival_cycles[d] for d in (1, 2)]
        slow_arrival = op.arrival_cycles[7]
        assert max(fast_arrivals) < slow_arrival

    def test_two_concurrent_multicasts_complete(self):
        network, _ = build(one_switch_config())
        schedule_multicast(network, 0, 0, [2, 3, 4], payload=32)
        schedule_multicast(network, 0, 1, [5, 6, 7], payload=32)
        run_to_quiescence(network)
        assert len(network.collector.completed_operations()) == 2

    def test_overlapping_multicasts_share_outputs(self):
        network, _ = build(one_switch_config())
        schedule_multicast(network, 0, 0, [3, 4, 5], payload=32)
        schedule_multicast(network, 0, 1, [3, 4, 5], payload=32)
        run_to_quiescence(network)
        ops = network.collector.completed_operations()
        assert len(ops) == 2
        for op in ops:
            assert sorted(op.arrival_cycles) == [3, 4, 5]


class TestBandwidthLimits:
    @pytest.mark.parametrize("bandwidth", [1, 2, 4])
    def test_reduced_cb_bandwidth_still_correct(self, bandwidth):
        network, _ = build(
            one_switch_config(
                cb_write_bandwidth=bandwidth, cb_read_bandwidth=bandwidth
            )
        )
        schedule_multicast(network, 0, 0, [1, 2, 3, 4, 5], payload=32)
        schedule_unicast(network, 0, 6, 7, payload=32)
        run_to_quiescence(network)
        assert len(network.collector.completed_operations()) == 1

    def test_lower_bandwidth_is_slower(self):
        def completion(bandwidth):
            network, _ = build(
                one_switch_config(
                    cb_write_bandwidth=bandwidth,
                    cb_read_bandwidth=bandwidth,
                )
            )
            # two multicasts through the CB to make bandwidth matter
            schedule_multicast(network, 0, 0, [2, 3, 4, 5], payload=64)
            schedule_multicast(network, 0, 1, [2, 3, 4, 5], payload=64)
            run_to_quiescence(network)
            ops = network.collector.completed_operations()
            return max(op.completed_cycle for op in ops)

        assert completion(1) > completion(8)


class TestBackpressure:
    def test_tiny_central_buffer_rejected_by_config(self):
        with pytest.raises(Exception):
            one_switch_config(
                central_buffer_flits=64, max_packet_payload_flits=128
            ).validate()

    def test_quota_only_buffer_multicasts_complete(self):
        # 8 hosts: max packet = 2 + 64 = 66 flits = 9 chunks; 16 ports
        # (radix 16 switch for arity 8) * 9 chunks * 8 = 1152 flits.
        network, _ = build(
            one_switch_config(
                central_buffer_flits=1152,
                chunk_flits=8,
                max_packet_payload_flits=64,
            )
        )
        for source in range(4):
            schedule_multicast(
                network, 0, source, [5, 6, 7], payload=64
            )
        run_to_quiescence(network)
        assert len(network.collector.completed_operations()) == 4

    def test_back_to_back_multidest_same_input_serialize(self):
        """Two multicasts from one host share that input's quota: the
        second is admitted only as the first drains."""
        network, tracer = build(
            one_switch_config(
                central_buffer_flits=1152,
                chunk_flits=8,
                max_packet_payload_flits=64,
            ),
            trace=True,
        )
        schedule_multicast(network, 0, 0, [3, 4, 5], payload=64)
        schedule_multicast(network, 1, 0, [3, 4, 5], payload=64)
        run_to_quiescence(network)
        assert len(network.collector.completed_operations()) == 2


class TestPipelineTiming:
    def test_cut_through_starts_before_tail_arrives(self):
        """Wormhole: the head leaves the switch while the tail is still
        arriving (latency far below store-and-forward)."""
        network, _ = build(one_switch_config())
        schedule_unicast(network, 0, 0, 5, payload=60)
        run_to_quiescence(network)
        stats = network.collector.classes[TrafficClass.UNICAST]
        # store-and-forward would be ~2x the serialization delay
        packet_flits = 61
        assert stats.latency.mean < 1.6 * packet_flits

    def test_routing_delay_adds_per_switch_latency(self):
        def latency(routing_delay):
            network, _ = build(one_switch_config(routing_delay=routing_delay))
            schedule_unicast(network, 0, 0, 5, payload=16)
            run_to_quiescence(network)
            return network.collector.classes[TrafficClass.UNICAST].latency.mean

        assert latency(10) == latency(0) + 10

    def test_link_latency_adds_per_hop(self):
        """A tiny packet (no credit-throttling effects) pays exactly one
        extra cycle per link per unit of link latency."""
        def latency(link_latency):
            config = SimulationConfig(
                num_hosts=16, link_latency=link_latency,
                sw_send_overhead=0, self_check=True,
            )
            network = build_network(config)
            # 0 -> 15 crosses 3 switches, 4 links
            schedule_unicast(network, 0, 0, 15, payload=1)
            run_to_quiescence(network)
            return network.collector.classes[TrafficClass.UNICAST].latency.mean

        assert latency(3) == latency(1) + 2 * 4

    def test_long_links_throttle_long_packets_at_the_ni(self):
        """With 3-cycle links the NI's 4-credit receive FIFO cannot cover
        the credit round trip, so long packets serialize slower — the
        buffering-vs-latency coupling real adapters face."""
        def latency(link_latency, payload):
            config = SimulationConfig(
                num_hosts=16, link_latency=link_latency, sw_send_overhead=0,
            )
            network = build_network(config)
            schedule_unicast(network, 0, 0, 15, payload=payload)
            run_to_quiescence(network)
            return network.collector.classes[TrafficClass.UNICAST].latency.mean

        head_delta = latency(3, 1) - latency(1, 1)
        long_delta = latency(3, 40) - latency(1, 40)
        assert long_delta > head_delta
