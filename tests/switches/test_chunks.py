"""Central buffer pool and stored packets: allocation invariants.

The pool guarantees each input port one maximum packet of chunks (the
deadlock-freedom quota) and shares the rest dynamically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BufferError_, ConfigurationError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.switches.chunks import CentralBufferPool, StoredPacket


def make_worm(size=16, universe=8):
    destinations = DestinationSet.from_ids(universe, [1, 2])
    message = Message(0, 0, destinations, size - 1, TrafficClass.MULTICAST, 0)
    packet = Packet(0, message, destinations, 1, size - 1)
    return Worm.root(packet)


def make_pool(capacity=256, chunk=8, inputs=4, quota=4):
    return CentralBufferPool(capacity, chunk, inputs, quota)


class TestPoolConstruction:
    def test_capacity_split(self):
        pool = make_pool(capacity=256, chunk=8, inputs=4, quota=4)
        assert pool.capacity_chunks == 32
        assert pool.free_shared == 32 - 16
        assert pool.free_quota == [4, 4, 4, 4]
        assert pool.free_chunks == 32

    def test_capacity_must_cover_quotas(self):
        with pytest.raises(ConfigurationError, match="deadlock"):
            make_pool(capacity=64, chunk=8, inputs=4, quota=4)

    def test_capacity_must_be_whole_chunks(self):
        with pytest.raises(ConfigurationError):
            CentralBufferPool(65, 8, 1, 1)
        with pytest.raises(ConfigurationError):
            CentralBufferPool(4, 8, 1, 1)
        with pytest.raises(ConfigurationError):
            CentralBufferPool(8, 0, 1, 1)
        with pytest.raises(ConfigurationError):
            CentralBufferPool(8, 8, 0, 1)

    def test_chunks_for_rounds_up(self):
        pool = make_pool()
        assert pool.chunks_for(1) == 1
        assert pool.chunks_for(8) == 1
        assert pool.chunks_for(9) == 2


class TestTakeAndGiveBack:
    def test_shared_taken_first(self):
        pool = make_pool(capacity=256, chunk=8, inputs=4, quota=4)
        charge = pool.try_take(0, 10, now=0)
        assert charge.shared == 10
        assert charge.quota == 0
        assert pool.free_quota[0] == 4

    def test_quota_covers_overflow(self):
        pool = make_pool(capacity=128, chunk=8, inputs=4, quota=4)
        # shared region is empty: 16 chunks = 4 inputs * 4 quota
        charge = pool.try_take(1, 3, now=0)
        assert charge.shared == 0
        assert charge.quota == 3
        assert pool.free_quota[1] == 1

    def test_refusal_when_own_quota_exhausted(self):
        pool = make_pool(capacity=128, chunk=8, inputs=4, quota=4)
        assert pool.try_take(0, 4, now=0) is not None
        assert pool.try_take(0, 1, now=0) is None
        # other inputs unaffected
        assert pool.try_take(1, 4, now=0) is not None

    def test_give_back_refills_quota_first(self):
        pool = make_pool(capacity=160, chunk=8, inputs=4, quota=4)
        # shared = 4: take 6 -> 4 shared + 2 quota
        charge = pool.try_take(2, 6, now=0)
        assert (charge.shared, charge.quota) == (4, 2)
        pool.give_back(charge, 3, now=1)
        assert pool.free_quota[2] == 4
        assert pool.free_shared == 1
        pool.give_back(charge, 3, now=2)
        assert pool.free_shared == 4

    def test_over_release_rejected(self):
        pool = make_pool()
        charge = pool.try_take(0, 2, now=0)
        with pytest.raises(BufferError_):
            pool.give_back(charge, 3, now=0)

    def test_occupancy_tracked(self):
        pool = make_pool(capacity=256, chunk=8, inputs=4, quota=4)
        charge = pool.try_take(0, 8, now=0)
        pool.give_back(charge, 8, now=10)
        assert pool.occupancy.average(20) == pytest.approx(4.0)
        assert pool.occupancy.peak == 8


class TestAdmission:
    def test_admit_succeeds_with_space(self):
        pool = make_pool()
        stored = StoredPacket(pool, 0, total_flits=16, reserve_all=True)
        assert stored.try_admit(0)
        assert stored.chunks_held == 2

    def test_admit_idempotent(self):
        pool = make_pool()
        stored = StoredPacket(pool, 0, 16, reserve_all=True)
        assert stored.try_admit(0)
        assert stored.try_admit(1)
        assert stored.chunks_held == 2

    def test_admit_waits_for_own_quota(self):
        pool = make_pool(capacity=128, chunk=8, inputs=4, quota=4)
        first = StoredPacket(pool, 0, 32, reserve_all=True)  # 4 chunks
        assert first.try_admit(0)
        second = StoredPacket(pool, 0, 32, reserve_all=True)
        assert not second.try_admit(0)
        # a different input's packet is not blocked
        other = StoredPacket(pool, 1, 32, reserve_all=True)
        assert other.try_admit(0)

    def test_admit_on_incremental_packet_rejected(self):
        pool = make_pool()
        stored = StoredPacket(pool, 0, 16, reserve_all=False)
        with pytest.raises(BufferError_):
            stored.try_admit(0)


class TestStoredPacket:
    def admitted(self, pool, total, input_port=0):
        stored = StoredPacket(pool, input_port, total, reserve_all=True)
        assert stored.try_admit(0)
        return stored

    def test_admitted_packet_always_writable(self):
        pool = make_pool()
        stored = self.admitted(pool, 16)
        for _ in range(16):
            assert stored.ensure_write_space(now=0)
            stored.write_flit()
        assert stored.fully_written

    def test_incremental_packet_allocates_per_chunk(self):
        pool = make_pool(capacity=128, chunk=8, inputs=4, quota=4)
        stored = StoredPacket(pool, 0, 16, reserve_all=False)
        assert stored.ensure_write_space(0)
        assert pool.free_quota[0] == 3
        for _ in range(8):
            stored.write_flit()
        assert stored.ensure_write_space(0)
        assert pool.free_quota[0] == 2

    def test_incremental_stalls_when_quota_exhausted(self):
        pool = make_pool(capacity=128, chunk=8, inputs=4, quota=4)
        hog = self.admitted(pool, 32)  # takes the whole input-0 quota
        stalled = StoredPacket(pool, 0, 8, reserve_all=False)
        assert not stalled.ensure_write_space(0)

    def test_write_past_end_rejected(self):
        pool = make_pool()
        stored = self.admitted(pool, 2)
        stored.write_flit()
        stored.write_flit()
        with pytest.raises(BufferError_):
            stored.ensure_write_space(0)

    def test_single_branch_lifecycle_frees_everything(self):
        pool = make_pool()
        stored = self.admitted(pool, 12)
        cursor = stored.add_branch(make_worm(12), out_port=3)
        for _ in range(12):
            stored.ensure_write_space(0)
            stored.write_flit()
        for _ in range(12):
            assert stored.readable(cursor)
            stored.branch_read(cursor, now=0)
        assert stored.finished
        assert pool.free_chunks == pool.capacity_chunks

    def test_read_cannot_pass_write(self):
        pool = make_pool()
        stored = self.admitted(pool, 8)
        cursor = stored.add_branch(make_worm(8), 0)
        assert not stored.readable(cursor)
        with pytest.raises(BufferError_):
            stored.branch_read(cursor, now=0)

    def test_chunks_freed_by_slowest_branch(self):
        pool = make_pool()
        stored = self.admitted(pool, 16)
        fast = stored.add_branch(make_worm(16), 0)
        slow = stored.add_branch(make_worm(16), 1)
        for _ in range(16):
            stored.ensure_write_space(0)
            stored.write_flit()
        for _ in range(16):
            stored.branch_read(fast, 0)
        assert pool.free_chunks == pool.capacity_chunks - 2
        for _ in range(8):
            stored.branch_read(slow, 0)
        assert pool.free_chunks == pool.capacity_chunks - 1
        for _ in range(8):
            stored.branch_read(slow, 0)
        assert stored.finished
        assert pool.free_chunks == pool.capacity_chunks

    @given(
        total=st.integers(1, 64),
        branches=st.integers(1, 6),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_interleaving_conserves_chunks(self, total, branches, seed):
        """Any write/read interleaving frees exactly what was reserved."""
        import random

        rng = random.Random(seed)
        pool = make_pool(capacity=256, chunk=8, inputs=4, quota=8)
        stored = StoredPacket(pool, seed % 4, total, reserve_all=True)
        assert stored.try_admit(0)
        cursors = [
            stored.add_branch(make_worm(max(total, 2)), port)
            for port in range(branches)
        ]
        now = 0
        while not stored.finished:
            now += 1
            choices = []
            if stored.flits_written < total:
                choices.append("write")
            choices.extend(
                ("read", c) for c in cursors if stored.readable(c)
            )
            action = rng.choice(choices)
            if action == "write":
                assert stored.ensure_write_space(now)
                stored.write_flit()
            else:
                stored.branch_read(action[1], now)
            assert 0 <= pool.free_chunks <= pool.capacity_chunks
        assert pool.free_chunks == pool.capacity_chunks


class TestPoolStateful:
    """Multi-packet, multi-input pool accounting under random schedules."""

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=40, deadline=None)
    def test_many_packets_conserve_capacity(self, seed):
        import random

        rng = random.Random(seed)
        pool = make_pool(capacity=512, chunk=8, inputs=4, quota=8)
        live = []  # (stored, cursors)
        for _ in range(120):
            action = rng.random()
            if action < 0.35 and len(live) < 8:
                input_port = rng.randrange(4)
                total = rng.randrange(1, 60)
                stored = StoredPacket(
                    pool, input_port, total, reserve_all=True
                )
                if stored.try_admit(0):
                    cursors = [
                        stored.add_branch(make_worm(max(total, 2)), p)
                        for p in range(rng.randrange(1, 4))
                    ]
                    live.append((stored, cursors))
            elif live:
                stored, cursors = rng.choice(live)
                if stored.flits_written < stored.total_flits and rng.random() < 0.6:
                    assert stored.ensure_write_space(0)
                    stored.write_flit()
                else:
                    readable = [c for c in cursors if stored.readable(c)]
                    if readable:
                        stored.branch_read(rng.choice(readable), 0)
                if stored.finished:
                    live.remove((stored, cursors))
            used = sum(s.chunks_held for s, _ in live)
            assert pool.used_chunks == used, "pool accounting drifted"
            assert 0 <= pool.free_shared
            assert all(0 <= q <= pool.quota_chunks for q in pool.free_quota)
        # drain everything still live
        for stored, cursors in live:
            while stored.flits_written < stored.total_flits:
                assert stored.ensure_write_space(0)
                stored.write_flit()
            for cursor in cursors:
                while cursor.read < stored.total_flits:
                    stored.branch_read(cursor, 0)
        assert pool.free_chunks == pool.capacity_chunks
