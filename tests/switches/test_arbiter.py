"""Round-robin arbitration fairness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.switches.arbiter import RoundRobinArbiter, rotate_from


class TestGrant:
    def test_no_requesters_no_grant(self):
        assert RoundRobinArbiter(4).grant([]) is None

    def test_single_requester_wins(self):
        assert RoundRobinArbiter(4).grant([2]) == 2

    def test_pointer_rotates_past_winner(self):
        arb = RoundRobinArbiter(4)
        grants = [arb.grant([0, 1, 2, 3]) for _ in range(8)]
        assert grants == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_persistent_requester_cannot_starve_another(self):
        arb = RoundRobinArbiter(2)
        grants = [arb.grant([0, 1]) for _ in range(10)]
        assert grants.count(0) == grants.count(1) == 5

    def test_wraps_around(self):
        arb = RoundRobinArbiter(4)
        arb.grant([3])
        assert arb.grant([0, 3]) == 0

    @given(
        st.lists(
            st.sets(st.integers(0, 7)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_long_run_fairness(self, request_pattern):
        """Whoever requests every cycle is granted at least its fair share."""
        arb = RoundRobinArbiter(8)
        always = set(range(8))
        wins = {i: 0 for i in range(8)}
        cycles = 0
        for partial in request_pattern:
            winner = arb.grant(always | partial)
            wins[winner] += 1
            cycles += 1
        assert max(wins.values()) - min(wins.values()) <= 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


class TestGrantUpTo:
    def test_respects_limit(self):
        arb = RoundRobinArbiter(8)
        granted = arb.grant_up_to([0, 1, 2, 3], limit=2)
        assert len(granted) == 2

    def test_grants_all_when_limit_allows(self):
        arb = RoundRobinArbiter(8)
        assert sorted(arb.grant_up_to([1, 5, 6], limit=8)) == [1, 5, 6]

    def test_distinct_winners(self):
        arb = RoundRobinArbiter(4)
        granted = arb.grant_up_to([0, 1, 2, 3], limit=4)
        assert len(set(granted)) == 4

    def test_rotation_spreads_over_cycles(self):
        arb = RoundRobinArbiter(4)
        first = arb.grant_up_to([0, 1, 2, 3], limit=2)
        second = arb.grant_up_to([0, 1, 2, 3], limit=2)
        assert sorted(first + second) == [0, 1, 2, 3]

    def test_zero_limit(self):
        assert RoundRobinArbiter(4).grant_up_to([0, 1], 0) == []
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).grant_up_to([0], -1)


class TestGrantBatch:
    """The packed fast path must be indistinguishable from grant_up_to."""

    @given(
        rounds=st.lists(
            st.tuples(
                st.sets(st.integers(0, 7)),  # requesters (made ascending)
                st.integers(0, 9),  # limit
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_identical_to_grant_up_to_across_rounds(self, rounds):
        # same winners, same order, and — via the shared pointer — the
        # same behaviour on every later round.  grant_batch's contract
        # requires distinct ascending requesters, which is how both
        # switch phases build their candidate lists.
        reference = RoundRobinArbiter(8)
        batch = RoundRobinArbiter(8)
        for requesters, limit in rounds:
            ascending = sorted(requesters)
            assert (
                reference.grant_up_to(ascending, limit)
                == batch.grant_batch(ascending, limit)
            )

    def test_empty_and_zero_limit(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant_batch([], 3) == []
        assert arb.grant_batch([1, 2], 0) == []
        with pytest.raises(ValueError):
            arb.grant_batch([0], -1)

    def test_empty_round_leaves_pointer_unchanged(self):
        reference = RoundRobinArbiter(4)
        batch = RoundRobinArbiter(4)
        for arb in (reference, batch):
            arb.grant([1])  # advance both pointers identically
        batch.grant_batch([], 2)
        batch.grant_batch([0, 3], 0)
        # a no-winner round must not move the pointer: the next real
        # round still agrees with the reference
        assert (
            reference.grant_up_to([0, 1, 3], 2)
            == batch.grant_batch([0, 1, 3], 2)
        )


class TestRotateFrom:
    def test_rotation(self):
        assert rotate_from([0, 1, 2, 3], 2) == [2, 3, 0, 1]

    def test_start_past_everything_wraps(self):
        assert rotate_from([0, 1, 2], 5) == [0, 1, 2]

    def test_empty(self):
        assert rotate_from([], 3) == []
