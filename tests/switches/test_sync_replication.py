"""Synchronous replication on the input-buffer switch (paper §3)."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.errors import ConfigurationError
from repro.flits.destset import DestinationSet
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.switches.base import ReplicationMode


def sync_config(**overrides):
    defaults = dict(
        num_hosts=8,
        arity=8,
        switch_architecture=SwitchArchitecture.INPUT_BUFFER,
        replication=ReplicationMode.SYNCHRONOUS,
        max_packet_payload_flits=64,
        sw_send_overhead=0,
        sw_recv_overhead=0,
        self_check=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def schedule_unicast(network, cycle, source, dest, payload):
    network.sim.schedule_at(
        cycle, lambda: network.nodes[source].post_unicast(dest, payload)
    )


def schedule_multicast(network, cycle, source, dest_ids, payload):
    dset = DestinationSet.from_ids(network.num_hosts, dest_ids)
    network.sim.schedule_at(
        cycle,
        lambda: network.nodes[source].post_multicast(
            dset, payload, MulticastScheme.HARDWARE
        ),
    )


def run_to_quiescence(network, max_cycles=60_000):
    network.sim.run_until(
        lambda: network.collector.outstanding_messages == 0
        and network.collector.messages_created > 0,
        max_cycles=max_cycles,
        stall_limit=10_000,
    )


class TestConfiguration:
    def test_rejected_on_central_buffer(self):
        config = SimulationConfig(
            num_hosts=16,
            switch_architecture=SwitchArchitecture.CENTRAL_BUFFER,
            replication=ReplicationMode.SYNCHRONOUS,
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_accepted_on_input_buffer(self):
        sync_config().validate()


class TestLockstepDelivery:
    def test_multicast_delivers_everywhere(self):
        network = build_network(sync_config())
        schedule_multicast(network, 0, 0, [1, 3, 5, 7], payload=24)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        assert sorted(op.arrival_cycles) == [1, 3, 5, 7]

    def test_branches_arrive_simultaneously(self):
        """Lock-step forwarding: all destinations receive the tail in the
        same cycle (same-depth branches on a single switch)."""
        network = build_network(sync_config())
        schedule_multicast(network, 0, 0, [2, 4, 6], payload=24)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        assert len(set(op.arrival_cycles.values())) == 1

    def test_blocked_branch_stalls_siblings(self):
        """The defining cost: asynchronous siblings finish early; in
        lock-step, one congested destination delays all of them."""
        def arrivals(replication):
            config = sync_config(replication=replication)
            network = build_network(config)
            schedule_unicast(network, 0, 6, 7, payload=200)  # congests 7
            schedule_multicast(network, 5, 0, [1, 2, 7], payload=16)
            run_to_quiescence(network)
            (op,) = network.collector.completed_operations()
            return op.arrival_cycles

        async_arrivals = arrivals(ReplicationMode.ASYNCHRONOUS)
        sync_arrivals = arrivals(ReplicationMode.SYNCHRONOUS)
        # asynchronous: hosts 1 and 2 beat the congested host 7
        assert async_arrivals[1] < async_arrivals[7]
        # synchronous: everybody waits for the slow branch
        assert sync_arrivals[1] == sync_arrivals[7]
        assert sync_arrivals[1] > async_arrivals[1]

    def test_unicast_unaffected_by_mode(self):
        def latency(replication):
            config = sync_config(replication=replication)
            network = build_network(config)
            schedule_unicast(network, 0, 0, 5, payload=32)
            run_to_quiescence(network)
            from repro.flits.packet import TrafficClass
            return network.collector.classes[
                TrafficClass.UNICAST
            ].latency.mean

        assert latency(ReplicationMode.SYNCHRONOUS) == latency(
            ReplicationMode.ASYNCHRONOUS
        )


class TestArbitration:
    def test_concurrent_multicasts_serialize_but_complete(self):
        """The replication token admits one worm's port accumulation at a
        time, preventing the hold-and-wait deadlock of naive synchronous
        replication."""
        network = build_network(sync_config())
        # two worms with crossing port sets: the classic cyclic-wait setup
        schedule_multicast(network, 0, 0, [4, 5], payload=48)
        schedule_multicast(network, 0, 1, [5, 4], payload=48)
        run_to_quiescence(network)
        assert len(network.collector.completed_operations()) == 2

    def test_many_overlapping_worms_drain(self):
        network = build_network(sync_config())
        for source in range(4):
            schedule_multicast(
                network, source, source, [4, 5, 6, 7], payload=32
            )
        run_to_quiescence(network)
        assert len(network.collector.completed_operations()) == 4

    def test_multihop_sync_multicast(self):
        """Lock-step replication across a multi-level BMIN."""
        config = sync_config(num_hosts=16, arity=4)
        network = build_network(config)
        schedule_multicast(network, 0, 0, [3, 7, 12], payload=24)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        assert sorted(op.arrival_cycles) == [3, 7, 12]
