"""Span-boundary behaviour of the bulk link API.

``send_span``/``receive_span`` move whole spans per call but must stay
wire-identical to the same flits sent one per cycle: identical credit
trajectories, identical arrival cycles, identical wake-hook firings.
These tests pin the boundary cases — zero credits, credits smaller than
the pending span, exact fits, spans straddling a worm boundary — and the
single-arrival-hook contract documented in ``repro.switches.link``.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.switches.link import Link


def make_worm(size=8, universe=4, packet_id=0):
    destinations = DestinationSet.single(universe, 1)
    message = Message(
        0, 0, destinations, size - 1, TrafficClass.UNICAST, 0
    )
    packet = Packet(packet_id, message, destinations, 1, size - 1)
    return Worm.root(packet)


def make_link(depth=8, latency=1, credit_latency=None):
    link = Link("test", latency=latency, credit_latency=credit_latency)
    link.set_credits(depth)
    return link


def drain(link, now, limit=None):
    """Every (worm, start, count) span receivable at ``now``."""
    spans = []
    while link.pending_arrival(now):
        span = link.receive_span(now, limit)
        if span is None:
            break
        spans.append(span)
    return spans


class TestReceiveSpanBoundaries:
    def test_zero_credit_limit_delivers_nothing(self):
        # a receiver with no free buffer slots passes limit=0 and must
        # get nothing back — the span stays queued, untouched
        link = make_link()
        worm = make_worm()
        link.send_span(0, worm, 0, 4)
        assert link.pending_arrival(10)
        assert link.receive_span(10, 0) is None
        assert link.in_flight() == 4

    def test_limit_below_pending_takes_a_prefix(self):
        # credits < pending: the span splits; the remainder is
        # immediately receivable (its members have all arrived)
        link = make_link()
        worm = make_worm()
        link.send_span(0, worm, 0, 4)
        assert link.receive_span(10, 3) == (worm, 0, 3)
        assert link.receive_span(10, 3) == (worm, 3, 1)
        assert link.receive_span(10, 3) is None

    def test_exact_fit_takes_the_whole_span(self):
        link = make_link()
        worm = make_worm()
        link.send_span(0, worm, 0, 4)
        assert link.receive_span(10, 4) == (worm, 0, 4)
        assert not link.pending_arrival(10)
        assert link.in_flight() == 0

    def test_members_mature_one_per_cycle(self):
        # a span send is pipelined, not a burst: member j arrives at
        # latency + j, so an early drain yields only the matured prefix
        link = make_link(latency=2)
        worm = make_worm()
        link.send_span(0, worm, 0, 4)
        assert not link.pending_arrival(1)
        assert drain(link, 2) == [(worm, 0, 1)]
        assert drain(link, 3) == [(worm, 1, 1)]
        assert drain(link, 5) == [(worm, 2, 2)]

    def test_span_never_straddles_a_worm_boundary(self):
        # tail of one worm and head of the next, sent back to back on
        # consecutive cycles: one receive_span call returns members of
        # exactly one worm, with the tail span closed off first
        link = make_link()
        tail_worm, head_worm = make_worm(packet_id=1), make_worm(packet_id=2)
        link.send_span(0, tail_worm, 6, 2)  # last two flits (tail at 7)
        link.send_span(2, head_worm, 0, 2)  # next worm's head
        spans = drain(link, 10)
        assert spans == [(tail_worm, 6, 2), (head_worm, 0, 2)]

    def test_receive_into_materialises_identical_flits(self):
        # object-plane drain over the same in-flight store
        link = make_link()
        worm = make_worm()
        link.send_span(0, worm, 2, 3)
        buf: list = []
        assert link.receive_into(10, buf) == 3
        assert buf == [Flit(worm, 2), Flit(worm, 3), Flit(worm, 4)]


class TestSendSpanReservations:
    def test_span_reserves_one_slot_and_credit_per_member(self):
        link = make_link(depth=8)
        worm = make_worm()
        link.send_span(0, worm, 0, 3)
        assert link.credits(0) == 5  # three credits consumed up front
        # slots 0..2 are reserved: the next send fits at cycle 3
        assert not link.can_send(1)
        assert not link.can_send(2)
        assert link.can_send(3)
        assert link.sendable_span(2) == 0
        assert link.sendable_span(3) == 5

    def test_span_beyond_credits_rejected(self):
        link = make_link(depth=2)
        worm = make_worm()
        with pytest.raises(ProtocolError):
            link.send_span(0, worm, 0, 3)

    def test_zero_credits_blocks_any_span(self):
        link = make_link(depth=2)
        worm = make_worm()
        link.send_span(0, worm, 0, 2)
        assert link.sendable_span(5) == 0
        with pytest.raises(ProtocolError):
            link.send_span(5, worm, 2, 1)
        # returned credits mature and reopen the span window
        link.receive_span(10, None)
        link.return_credit(10, 2)
        assert link.sendable_span(11) == 2

    def test_send_granted_matches_send_packed_wire_state(self):
        # send_granted skips the redundant credit drain after a
        # can_send check; the resulting wire state must be identical
        granted, packed = make_link(), make_link()
        worm = make_worm()
        for now in range(3):
            assert granted.can_send(now)
            granted.send_granted(now, worm, now)
            packed.send_packed(now, worm, now)
        for link in (granted, packed):
            assert link.flits_sent == 3
            assert link.credits(2) == 5
            assert link.in_flight() == 3
        assert drain(granted, 10) == drain(packed, 10) == [(worm, 0, 3)]


class Recorder(Component):
    """Records every tick cycle; never re-arms on its own."""

    def __init__(self, name="rec"):
        super().__init__(name)
        self.ticks = []

    def tick(self, now):
        self.ticks.append(now)


class TestWakeSemantics:
    def test_arrival_hook_fires_once_at_first_arrival(self):
        link = make_link(latency=2)
        fired = []
        link.on_arrival(fired.append)
        link.send_span(0, make_worm(), 0, 4)
        assert fired == [2]  # once, at the first member's arrival

    def test_span_credit_return_wakes_match_single_flit_semantics(self):
        # the same four flits, once as a span and once as four single
        # sends on consecutive cycles: arrival cycles and credit-wake
        # cycles must be indistinguishable.  (The sender's own credit
        # counter differs *during* the span window — all member credits
        # are reserved up front — but reconverges as returns mature.)
        def run(as_span):
            link = make_link(depth=8, latency=1)
            credit_wakes = []
            link.on_credit(credit_wakes.append)
            worm = make_worm()
            arrivals, credit_trace = [], []
            for now in range(12):
                if as_span:
                    if now == 0:
                        link.send_span(0, worm, 0, 4)
                else:
                    if now < 4 and link.can_send(now):
                        link.send_packed(now, worm, now)
                for _, start, count in drain(link, now):
                    for index in range(start, start + count):
                        arrivals.append((index, now))
                        link.return_credit(now)
                credit_trace.append(link.credits(now))
            # past the send window the reserved-up-front credits have
            # reconverged with the one-per-cycle trajectory
            return arrivals, credit_trace[4:], credit_wakes

        assert run(as_span=True) == run(as_span=False)

    def test_component_waker_ticks_receiver_at_arrival_cycles(self):
        # wake_on_arrival wires the component itself; a span send must
        # tick it at the first arrival, and the receiver (which in the
        # real network re-arms itself while stirred) sees the rest as
        # already-arrived members — here we just check the hook cycle
        sim = Simulator()
        receiver = sim.add_component(Recorder())
        link = make_link(latency=3)
        link.wake_on_arrival(receiver)
        sim.schedule(1, lambda: link.send_span(sim.now, make_worm(), 0, 2))
        sim.run(20)
        assert receiver.ticks == [0, 4]  # registration tick + arrival

    def test_component_waker_equivalent_to_hook_form(self):
        def ticks(wire):
            sim = Simulator()
            receiver = sim.add_component(Recorder())
            sender = sim.add_component(Recorder("snd"))
            link = make_link(depth=1, latency=2)
            wire(link, receiver, sender)
            worm = make_worm()
            sim.schedule(1, lambda: link.send_packed(sim.now, worm, 0))
            # drain + credit return at the arrival cycle, waking the
            # sender when the credit matures
            sim.schedule(3, lambda: (link.receive_span(3),
                                     link.return_credit(3)))
            sim.run(20)
            return receiver.ticks, sender.ticks

        fast = ticks(lambda link, r, s: (link.wake_on_arrival(r),
                                         link.wake_on_credit(s)))
        slow = ticks(lambda link, r, s: (link.on_arrival(r.wake_at),
                                         link.on_credit(s.wake_at)))
        assert fast == slow
        receiver_ticks, sender_ticks = fast
        assert 3 in receiver_ticks  # arrival cycle
        assert 5 in sender_ticks  # credit maturity cycle

    def test_waker_and_hook_are_mutually_exclusive(self):
        link = make_link()
        receiver = Recorder()
        link.wake_on_arrival(receiver)
        with pytest.raises(ProtocolError):
            link.on_arrival(lambda cycle: None)
        with pytest.raises(ProtocolError):
            link.wake_on_arrival(receiver)
        link.wake_on_credit(receiver)
        with pytest.raises(ProtocolError):
            link.on_credit(lambda cycle: None)
        with pytest.raises(ProtocolError):
            link.wake_on_credit(receiver)

    def test_marker_dedup_never_loses_a_wake(self):
        # two links firing the same component for the same arrival cycle:
        # the second fire hits the wake-marker fast path; the component
        # must still tick exactly once at that cycle
        sim = Simulator()
        receiver = sim.add_component(Recorder())
        a, b = make_link(), make_link()
        a.wake_on_arrival(receiver)
        b.wake_on_arrival(receiver)
        worm = make_worm()

        def fire():
            a.send_packed(sim.now, worm, 0)
            b.send_packed(sim.now, worm, 1)

        sim.schedule(2, fire)
        sim.run(10)
        assert receiver.ticks == [0, 3]
