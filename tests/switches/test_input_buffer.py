"""Input-buffer switch behaviour, including its architectural weaknesses."""

from __future__ import annotations

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.flits.destset import DestinationSet
from repro.flits.packet import TrafficClass
from repro.network.builder import build_network
from repro.network.config import SimulationConfig


def one_switch_config(**overrides):
    defaults = dict(
        num_hosts=8,
        arity=8,
        switch_architecture=SwitchArchitecture.INPUT_BUFFER,
        max_packet_payload_flits=64,
        sw_send_overhead=0,
        sw_recv_overhead=0,
        self_check=True,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def schedule_unicast(network, cycle, source, dest, payload):
    network.sim.schedule_at(
        cycle, lambda: network.nodes[source].post_unicast(dest, payload)
    )


def schedule_multicast(network, cycle, source, dest_ids, payload):
    dset = DestinationSet.from_ids(network.num_hosts, dest_ids)
    network.sim.schedule_at(
        cycle,
        lambda: network.nodes[source].post_multicast(
            dset, payload, MulticastScheme.HARDWARE
        ),
    )


def run_to_quiescence(network, max_cycles=30_000):
    network.sim.run_until(
        lambda: network.collector.outstanding_messages == 0
        and network.collector.messages_created > 0,
        max_cycles=max_cycles,
        stall_limit=5_000,
    )


class TestBasicForwarding:
    def test_unicast_delivery(self):
        network = build_network(one_switch_config())
        schedule_unicast(network, 0, 0, 5, payload=16)
        run_to_quiescence(network)
        assert network.collector.classes[TrafficClass.UNICAST].deliveries == 1

    def test_multicast_replication(self):
        network = build_network(one_switch_config())
        schedule_multicast(network, 0, 0, [1, 3, 5, 7], payload=24)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        assert sorted(op.arrival_cycles) == [1, 3, 5, 7]

    def test_each_destination_gets_whole_packet(self):
        network = build_network(one_switch_config())
        dests = [2, 6]
        schedule_multicast(network, 0, 1, dests, payload=24)
        run_to_quiescence(network)
        header = network.encoding.header_flits(
            DestinationSet.from_ids(8, dests)
        )
        for dest in dests:
            assert network.interfaces[dest].flits_ejected == 24 + header

    def test_switch_returns_to_idle(self):
        network = build_network(one_switch_config())
        schedule_multicast(network, 0, 0, [1, 2, 3], payload=16)
        run_to_quiescence(network)
        network.sim.run(10)
        (switch,) = network.switches
        assert switch.idle()
        assert switch.buffer_occupancy(0) == 0


class TestAsynchronousReplication:
    def test_blocked_branch_does_not_block_others(self):
        network = build_network(one_switch_config())
        schedule_unicast(network, 0, 6, 7, payload=200)  # congests output 7
        schedule_multicast(network, 5, 0, [1, 2, 7], payload=16)
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        assert max(op.arrival_cycles[d] for d in (1, 2)) < op.arrival_cycles[7]

    def test_buffer_slots_recycle_with_slowest_branch(self):
        """A second packet can enter the input buffer only as the slowest
        branch of the head packet frees space."""
        network = build_network(
            one_switch_config(
                input_buffer_flits=None,  # sized to max packet
                max_packet_payload_flits=64,
            )
        )
        schedule_unicast(network, 0, 6, 7, payload=300)  # blocks output 7
        schedule_multicast(network, 5, 0, [1, 7], payload=64)
        schedule_unicast(network, 6, 0, 2, payload=64)  # queued behind worm
        run_to_quiescence(network)
        assert network.collector.outstanding_messages == 0


class TestHeadOfLineBlocking:
    def victim_arrival(self, architecture):
        """Long packet to a busy output, then a short 'victim' packet to an
        idle output from the same source; return the victim's arrival.

        The victim is posted as a degree-1 multicast operation purely so
        the collector records its exact completion cycle; with a singleton
        destination it travels the network as an ordinary unicast worm.
        """
        config = one_switch_config(switch_architecture=architecture)
        network = build_network(config)
        schedule_unicast(network, 0, 0, 5, payload=200)   # occupies output 5
        schedule_unicast(network, 8, 1, 5, payload=200)   # blocked behind it
        schedule_multicast(network, 9, 1, [6], payload=8)  # HOL victim
        run_to_quiescence(network)
        (op,) = network.collector.completed_operations()
        return op.completed_cycle

    def test_input_buffer_suffers_hol_blocking(self):
        """The IB switch delivers the victim only after the packet ahead of
        it wins output 5; the CB switch drains that packet into the central
        buffer and lets the victim through immediately."""
        ib_victim = self.victim_arrival(SwitchArchitecture.INPUT_BUFFER)
        cb_victim = self.victim_arrival(SwitchArchitecture.CENTRAL_BUFFER)
        assert cb_victim + 100 < ib_victim


class TestStaticPartitioning:
    def test_concurrent_streams_through_distinct_inputs(self):
        network = build_network(one_switch_config())
        for source, dest in ((0, 4), (1, 5), (2, 6), (3, 7)):
            schedule_unicast(network, 0, source, dest, payload=64)
        run_to_quiescence(network)
        assert network.collector.classes[TrafficClass.UNICAST].deliveries == 4
