"""Global reduction protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.reduction import ReductionEngine
from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.network.builder import build_network
from repro.network.config import SimulationConfig


def rig(num_hosts=16, seed=1):
    config = SimulationConfig(num_hosts=num_hosts, seed=seed)
    network = build_network(config)
    return network, ReductionEngine(network.nodes)


def run_reduction(network, engine, operation, values, cycles=None):
    cycles = cycles or {host: 0 for host in values}
    for host, value in values.items():
        network.sim.schedule_at(
            cycles[host],
            lambda h=host, v=value: engine.contribute(operation, h, v),
        )
    network.sim.run_until(
        lambda: operation.complete, max_cycles=200_000, stall_limit=30_000
    )
    return operation


class TestReductionCorrectness:
    @pytest.mark.parametrize("scheme", list(MulticastScheme))
    def test_sum_over_all_hosts(self, scheme):
        network, engine = rig()
        operation = engine.create(
            list(range(16)), combine=lambda a, b: a + b,
            result_scheme=scheme,
        )
        values = {h: 3 * h + 1 for h in range(16)}
        run_reduction(network, engine, operation, values)
        assert operation.result == sum(values.values())
        assert set(operation.result_cycles) == set(range(16))

    def test_max_reduction(self):
        network, engine = rig()
        operation = engine.create(list(range(16)), combine=max)
        values = {h: (7 * h) % 13 for h in range(16)}
        run_reduction(network, engine, operation, values)
        assert operation.result == max(values.values())

    def test_subset_participants(self):
        network, engine = rig()
        participants = [1, 4, 9, 14]
        operation = engine.create(participants)
        values = {h: h for h in participants}
        run_reduction(network, engine, operation, values)
        assert operation.result == sum(participants)

    def test_staggered_contributions(self):
        network, engine = rig()
        operation = engine.create(list(range(16)))
        values = {h: 1 for h in range(16)}
        cycles = {h: 100 * h for h in range(16)}
        run_reduction(network, engine, operation, values, cycles)
        assert operation.result == 16
        assert operation.last_latency >= 1_500  # gated by the last one

    @given(
        values=st.lists(
            st.integers(-1_000, 1_000), min_size=16, max_size=16
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_values_sum_exactly(self, values):
        network, engine = rig(seed=11)
        operation = engine.create(list(range(16)))
        run_reduction(
            network, engine, operation,
            {h: values[h] for h in range(16)},
        )
        assert operation.result == sum(values)


class TestReductionErrors:
    def test_double_contribution_rejected(self):
        network, engine = rig()
        operation = engine.create([1, 2, 3])
        engine.contribute(operation, 1, 5)
        with pytest.raises(ProtocolError):
            engine.contribute(operation, 1, 6)

    def test_non_participant_rejected(self):
        network, engine = rig()
        operation = engine.create([1, 2, 3])
        with pytest.raises(ProtocolError):
            engine.contribute(operation, 9, 5)

    def test_too_few_participants(self):
        network, engine = rig()
        with pytest.raises(ConfigurationError):
            engine.create([5])


class TestReductionTiming:
    def test_hardware_result_broadcast_faster(self):
        def measure(scheme):
            network, engine = rig(num_hosts=64, seed=4)
            operation = engine.create(
                list(range(64)), result_scheme=scheme, payload_flits=8
            )
            run_reduction(
                network, engine, operation, {h: h for h in range(64)}
            )
            return operation.last_latency

        hw = measure(MulticastScheme.HARDWARE)
        sw = measure(MulticastScheme.SOFTWARE)
        assert hw < sw

    def test_payload_length_serializes(self):
        def measure(payload):
            network, engine = rig()
            operation = engine.create(
                list(range(16)), payload_flits=payload
            )
            run_reduction(
                network, engine, operation, {h: 1 for h in range(16)}
            )
            return operation.last_latency

        assert measure(64) > measure(4)
