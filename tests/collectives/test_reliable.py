"""Reliable multicast: ACKs, loss injection, straggler retransmission."""

from __future__ import annotations

import pytest

from repro.collectives.reliable import ReliableMulticastEngine
from repro.errors import ConfigurationError
from repro.network.builder import build_network
from repro.network.config import SimulationConfig


def rig(num_hosts=16, seed=1, drop=0.0, timeout=600, max_rounds=20):
    network = build_network(SimulationConfig(num_hosts=num_hosts, seed=seed))
    engine = ReliableMulticastEngine(
        network.nodes,
        drop_probability=drop,
        timeout_cycles=timeout,
        max_rounds=max_rounds,
    )
    return network, engine


def run_reliable(network, engine, source, dests, payload=16):
    holder = {}

    def fire():
        holder["op"] = engine.send(source, dests, payload)

    network.sim.schedule_at(0, fire)
    network.sim.run_until(
        lambda: "op" in holder and holder["op"].complete,
        max_cycles=500_000,
        stall_limit=60_000,
    )
    return holder["op"]


class TestLossFree:
    def test_single_round_when_nothing_drops(self):
        network, engine = rig(drop=0.0)
        op = run_reliable(network, engine, 0, [3, 7, 11])
        assert op.complete
        assert op.rounds == 1
        assert op.drops == 0
        assert sorted(op.acked) == [3, 7, 11]

    def test_latency_includes_ack_return(self):
        network, engine = rig(drop=0.0)
        op = run_reliable(network, engine, 0, [15])
        # data out plus ACK back: clearly more than one one-way trip
        assert op.last_latency > 100


class TestWithLoss:
    @pytest.mark.parametrize("drop", [0.2, 0.5])
    def test_delivers_despite_loss(self, drop):
        network, engine = rig(drop=drop, seed=4, timeout=400)
        op = run_reliable(network, engine, 0, list(range(1, 12)))
        assert op.complete
        assert op.rounds > 1
        assert op.drops > 0
        assert sorted(op.acked) == list(range(1, 12))

    def test_retransmissions_target_only_stragglers(self):
        """Every destination is delivered exactly once at the message
        layer per round it was addressed in; ACK'd hosts drop out of
        later rounds."""
        network, engine = rig(drop=0.5, seed=7, timeout=400)
        op = run_reliable(network, engine, 0, list(range(1, 9)))
        # per-destination, exactly one successful (non-dropped) receipt
        assert len(op.delivered) == 8
        # drops + successes equals total copies addressed to hosts
        # (each addressed copy is either dropped or delivered once)
        assert op.drops + len(op.delivered) >= 8

    def test_deterministic_loss_pattern(self):
        def run(seed):
            network, engine = rig(drop=0.3, seed=seed, timeout=400)
            op = run_reliable(network, engine, 0, list(range(1, 10)))
            return (op.rounds, op.drops, op.last_latency)

        assert run(5) == run(5)
        results = {run(seed) for seed in (5, 6, 7)}
        assert len(results) > 1


class TestValidation:
    def test_bad_parameters(self):
        network = build_network(SimulationConfig(num_hosts=16))
        with pytest.raises(ConfigurationError):
            ReliableMulticastEngine(network.nodes, drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            ReliableMulticastEngine(network.nodes, timeout_cycles=0)

    def test_empty_destinations_rejected(self):
        network, engine = rig()
        with pytest.raises(ConfigurationError):
            engine.send(0, [], 8)
