"""Barrier synchronization protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.barrier import BarrierEngine, ReleaseScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.network.builder import build_network
from repro.network.config import SimulationConfig


def rig(num_hosts=16, seed=1, **overrides):
    config = SimulationConfig(num_hosts=num_hosts, seed=seed, **overrides)
    network = build_network(config)
    return network, BarrierEngine(network.nodes)


def run_barrier(network, engine, operation, enter_cycles):
    """Enter each (host, cycle) pair, then run to completion."""
    for host, cycle in enter_cycles.items():
        network.sim.schedule_at(
            cycle, lambda h=host: engine.enter(operation, h)
        )
    network.sim.run_until(
        lambda: operation.complete, max_cycles=200_000, stall_limit=30_000
    )
    return operation


class TestBarrierCompletion:
    @pytest.mark.parametrize("scheme", list(ReleaseScheme))
    def test_all_enter_together(self, scheme):
        network, engine = rig()
        operation = engine.create(list(range(16)), release_scheme=scheme)
        run_barrier(network, engine, operation, {h: 0 for h in range(16)})
        assert operation.complete
        assert set(operation.release_cycles) == set(range(16))

    @pytest.mark.parametrize("scheme", list(ReleaseScheme))
    def test_straggler_gates_everyone(self, scheme):
        network, engine = rig()
        operation = engine.create(list(range(16)), release_scheme=scheme)
        enters = {h: 0 for h in range(16)}
        enters[11] = 2_000  # late arrival
        run_barrier(network, engine, operation, enters)
        # nobody is released before the straggler entered
        assert min(operation.release_cycles.values()) > 2_000

    def test_subset_of_hosts(self):
        network, engine = rig()
        participants = [2, 5, 7, 11, 13]
        operation = engine.create(participants)
        run_barrier(network, engine, operation, {h: 0 for h in participants})
        assert sorted(operation.release_cycles) == participants

    def test_two_party_barrier(self):
        network, engine = rig()
        operation = engine.create([3, 9])
        run_barrier(network, engine, operation, {3: 0, 9: 50})
        assert operation.complete
        assert operation.last_latency > 0

    def test_consecutive_barriers_independent(self):
        network, engine = rig()
        first = engine.create(list(range(16)))
        run_barrier(network, engine, first, {h: 0 for h in range(16)})
        second = engine.create(list(range(16)))
        start = network.sim.now
        run_barrier(network, engine, second, {h: start for h in range(16)})
        assert second.complete
        assert second.completed_cycle > first.completed_cycle


class TestBarrierQuality:
    def test_hardware_release_faster_and_tighter(self):
        def measure(scheme):
            network, engine = rig(num_hosts=64, seed=5)
            operation = engine.create(
                list(range(64)), release_scheme=scheme
            )
            run_barrier(
                network, engine, operation, {h: 0 for h in range(64)}
            )
            return operation.last_latency, operation.skew

        hw_latency, hw_skew = measure(ReleaseScheme.HARDWARE_MULTICAST)
        sw_latency, sw_skew = measure(ReleaseScheme.SOFTWARE_BROADCAST)
        assert hw_latency < sw_latency
        assert hw_skew < sw_skew

    def test_latency_includes_waiting_for_straggler(self):
        network, engine = rig()
        operation = engine.create(list(range(16)))
        enters = {h: 0 for h in range(16)}
        enters[7] = 5_000
        run_barrier(network, engine, operation, enters)
        assert operation.last_latency > 5_000


class TestBarrierProtocolErrors:
    def test_non_participant_cannot_enter(self):
        network, engine = rig()
        operation = engine.create([1, 2, 3])
        with pytest.raises(ProtocolError):
            engine.enter(operation, 9)

    def test_double_enter_rejected(self):
        network, engine = rig()
        operation = engine.create([1, 2, 3])
        engine.enter(operation, 1)
        with pytest.raises(ProtocolError):
            engine.enter(operation, 1)

    def test_too_few_participants(self):
        network, engine = rig()
        with pytest.raises(ConfigurationError):
            engine.create([4])

    def test_duplicate_participants(self):
        network, engine = rig()
        with pytest.raises(ConfigurationError):
            engine.create([1, 1, 2])


class TestBarrierProperties:
    @given(
        participants=st.sets(st.integers(0, 15), min_size=2, max_size=16),
        offsets=st.lists(st.integers(0, 300), min_size=16, max_size=16),
        scheme=st.sampled_from(list(ReleaseScheme)),
    )
    @settings(max_examples=20, deadline=None)
    def test_no_release_before_last_enter(self, participants, offsets, scheme):
        network, engine = rig(seed=7)
        participants = sorted(participants)
        operation = engine.create(participants, release_scheme=scheme)
        enters = {
            host: offsets[host] for host in participants
        }
        run_barrier(network, engine, operation, enters)
        last_enter = max(enters.values())
        # the root may release itself in the very cycle it (last) enters;
        # every other participant strictly follows the last enter
        assert min(operation.release_cycles.values()) >= last_enter
        for host, released in operation.release_cycles.items():
            if host != operation.root:
                assert released > last_enter
        assert set(operation.release_cycles) == set(participants)


class TestBarrierUnderLoad:
    def test_barrier_completes_amid_background_traffic(self):
        """Barriers share the network with application traffic; the
        protocol must complete and still beat the software release."""
        from repro.traffic.bimodal import BimodalTraffic
        from repro.core.schemes import MulticastScheme

        def barrier_latency(release):
            network, engine = rig(num_hosts=16, seed=9)
            background = BimodalTraffic(
                load=0.3, multicast_fraction=0.1, degree=4,
                payload_flits=16, scheme=MulticastScheme.HARDWARE,
                warmup_cycles=0, measure_cycles=4_000,
            )
            background.start(network)
            operation = engine.create(
                list(range(16)), release_scheme=release
            )
            network.sim.schedule_at(
                500,
                lambda: [engine.enter(operation, h) for h in range(16)],
            )
            network.sim.run_until(
                lambda: operation.complete,
                max_cycles=400_000,
                stall_limit=30_000,
            )
            return operation.last_latency

        hw = barrier_latency(ReleaseScheme.HARDWARE_MULTICAST)
        sw = barrier_latency(ReleaseScheme.SOFTWARE_BROADCAST)
        assert hw < sw

    def test_background_traffic_slows_the_barrier(self):
        from repro.traffic.unicast import UniformRandomUnicast

        def barrier_latency(load):
            network, engine = rig(num_hosts=16, seed=10)
            if load:
                UniformRandomUnicast(
                    load=load, payload_flits=16,
                    warmup_cycles=0, measure_cycles=4_000,
                ).start(network)
            operation = engine.create(list(range(16)))
            network.sim.schedule_at(
                400,
                lambda: [engine.enter(operation, h) for h in range(16)],
            )
            network.sim.run_until(
                lambda: operation.complete,
                max_cycles=400_000,
                stall_limit=30_000,
            )
            return operation.last_latency

        assert barrier_latency(0.5) > barrier_latency(0.0)
