"""Gather, all-gather and scatter protocols."""

from __future__ import annotations

import pytest

from repro.collectives.gather import (
    GatherEngine,
    ScatterEngine,
    ScatterStrategy,
)
from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.network.builder import build_network
from repro.network.config import SimulationConfig


def rig(num_hosts=16, seed=1):
    network = build_network(SimulationConfig(num_hosts=num_hosts, seed=seed))
    return network


def run_gather(network, engine, operation, hosts):
    network.sim.schedule_at(
        0, lambda: [engine.contribute(operation, h) for h in hosts]
    )
    network.sim.run_until(
        lambda: operation.complete, max_cycles=300_000, stall_limit=30_000
    )
    return operation


class TestGather:
    def test_pure_gather_ends_at_root(self):
        network = rig()
        engine = GatherEngine(network.nodes)
        operation = engine.create(list(range(16)), block_flits=8)
        run_gather(network, engine, operation, range(16))
        assert operation.gathered_cycle == operation.completed_cycle
        # the root holds every block
        assert operation.blocks_held[operation.root] == 16

    def test_block_conservation_along_tree(self):
        network = rig()
        engine = GatherEngine(network.nodes)
        operation = engine.create(list(range(16)), block_flits=4)
        run_gather(network, engine, operation, range(16))
        # each internal node held exactly its subtree's blocks
        for host in operation.participants:
            assert operation.blocks_held[host] == operation.subtree_size(host)

    def test_subset_participants(self):
        network = rig()
        engine = GatherEngine(network.nodes)
        participants = [3, 6, 9, 12]
        operation = engine.create(participants, block_flits=8)
        run_gather(network, engine, operation, participants)
        assert operation.blocks_held[3] == 4

    def test_allgather_hardware_beats_software(self):
        def latency(scheme):
            network = rig(seed=5)
            engine = GatherEngine(network.nodes)
            operation = engine.create(
                list(range(16)), block_flits=8, broadcast_result=scheme
            )
            run_gather(network, engine, operation, range(16))
            return operation.last_latency

        assert latency(MulticastScheme.HARDWARE) < latency(
            MulticastScheme.SOFTWARE
        )

    def test_allgather_reaches_everyone(self):
        network = rig()
        engine = GatherEngine(network.nodes)
        operation = engine.create(
            list(range(16)), block_flits=8,
            broadcast_result=MulticastScheme.HARDWARE,
        )
        run_gather(network, engine, operation, range(16))
        assert set(operation.result_cycles) == set(range(16))

    def test_bigger_blocks_cost_more(self):
        def latency(block):
            network = rig(seed=6)
            engine = GatherEngine(network.nodes)
            operation = engine.create(list(range(16)), block_flits=block)
            run_gather(network, engine, operation, range(16))
            return operation.last_latency

        assert latency(32) > latency(4)

    def test_errors(self):
        network = rig()
        engine = GatherEngine(network.nodes)
        with pytest.raises(ConfigurationError):
            engine.create([5])
        operation = engine.create([1, 2, 3])
        with pytest.raises(ProtocolError):
            engine.contribute(operation, 9)
        engine.contribute(operation, 1)
        with pytest.raises(ProtocolError):
            engine.contribute(operation, 1)


class TestScatter:
    def run_scatter(self, network, engine, operation):
        network.sim.schedule_at(0, lambda: engine.start(operation))
        network.sim.run_until(
            lambda: operation.complete, max_cycles=300_000,
            stall_limit=30_000,
        )
        return operation

    @pytest.mark.parametrize("strategy", list(ScatterStrategy))
    def test_every_host_gets_its_block(self, strategy):
        network = rig()
        engine = ScatterEngine(network.nodes)
        operation = engine.create(
            0, list(range(16)), block_flits=8, strategy=strategy
        )
        self.run_scatter(network, engine, operation)
        assert set(operation.block_cycles) == set(range(16))

    def test_tree_beats_direct_for_many_blocks(self):
        """Delegation halves the root's serialized start-ups; with enough
        participants the tree wins despite moving more total bytes."""
        def latency(strategy):
            network = rig(seed=7, num_hosts=64)
            engine = ScatterEngine(network.nodes)
            operation = engine.create(
                0, list(range(64)), block_flits=4, strategy=strategy
            )
            return self.run_scatter(network, engine, operation).last_latency

        assert latency(ScatterStrategy.TREE) < latency(
            ScatterStrategy.DIRECT
        )

    def test_non_root_root_rejected(self):
        network = rig()
        engine = ScatterEngine(network.nodes)
        with pytest.raises(ConfigurationError):
            engine.create(9, [1, 2, 3])

    def test_subtree_partition(self):
        network = rig()
        engine = ScatterEngine(network.nodes)
        operation = engine.create(0, list(range(16)))
        collected = []
        for child in operation.children.get(0, []):
            collected.extend(operation.subtree(child))
        assert sorted(collected + [0]) == list(range(16))
