"""RNG streams: determinism and independence."""

from __future__ import annotations

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_sequences(self):
        a = RngStreams(42).stream("traffic")
        b = RngStreams(42).stream("traffic")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_names_are_independent(self):
        streams = RngStreams(42)
        a = [streams.stream("a").random() for _ in range(10)]
        b = [streams.stream("b").random() for _ in range(10)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_draws_do_not_couple_streams(self):
        """Consuming one stream must not perturb another."""
        control = RngStreams(7)
        expected = [control.stream("b").random() for _ in range(5)]
        perturbed = RngStreams(7)
        for _ in range(100):
            perturbed.stream("a").random()
        observed = [perturbed.stream("b").random() for _ in range(5)]
        assert observed == expected

    def test_spawn_children_are_disjoint(self):
        parent = RngStreams(3)
        child = parent.spawn("sub")
        a = parent.stream("x").random()
        b = child.stream("x").random()
        assert a != b

    def test_spawn_is_deterministic(self):
        a = RngStreams(3).spawn("sub").stream("x").random()
        b = RngStreams(3).spawn("sub").stream("x").random()
        assert a == b

    def test_seed_property(self):
        assert RngStreams(11).seed == 11
