"""Differential tests: the packed data plane against the object plane.

The packed data plane (span transport over preallocated int buffers, see
``docs/architecture.md``) is a pure performance optimisation — every
observable of a run must be bit-identical to the object plane that moves
one ``Flit`` instance per link per cycle.  This is the same contract —
and the same sweep shape — as ``tests/sim/test_active_set.py`` pins for
the kernel layer: random workloads on both switch architectures, both
routing modes, and random seeds, asserting the two planes agree on cycle
counts, metric summaries, per-host flit counts, and the kernel progress
counter.

The two optimisation layers are independent toggles
(``SimulationConfig.packed`` / ``SimulationConfig.dense_kernel``), so
the sweep also crosses them: packed-on-dense must equal object-on-dense,
closing the square whose other sides the two differential suites pin.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.routing.base import MulticastRoutingMode
from repro.sim.trace import Tracer
from repro.switches.base import ReplicationMode
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.multicast import RandomMulticastStream, SingleMulticast
from repro.traffic.unicast import UniformRandomUnicast

N = 16

#: (label, workload factory) — factories because workloads are stateful
#: and each data-plane flavour needs a fresh instance.  The set covers
#: unicast (low and saturating load), hardware and software multicast
#: (the SW scheme moves unicast worms under a collective protocol), a
#: multicast stream, and tree-saturating hotspot traffic.
WORKLOADS = (
    ("low-load-unicast", lambda: UniformRandomUnicast(
        load=0.01, payload_flits=8,
        warmup_cycles=100, measure_cycles=600,
    )),
    ("hot-unicast", lambda: UniformRandomUnicast(
        load=0.6, payload_flits=8,
        warmup_cycles=100, measure_cycles=400,
    )),
    ("hw-multicast", lambda: SingleMulticast(
        source=3, degree=9, payload_flits=24,
        scheme=MulticastScheme.HARDWARE,
    )),
    ("sw-multicast", lambda: SingleMulticast(
        source=1, degree=6, payload_flits=16,
        scheme=MulticastScheme.SOFTWARE,
    )),
    ("mcast-stream", lambda: RandomMulticastStream(
        ops_per_host_per_kilocycle=0.5, degree=5, payload_flits=16,
        scheme=MulticastScheme.HARDWARE,
        warmup_cycles=100, measure_cycles=500,
    )),
    ("hotspot", lambda: HotspotTraffic(
        load=0.5, hotspot_fraction=0.4, payload_flits=8,
        warmup_cycles=100, measure_cycles=300,
    )),
)


def observables(config: SimulationConfig, make_workload):
    """Every observable of one run: cycles, summary, per-host flit
    counts, and the kernel's progress counter."""
    network = build_network(config)
    result = run_workload(network, make_workload())
    return (
        result.cycles,
        result.summary(),
        tuple(ni.flits_ejected for ni in network.interfaces),
        network.sim.progress,
    )


def assert_planes_agree(config: SimulationConfig, make_workload):
    packed = observables(config.derived(packed=True), make_workload)
    objects = observables(config.derived(packed=False), make_workload)
    assert packed == objects


class TestWholeSystemDifferential:
    @given(
        architecture=st.sampled_from(list(SwitchArchitecture)),
        mode=st.sampled_from(list(MulticastRoutingMode)),
        seed=st.integers(0, 2 ** 16),
        workload=st.sampled_from(WORKLOADS),
    )
    @settings(max_examples=12, deadline=None)
    def test_packed_matches_object_plane(
        self, architecture, mode, seed, workload
    ):
        _, make_workload = workload
        config = SimulationConfig(
            num_hosts=N,
            switch_architecture=architecture,
            multicast_mode=mode,
            seed=seed,
        )
        assert_planes_agree(config, make_workload)

    @given(
        architecture=st.sampled_from(list(SwitchArchitecture)),
        seed=st.integers(0, 2 ** 16),
        workload=st.sampled_from(WORKLOADS),
    )
    @settings(max_examples=6, deadline=None)
    def test_planes_agree_on_the_dense_kernel_too(
        self, architecture, seed, workload
    ):
        # the packed toggle must be orthogonal to the kernel toggle:
        # together with test_active_set.py this closes the square
        # dense/object == dense/packed == active/packed == active/object
        _, make_workload = workload
        config = SimulationConfig(
            num_hosts=N,
            switch_architecture=architecture,
            dense_kernel=True,
            seed=seed,
        )
        assert_planes_agree(config, make_workload)

    def test_synchronous_replication_matches_object_plane(self):
        # SYNCHRONOUS is only modelled on the input-buffer switch, so it
        # cannot ride the hypothesis sweep above
        config = SimulationConfig(
            num_hosts=N,
            switch_architecture=SwitchArchitecture.INPUT_BUFFER,
            replication=ReplicationMode.SYNCHRONOUS,
            seed=5,
        )
        assert_planes_agree(config, WORKLOADS[2][1])

    def test_self_check_run_matches_object_plane(self):
        config = SimulationConfig(num_hosts=N, self_check=True, seed=9)
        assert_planes_agree(config, WORKLOADS[4][1])

    def test_traced_run_emits_byte_identical_events(self):
        # tracing exercises the packed plane's flit_repr conversion
        # boundary: the per-flit trace stream — not just the end-of-run
        # summary — must be byte-identical to the object plane's
        def traced(packed: bool):
            config = SimulationConfig(num_hosts=N, seed=3, packed=packed)
            tracer = Tracer(enabled=True)
            network = build_network(config, tracer=tracer)
            result = run_workload(network, WORKLOADS[1][1]())
            events = [
                (r.cycle, r.source, r.event, r.details)
                for r in tracer.records
            ]
            return result.cycles, result.summary(), events

        assert traced(packed=True) == traced(packed=False)
