"""Tracer behaviour."""

from __future__ import annotations

from repro.sim.trace import NULL_TRACER, Tracer


class TestTracer:
    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(0, "src", "event", value=1)
        assert t.records == []

    def test_enabled_records(self):
        t = Tracer(enabled=True)
        t.emit(3, "sw0", "flit_in", port=2)
        (record,) = t.records
        assert record.cycle == 3
        assert record.source == "sw0"
        assert record.get("port") == 2
        assert record.get("missing", "x") == "x"

    def test_select_filters(self):
        t = Tracer(enabled=True)
        t.emit(0, "a", "x", k=1)
        t.emit(1, "b", "x", k=2)
        t.emit(2, "a", "y", k=3)
        assert len(list(t.select(event="x"))) == 2
        assert len(list(t.select(source="a"))) == 2
        assert len(list(t.select(event="x", source="a"))) == 1
        assert len(list(t.select(where=lambda r: r.get("k") > 1))) == 2

    def test_counts(self):
        t = Tracer(enabled=True)
        t.emit(0, "a", "x")
        t.emit(0, "a", "x")
        t.emit(0, "a", "y")
        assert t.counts() == {"x": 2, "y": 1}

    def test_limit_drops_oldest(self):
        t = Tracer(enabled=True, limit=3)
        for i in range(5):
            t.emit(i, "a", "e", i=i)
        assert [r.get("i") for r in t.records] == [2, 3, 4]

    def test_dropped_count_tracks_evictions(self):
        t = Tracer(enabled=True, limit=3)
        for i in range(3):
            t.emit(i, "a", "e", i=i)
        assert t.dropped_count == 0  # exactly at the limit: nothing lost
        for i in range(3, 5):
            t.emit(i, "a", "e", i=i)
        assert t.dropped_count == 2
        assert len(t.records) == 3
        # the retained window is always the newest records
        assert [r.get("i") for r in t.records] == [2, 3, 4]

    def test_dropped_count_ignores_disabled_emits(self):
        t = Tracer(enabled=False, limit=1)
        for i in range(5):
            t.emit(i, "a", "e")
        assert t.dropped_count == 0

    def test_clear(self):
        t = Tracer(enabled=True)
        t.emit(0, "a", "x")
        t.clear()
        assert t.records == []

    def test_clear_resets_dropped_count(self):
        t = Tracer(enabled=True, limit=1)
        t.emit(0, "a", "x")
        t.emit(1, "a", "x")
        assert t.dropped_count == 1
        t.clear()
        assert t.dropped_count == 0

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
