"""Kernel: clock, calendar, components, stall detection."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.component import Component
from repro.sim.kernel import Simulator


class Recorder(Component):
    """Records the cycle of every tick."""

    def __init__(self, name: str = "rec") -> None:
        super().__init__(name)
        self.ticks = []

    def tick(self, now: int) -> None:
        self.ticks.append(now)


class Mover(Component):
    """Reports progress for a fixed number of cycles, then goes idle."""

    def __init__(self, active_cycles: int) -> None:
        super().__init__("mover")
        self.active_cycles = active_cycles

    def tick(self, now: int) -> None:
        if now < self.active_cycles:
            self.sim.note_progress()
            self.wake_at(now + 1)


class TestClockAndComponents:
    def test_step_advances_clock(self):
        sim = Simulator()
        assert sim.now == 0
        sim.step()
        assert sim.now == 1

    def test_dense_run_ticks_every_cycle(self):
        sim = Simulator(dense=True)
        rec = sim.add_component(Recorder())
        sim.run(5)
        assert rec.ticks == [0, 1, 2, 3, 4]

    def test_active_run_ticks_only_registration_wake(self):
        # a component that never re-arms is ticked once (the wake placed
        # at registration) and then left dormant
        sim = Simulator()
        rec = sim.add_component(Recorder())
        sim.run(5)
        assert rec.ticks == [0]
        assert sim.now == 5

    def test_self_arming_component_ticks_every_cycle(self):
        class Polling(Recorder):
            def tick(self, now):
                super().tick(now)
                self.wake_at(now + 1)

        sim = Simulator()
        rec = sim.add_component(Polling())
        sim.run(5)
        assert rec.ticks == [0, 1, 2, 3, 4]

    def test_components_tick_in_registration_order(self):
        sim = Simulator()
        order = []

        class Ordered(Component):
            def tick(self, now):
                order.append(self.name)

        sim.add_component(Ordered("a"))
        sim.add_component(Ordered("b"))
        sim.step()
        assert order == ["a", "b"]

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            Simulator().run(-1)

    def test_unattached_component_has_no_sim(self):
        with pytest.raises(RuntimeError):
            Recorder().sim


class TestCalendar:
    def test_event_fires_at_scheduled_cycle(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, lambda: fired.append(sim.now))
        sim.run(5)
        assert fired == [3]

    def test_events_fire_before_component_ticks(self):
        sim = Simulator()
        log = []
        rec = Recorder()

        class Logger(Component):
            def tick(self, now):
                log.append(("tick", now))
                self.wake_at(now + 1)

        sim.add_component(Logger("l"))
        sim.schedule(2, lambda: log.append(("event", sim.now)))
        sim.run(3)
        assert ("event", 2) in log
        assert log.index(("event", 2)) < log.index(("tick", 2))

    def test_same_cycle_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append("first"))
        sim.schedule(1, lambda: fired.append("second"))
        sim.run(2)
        assert fired == ["first", "second"]

    def test_event_scheduled_during_event_same_cycle_runs(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule_at(sim.now, lambda: fired.append("inner"))

        sim.schedule(1, outer)
        sim.run(2)
        assert fired == ["outer", "inner"]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run(3)
        with pytest.raises(ValueError):
            sim.schedule_at(1, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_pending_events_and_next_cycle(self):
        sim = Simulator()
        assert sim.next_event_cycle() is None
        sim.schedule(7, lambda: None)
        sim.schedule(3, lambda: None)
        assert sim.pending_events == 2
        assert sim.next_event_cycle() == 3


class TestRunUntil:
    def test_stops_when_predicate_true(self):
        sim = Simulator()
        sim.add_component(Mover(active_cycles=1_000))
        executed = sim.run_until(lambda: sim.now >= 10, max_cycles=100)
        assert sim.now == 10
        assert executed == 10

    def test_exceeding_max_cycles_raises(self):
        sim = Simulator()
        sim.add_component(Mover(active_cycles=1_000))
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=5)

    def test_stall_detection_raises_deadlock(self):
        sim = Simulator()
        sim.add_component(Mover(active_cycles=3))
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until(lambda: False, max_cycles=1_000, stall_limit=20)

    def test_progress_resets_stall_counter(self):
        sim = Simulator()
        sim.add_component(Mover(active_cycles=50))
        executed = sim.run_until(
            lambda: sim.now >= 40, max_cycles=1_000, stall_limit=20
        )
        assert executed == 40

    def test_pending_event_defers_stall(self):
        sim = Simulator()
        fired = []
        sim.schedule(90, lambda: fired.append(True))
        sim.run_until(lambda: bool(fired), max_cycles=1_000, stall_limit=10)
        assert fired == [True]
