"""Kernel probe lane and profiler hook: replay, clamps, and accounting.

Probes (``sim.add_probe``) are read-only observers serviced at their own
cadence; the active-set kernel must replay sample points that land
inside fast-forwarded idle spans so a probe's record is bit-identical
to the dense kernel's — without the probe ever capping a jump.  The
profiler hook (``sim.attach_profiler``) must account every cycle as
either stepped or skipped, on both kernels.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.obs.profile import KernelProfiler
from repro.sim.component import Component
from repro.sim.kernel import Simulator


class Recorder(Component):
    """Records the cycle of every tick; never re-arms on its own."""

    def __init__(self, name: str = "rec") -> None:
        super().__init__(name)
        self.ticks = []

    def tick(self, now: int) -> None:
        self.ticks.append(now)


class SparseWaker(Recorder):
    """Requests one wake-up per cycle in ``schedule`` at cycle 0."""

    def __init__(self, schedule) -> None:
        super().__init__("sparse")
        self.schedule = sorted(set(schedule))

    def tick(self, now: int) -> None:
        super().tick(now)
        if now == 0:
            for cycle in self.schedule:
                self.wake_at(cycle)


class PeriodicProbe:
    """Samples every ``every`` cycles, recording ``(cycle, sim.now)``."""

    def __init__(self, sim: Simulator, every: int) -> None:
        self.sim = sim
        self.every = every
        self.next_cycle = 0
        self.samples = []

    def sample(self, cycle: int) -> None:
        self.next_cycle = cycle + self.every
        self.samples.append((cycle, self.sim.now))


class StuckProbe:
    """Violates the contract: never advances ``next_cycle``."""

    next_cycle = 0

    def sample(self, cycle: int) -> None:
        pass


class TestProbeReplay:
    def test_samples_inside_fast_forwarded_span(self):
        sim = Simulator()
        sim.add_component(Recorder())
        probe = PeriodicProbe(sim, every=7)
        sim.add_probe(probe)
        sim.run(100)
        # one idle jump from 1 to 100, yet every grid point was observed
        assert [c for c, _ in probe.samples] == list(range(0, 100, 7))

    def test_sample_sees_now_equal_to_sample_cycle(self):
        sim = Simulator()
        sim.add_component(Recorder())
        probe = PeriodicProbe(sim, every=13)
        sim.add_probe(probe)
        sim.run(200)
        # now is temporarily rewound to each replayed sample point, so a
        # clock-reading probe observes exactly what dense stepping shows
        assert all(cycle == seen_now for cycle, seen_now in probe.samples)

    def test_series_identical_to_dense_kernel(self):
        schedule = [3, 40, 41, 97, 412]

        def collect(dense):
            sim = Simulator(seed=1, dense=dense)
            sim.add_component(SparseWaker(schedule))
            probe = PeriodicProbe(sim, every=11)
            sim.add_probe(probe)
            sim.run(500)
            return probe.samples

        assert collect(dense=False) == collect(dense=True)

    def test_past_next_cycle_is_clamped_to_now(self):
        sim = Simulator()
        sim.add_component(Recorder())
        sim.run(50)
        probe = PeriodicProbe(sim, every=10)
        probe.next_cycle = 3  # in the past
        sim.add_probe(probe)
        sim.run(30)
        assert probe.samples[0][0] == 50

    def test_non_advancing_probe_raises(self):
        sim = Simulator()
        sim.add_component(Recorder())
        sim.add_probe(StuckProbe())
        with pytest.raises(SimulationError, match="did not advance"):
            sim.run(10)

    def test_probe_replayed_up_to_stall_trip(self):
        sim = Simulator()
        sim.add_component(Recorder())
        probe = PeriodicProbe(sim, every=5)
        sim.add_probe(probe)
        with pytest.raises(SimulationError, match="suspected deadlock"):
            sim.run_until(lambda: False, max_cycles=10_000, stall_limit=40)
        # the fast-forward that trips the detector still replays the
        # probe grid through the trip cycle, exactly like dense stepping
        assert [c for c, _ in probe.samples] == list(range(0, 40, 5))


class TestProfilerHook:
    def test_every_cycle_is_stepped_or_skipped(self):
        sim = Simulator()
        sim.add_component(SparseWaker([10, 250, 900]))
        prof = KernelProfiler()
        sim.attach_profiler(prof)
        sim.run(1_000)
        assert prof.steps + prof.cycles_skipped == 1_000
        assert prof.fast_forwards > 0
        assert prof.ticks_by_class == {"SparseWaker": 4}

    def test_dense_kernel_never_fast_forwards(self):
        sim = Simulator(dense=True)
        sim.add_component(Recorder())
        prof = KernelProfiler()
        sim.attach_profiler(prof)
        sim.run(100)
        assert prof.steps == 100
        assert prof.cycles_skipped == 0
        assert prof.fast_forwards == 0
        assert prof.ticks_by_class == {"Recorder": 100}

    def test_event_and_backlog_accounting(self):
        sim = Simulator()
        sim.add_component(Recorder())
        fired = []
        sim.schedule(5, lambda: fired.append("a"))
        sim.schedule(5, lambda: fired.append("b"))
        prof = KernelProfiler()
        sim.attach_profiler(prof)
        sim.run(10)
        assert fired == ["a", "b"]
        assert prof.events == 2
        assert prof.backlog_peak >= 0

    def test_detach_stops_recording(self):
        sim = Simulator()
        sim.add_component(SparseWaker([5, 15]))
        prof = KernelProfiler()
        sim.attach_profiler(prof)
        sim.run(10)
        recorded = prof.steps
        sim.attach_profiler(None)
        sim.run(10)
        assert prof.steps == recorded

    def test_profiled_run_matches_unprofiled_ticks(self):
        schedule = [2, 7, 7, 30, 64]

        def ticks(profiled):
            sim = Simulator(seed=3)
            waker = sim.add_component(SparseWaker(schedule))
            if profiled:
                sim.attach_profiler(KernelProfiler())
            sim.run(100)
            return waker.ticks

        assert ticks(profiled=True) == ticks(profiled=False)
