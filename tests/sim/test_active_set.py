"""Differential tests: the active-set kernel against the dense reference.

The active-set kernel (wake calendar + idle-cycle fast-forward, see
``docs/performance.md``) is a pure performance optimisation — every
observable of a run must be bit-identical to the dense kernel that
ticks every component every cycle.  These tests pin that contract from
two directions:

* kernel-level regression tests that fast-forwarding never skips a
  cycle with a pending wake, calendar event, or time mark, and that
  stall detection trips at the exact cycle (and with the exact message)
  the dense kernel would produce; and
* hypothesis-driven whole-system runs — random workloads on both switch
  architectures, both routing modes, and random seeds — asserting the
  two kernels agree on cycle counts, metric summaries, per-host flit
  counts, and the kernel progress counter.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.errors import SimulationError
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.routing.base import MulticastRoutingMode
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.switches.base import ReplicationMode
from repro.traffic.multicast import RandomMulticastStream, SingleMulticast
from repro.traffic.unicast import UniformRandomUnicast


class Recorder(Component):
    """Records the cycle of every tick; never re-arms on its own."""

    def __init__(self, name: str = "rec") -> None:
        super().__init__(name)
        self.ticks = []

    def tick(self, now: int) -> None:
        self.ticks.append(now)


class SparseWaker(Recorder):
    """Requests one wake-up per cycle in ``schedule`` (at registration
    time every component ticks once at cycle 0; the requested wakes are
    armed there)."""

    def __init__(self, schedule) -> None:
        super().__init__("sparse")
        self.schedule = sorted(set(schedule))

    def tick(self, now: int) -> None:
        super().tick(now)
        if now == 0:
            for cycle in self.schedule:
                self.wake_at(cycle)


class TestFastForwardNeverSkips:
    """Fast-forward must land on — not jump over — scheduled activity."""

    def test_idle_run_still_ends_at_exact_target(self):
        sim = Simulator()
        sim.add_component(Recorder())
        sim.run(1_000)
        assert sim.now == 1_000

    @given(schedule=st.sets(st.integers(1, 500), max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_every_requested_wake_is_ticked_exactly_once(self, schedule):
        sim = Simulator()
        waker = sim.add_component(SparseWaker(schedule))
        sim.run(501)
        assert waker.ticks == [0] + sorted(schedule)

    def test_calendar_event_in_idle_gap_fires_at_its_cycle(self):
        sim = Simulator()
        sim.add_component(Recorder())
        fired = []
        sim.schedule(300, lambda: fired.append(sim.now))
        sim.schedule(305, lambda: fired.append(sim.now))
        sim.run(1_000)
        assert fired == [300, 305]
        assert sim.now == 1_000

    def test_event_waking_a_component_ticks_it_that_cycle(self):
        # events run before ticks, so a wake placed by an event for the
        # current cycle is honoured immediately — even when the kernel
        # fast-forwarded straight to the event cycle
        sim = Simulator()
        rec = sim.add_component(Recorder())
        sim.schedule(400, lambda: sim.wake(rec, sim.now))
        sim.run(1_000)
        assert rec.ticks == [0, 400]

    def test_time_mark_rechecks_now_based_predicate(self):
        # without the mark nothing is scheduled at cycle 37, so the
        # fast-forward would jump straight past the predicate's threshold
        sim = Simulator()
        sim.add_component(Recorder())
        sim.mark_time(37)
        executed = sim.run_until(lambda: sim.now >= 37, max_cycles=10_000)
        assert sim.now == 37
        assert executed == 37

    def test_dense_agrees_on_time_marked_predicate(self):
        sim = Simulator(dense=True)
        sim.add_component(Recorder())
        sim.mark_time(37)  # no-op on the dense kernel
        executed = sim.run_until(lambda: sim.now >= 37, max_cycles=10_000)
        assert (sim.now, executed) == (37, 37)


class TestStallDetectionParity:
    """Skipped idle cycles count exactly as if they had been stepped."""

    @staticmethod
    def _stall(dense: bool, event_cycle=None):
        sim = Simulator(dense=dense)
        sim.add_component(Recorder())
        if event_cycle is not None:
            sim.schedule(event_cycle, lambda: None)
        with pytest.raises(SimulationError) as err:
            sim.run_until(lambda: False, max_cycles=100_000, stall_limit=50)
        return sim.now, str(err.value)

    def test_plain_stall_trips_at_identical_cycle_and_message(self):
        assert self._stall(dense=True) == self._stall(dense=False)

    def test_far_future_noop_event_defers_stall_identically(self):
        # a no-op calendar event far in the future excuses the idle gap
        # before it, but the detector must still trip stall_limit idle
        # cycles after it fires — on both kernels, with the same message
        dense = self._stall(dense=True, event_cycle=10_000)
        active = self._stall(dense=False, event_cycle=10_000)
        assert dense == active
        cycle, _ = active
        assert cycle == 10_000 + 50 + 1  # event cycle + stall_limit + step


N = 16

#: (label, workload factory) — factories because workloads are stateful
#: and each kernel flavour needs a fresh instance
WORKLOADS = (
    ("low-load-unicast", lambda: UniformRandomUnicast(
        load=0.01, payload_flits=8,
        warmup_cycles=100, measure_cycles=600,
    )),
    ("hot-unicast", lambda: UniformRandomUnicast(
        load=0.6, payload_flits=8,
        warmup_cycles=100, measure_cycles=400,
    )),
    ("hw-multicast", lambda: SingleMulticast(
        source=3, degree=9, payload_flits=24,
        scheme=MulticastScheme.HARDWARE,
    )),
    ("sw-multicast", lambda: SingleMulticast(
        source=1, degree=6, payload_flits=16,
        scheme=MulticastScheme.SOFTWARE,
    )),
    ("mcast-stream", lambda: RandomMulticastStream(
        ops_per_host_per_kilocycle=0.5, degree=5, payload_flits=16,
        scheme=MulticastScheme.HARDWARE,
        warmup_cycles=100, measure_cycles=500,
    )),
)


def observables(config: SimulationConfig, make_workload):
    """Every observable of one run: cycles, summary, per-host flit
    counts, and the kernel's progress counter."""
    network = build_network(config)
    result = run_workload(network, make_workload())
    return (
        result.cycles,
        result.summary(),
        tuple(ni.flits_ejected for ni in network.interfaces),
        network.sim.progress,
    )


def assert_kernels_agree(config: SimulationConfig, make_workload):
    dense = observables(config.derived(dense_kernel=True), make_workload)
    active = observables(config.derived(dense_kernel=False), make_workload)
    assert dense == active


class TestWholeSystemDifferential:
    @given(
        architecture=st.sampled_from(list(SwitchArchitecture)),
        mode=st.sampled_from(list(MulticastRoutingMode)),
        seed=st.integers(0, 2**16),
        workload=st.sampled_from(WORKLOADS),
    )
    @settings(max_examples=12, deadline=None)
    def test_active_set_matches_dense(
        self, architecture, mode, seed, workload
    ):
        _, make_workload = workload
        config = SimulationConfig(
            num_hosts=N,
            switch_architecture=architecture,
            multicast_mode=mode,
            seed=seed,
        )
        assert_kernels_agree(config, make_workload)

    def test_synchronous_replication_matches_dense(self):
        # SYNCHRONOUS is only modelled on the input-buffer switch, so it
        # cannot ride the hypothesis sweep above
        config = SimulationConfig(
            num_hosts=N,
            switch_architecture=SwitchArchitecture.INPUT_BUFFER,
            replication=ReplicationMode.SYNCHRONOUS,
            seed=5,
        )
        assert_kernels_agree(config, WORKLOADS[2][1])

    def test_self_check_run_matches_dense(self):
        config = SimulationConfig(num_hosts=N, self_check=True, seed=9)
        assert_kernels_agree(config, WORKLOADS[4][1])
