"""Statistics accumulators."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    Histogram,
    RateCounter,
    RunningStats,
    TimeWeightedAverage,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.min == 5.0 == s.max
        assert s.stddev == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_statistics_module(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.count == len(values)
        assert s.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert s.variance == pytest.approx(
            statistics.variance(values), abs=1e-4, rel=1e-6
        )
        assert s.min == min(values)
        assert s.max == max(values)

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, left, right):
        merged = RunningStats()
        merged.extend(left)
        other = RunningStats()
        other.extend(right)
        merged.merge(other)
        direct = RunningStats()
        direct.extend(left + right)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, abs=1e-6, rel=1e-9)
        assert merged.variance == pytest.approx(
            direct.variance, abs=1e-3, rel=1e-6
        )

    def test_merge_with_empty_is_identity(self):
        s = RunningStats()
        s.extend([1.0, 2.0])
        s.merge(RunningStats())
        assert s.count == 2
        empty = RunningStats()
        empty.merge(s)
        assert empty.mean == s.mean


class TestHistogram:
    def test_binning(self):
        h = Histogram(bin_width=10)
        for v in (0, 5, 9.99, 10, 25):
            h.add(v)
        bins = dict((edge, n) for edge, n in h.nonzero_bins())
        assert bins[10.0] == 3
        assert bins[20.0] == 1
        assert bins[30.0] == 1

    def test_overflow(self):
        h = Histogram(bin_width=1, max_bins=10)
        h.add(100)
        assert h.overflow == 1
        assert h.count == 1

    def test_percentile(self):
        h = Histogram(bin_width=1)
        for v in range(100):
            h.add(v)
        assert h.percentile(0.5) == pytest.approx(50, abs=1)
        assert h.percentile(1.0) == pytest.approx(100, abs=1)

    def test_percentile_empty_is_none(self):
        assert Histogram().percentile(0.5) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0)
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)


class TestRateCounter:
    def test_rate(self):
        c = RateCounter()
        c.add(10)
        assert c.rate(5) == 2.0

    def test_zero_elapsed(self):
        c = RateCounter()
        c.add()
        assert c.rate(0) == 0.0


class TestTimeWeightedAverage:
    def test_constant_signal(self):
        t = TimeWeightedAverage(initial=3.0)
        assert t.average(10) == 3.0

    def test_step_signal(self):
        t = TimeWeightedAverage()
        t.update(5, 10.0)  # 0 for 5 cycles, then 10
        assert t.average(10) == pytest.approx(5.0)
        assert t.peak == 10.0

    def test_time_must_not_go_backward(self):
        t = TimeWeightedAverage()
        t.update(5, 1.0)
        with pytest.raises(ValueError):
            t.update(4, 2.0)
