"""Pure-functional worm tracing: coverage and shape properties."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.path_model import trace_worm
from repro.flits.destset import DestinationSet
from repro.routing.base import MulticastRoutingMode
from repro.routing.reachability import tables_for_bmin, tables_for_umin
from repro.routing.updown import tables_for_irregular
from repro.topology.bmin import BidirectionalMin
from repro.topology.irregular import IrregularNetwork
from repro.topology.umin import UnidirectionalMin

BMIN = BidirectionalMin(4, 3)
BMIN_TABLES = tables_for_bmin(BMIN)
MODES = list(MulticastRoutingMode)


def bmin_case(source, ids, mode=MulticastRoutingMode.TURNAROUND):
    destinations = DestinationSet.from_ids(64, ids)
    return trace_worm(
        BMIN.topology, BMIN_TABLES, source, destinations, mode=mode
    )


class TestBminCoverage:
    @given(
        source=st.integers(0, 63),
        ids=st.sets(st.integers(0, 63), min_size=1, max_size=20),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=120, deadline=None)
    def test_delivers_exactly_the_destination_set(self, source, ids, mode):
        ids.discard(source)
        if not ids:
            return
        result = bmin_case(source, ids, mode)
        assert result.delivered == DestinationSet.from_ids(64, ids)

    @given(
        source=st.integers(0, 63),
        ids=st.sets(st.integers(0, 63), min_size=1, max_size=20),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_link_crossed_twice(self, source, ids, mode):
        """A worm's replication tree never reuses a directed link."""
        ids.discard(source)
        if not ids:
            return
        result = bmin_case(source, ids, mode)
        assert max(result.link_load().values()) == 1

    def test_unicast_path_length_matches_min_hops(self):
        for source, dest in ((0, 1), (0, 5), (0, 21), (0, 63)):
            result = bmin_case(source, [dest])
            assert result.max_depth == BMIN.min_switch_hops(source, dest)

    def test_broadcast_reaches_all(self):
        everyone = set(range(64)) - {7}
        result = bmin_case(7, everyone)
        assert len(result.delivered) == 63

    def test_turnaround_depth_is_lca_bound(self):
        """The deepest branch visits 2*lca+1 switches."""
        ids = {1, 17, 63}
        result = bmin_case(0, ids)
        lca = BMIN.lca_level([0, 1, 17, 63])
        assert result.max_depth == 2 * lca + 1


class TestRoutingModesDiffer:
    def test_branch_on_up_delivers_near_destinations_shallow(self):
        """In BRANCH_ON_UP the near destination branches off before the
        LCA, so total switch visits shrink."""
        ids = {1, 63}  # one local, one far
        turnaround = bmin_case(0, ids, MulticastRoutingMode.TURNAROUND)
        branchy = bmin_case(0, ids, MulticastRoutingMode.BRANCH_ON_UP)
        assert len(branchy.switches) <= len(turnaround.switches)
        assert branchy.delivered == turnaround.delivered


class TestUmin:
    UMIN = UnidirectionalMin(4, 2)
    TABLES = tables_for_umin(UMIN)

    @given(
        source=st.integers(0, 15),
        ids=st.sets(st.integers(0, 15), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage(self, source, ids):
        ids.discard(source)
        if not ids:
            return
        destinations = DestinationSet.from_ids(16, ids)
        result = trace_worm(
            self.UMIN.topology, self.TABLES, source, destinations
        )
        assert result.delivered == destinations

    def test_depth_is_stage_count(self):
        destinations = DestinationSet.from_ids(16, [3, 9])
        result = trace_worm(
            self.UMIN.topology, self.TABLES, 0, destinations
        )
        assert result.max_depth == self.UMIN.stages


class TestIrregular:
    NET = IrregularNetwork(8, 2, 8, extra_links=3, seed=11)
    TABLES = tables_for_irregular(NET)

    @given(
        source=st.integers(0, 15),
        ids=st.sets(st.integers(0, 15), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage(self, source, ids):
        ids.discard(source)
        if not ids:
            return
        destinations = DestinationSet.from_ids(16, ids)
        result = trace_worm(
            self.NET.topology, self.TABLES, source, destinations
        )
        assert result.delivered == destinations
