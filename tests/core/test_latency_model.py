"""Closed-form latency models, cross-checked against the simulator."""

from __future__ import annotations

import pytest

from repro.core.latency_model import (
    hardware_multicast_zero_load,
    software_multicast_phase_count,
    software_multicast_zero_load,
    unicast_zero_load,
)
from repro.core.schemes import MulticastScheme
from repro.network.builder import build_network
from repro.network.config import SimulationConfig
from repro.network.simulation import run_workload
from repro.topology.bmin import BidirectionalMin
from repro.traffic.multicast import SingleMulticast
from repro.traffic.unicast import PermutationTraffic


class TestFormulas:
    def test_unicast_zero_hops(self):
        # source and destination on the same switch: one link in, one out
        assert unicast_zero_load(
            hops=1, size_flits=10, link_latency=1, routing_delay=0,
            header_flits=1,
        ) == 2 + 9

    def test_hardware_equals_unicast_of_deepest_branch(self):
        assert hardware_multicast_zero_load(5, 33) == unicast_zero_load(5, 33)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            unicast_zero_load(-1, 4)

    def test_phase_count(self):
        assert software_multicast_phase_count(0) == 0
        assert software_multicast_phase_count(1) == 1
        assert software_multicast_phase_count(3) == 2
        assert software_multicast_phase_count(7) == 3
        assert software_multicast_phase_count(8) == 4
        with pytest.raises(ValueError):
            software_multicast_phase_count(-1)

    def test_software_slower_than_hardware(self):
        bmin = BidirectionalMin(4, 3)
        dests = [8, 16, 24, 32, 40, 48, 56]
        hops = {
            (a, b): bmin.min_switch_hops(a, b)
            for a in [0] + dests
            for b in [0] + dests
        }
        sw = software_multicast_zero_load(
            0, dests, hops, size_flits=33, send_overhead=40, recv_overhead=40
        )
        hw = hardware_multicast_zero_load(5, 33, send_overhead=40)
        assert sw > 2 * hw


class TestAgreementWithSimulator:
    """The flit simulator must land on the analytic numbers at zero load."""

    def test_hardware_multicast_matches_exactly(self):
        cfg = SimulationConfig(num_hosts=16, self_check=True)
        network = build_network(cfg)
        dests = [5, 7, 8, 11]
        workload = SingleMulticast(
            source=0, destinations=dests, payload_flits=32,
            scheme=MulticastScheme.HARDWARE,
        )
        result = run_workload(network, workload)
        (op,) = result.collector.completed_operations()
        bmin = network.topology_object
        lca = bmin.lca_level([0] + dests)
        header = network.encoding.header_flits(op.destinations)
        expected = hardware_multicast_zero_load(
            max_hops=2 * lca + 1,
            size_flits=header + 32,
            link_latency=cfg.link_latency,
            routing_delay=cfg.routing_delay,
            header_flits=header,
            send_overhead=cfg.sw_send_overhead,
        )
        assert op.last_latency == expected

    def test_unicast_permutation_matches(self):
        """Neighbour swap (h <-> h^1) keeps every flow on its own leaf
        switch with no shared links, so all 16 latencies equal the model."""
        cfg = SimulationConfig(num_hosts=16, self_check=True)
        network = build_network(cfg)
        mapping = [h ^ 1 for h in range(16)]
        result = run_workload(
            network, PermutationTraffic(payload_flits=16, permutation=mapping)
        )
        stats = result.unicast_latency
        assert stats.count == 16
        header = network.unicast_header_flits()
        expected = unicast_zero_load(
            hops=1,  # partners share their leaf switch
            size_flits=header + 16,
            link_latency=cfg.link_latency,
            routing_delay=cfg.routing_delay,
            header_flits=header,
            send_overhead=cfg.sw_send_overhead,
        )
        assert stats.min == stats.max == expected

    def test_software_multicast_close_to_model(self):
        cfg = SimulationConfig(num_hosts=64, self_check=True)
        network = build_network(cfg)
        dests = [8, 16, 24, 32]
        workload = SingleMulticast(
            source=0, destinations=dests, payload_flits=32,
            scheme=MulticastScheme.SOFTWARE,
        )
        result = run_workload(network, workload)
        (op,) = result.collector.completed_operations()
        bmin = network.topology_object
        hops = {
            (a, b): bmin.min_switch_hops(a, b)
            for a in [0] + dests
            for b in [0] + dests
        }
        header = network.unicast_header_flits()
        expected = software_multicast_zero_load(
            0, dests, hops,
            size_flits=header + 32,
            link_latency=cfg.link_latency,
            routing_delay=cfg.routing_delay,
            header_flits=header,
            send_overhead=cfg.sw_send_overhead,
            recv_overhead=cfg.sw_recv_overhead,
        )
        # the model ignores NI hand-off cycles; allow one per tree level
        assert op.last_latency == pytest.approx(expected, abs=6)
