"""Static contention analysis, including the U-MIN phase property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.contention import (
    binomial_phases,
    flow_link_load,
    multicast_link_load,
    phase_conflicts,
    unicast_links,
)
from repro.routing.reachability import tables_for_bmin
from repro.topology.bmin import BidirectionalMin

BMIN = BidirectionalMin(4, 3)
TABLES = tables_for_bmin(BMIN)


class TestBinomialPhases:
    def test_doc_example(self):
        phases = binomial_phases(0, [1, 2, 3])
        assert [sorted(p) for p in phases] == [[(0, 2)], [(0, 1), (2, 3)]]

    def test_phase_count_is_logarithmic(self):
        phases = binomial_phases(0, list(range(1, 64)))
        assert len(phases) == 6  # ceil(log2(64))

    def test_every_destination_receives_once(self):
        phases = binomial_phases(3, [0, 1, 2, 4, 5, 9])
        receivers = [r for phase in phases for _, r in phase]
        assert sorted(receivers) == [0, 1, 2, 4, 5, 9]

    def test_senders_informed_before_sending(self):
        phases = binomial_phases(0, list(range(1, 16)))
        informed = {0}
        for phase in phases:
            for sender, _receiver in phase:
                assert sender in informed
            for _sender, receiver in phase:
                informed.add(receiver)

    def test_phase_sizes_double(self):
        phases = binomial_phases(0, list(range(1, 16)))
        assert [len(p) for p in phases] == [1, 2, 4, 8]


class TestUnicastLinks:
    def test_same_leaf_single_link(self):
        # only switch output links are counted: one leaf switch, one
        # host-facing port
        links = unicast_links(BMIN.topology, TABLES, 0, 1)
        assert len(links) == 1

    def test_path_length_matches_hops(self):
        for source, dest in ((0, 1), (0, 5), (0, 63)):
            links = unicast_links(BMIN.topology, TABLES, source, dest)
            hops = BMIN.min_switch_hops(source, dest)
            # a path over h switches crosses h outgoing switch links
            assert len(links) == hops

    def test_deterministic(self):
        a = unicast_links(BMIN.topology, TABLES, 3, 42)
        b = unicast_links(BMIN.topology, TABLES, 3, 42)
        assert a == b


class TestUminPhaseProperty:
    def test_broadcast_from_zero_is_contention_free(self):
        """The U-MIN claim (ref [38]): with id-sorted halving, the
        unicasts of each phase use disjoint links."""
        conflicts = phase_conflicts(
            BMIN.topology, TABLES, 0, list(range(1, 64))
        )
        assert conflicts == [1] * len(conflicts)

    @pytest.mark.parametrize("source", [0, 16, 63])
    def test_broadcast_from_any_corner(self, source):
        destinations = [h for h in range(64) if h != source]
        conflicts = phase_conflicts(
            BMIN.topology, TABLES, source, destinations
        )
        # halving is nearly aligned for any source: no phase ever stacks
        # more than 2 flows on a link
        assert max(conflicts) <= 2

    @given(
        st.sets(st.integers(0, 63), min_size=2, max_size=24),
        st.integers(0, 63),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_load_equals_sum_of_path_lengths(self, dests, source):
        dests.discard(source)
        if not dests:
            return
        phases = binomial_phases(source, sorted(dests))
        flows = [flow for phase in phases for flow in phase]
        load = flow_link_load(BMIN.topology, TABLES, flows)
        total = sum(load.values())
        expected = sum(
            BMIN.min_switch_hops(s, d) for s, d in flows
        )
        assert total == expected


class TestMulticastFootprint:
    def test_single_worm_loads_each_link_once(self):
        load = multicast_link_load(
            BMIN.topology, TABLES, [(0, [5, 21, 42])]
        )
        assert set(load.values()) == {1}

    def test_hardware_footprint_smaller_than_software(self):
        """One worm tree crosses far fewer links than the binomial
        unicasts covering the same destination set."""
        dests = [1, 9, 17, 25, 33, 41, 49, 57]
        worm = multicast_link_load(BMIN.topology, TABLES, [(0, dests)])
        flows = [
            flow for phase in binomial_phases(0, dests) for flow in phase
        ]
        software = flow_link_load(BMIN.topology, TABLES, flows)
        assert sum(worm.values()) < sum(software.values())

    def test_overlapping_worms_stack(self):
        operations = [(0, [40, 41]), (1, [40, 41])]
        load = multicast_link_load(BMIN.topology, TABLES, operations)
        assert max(load.values()) <= 2
        assert sum(load.values()) > 0
