"""Host NI: injection pacing, ejection protocol, reassembly hand-off."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.flit import Flit
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.host.interface import HostInterface
from repro.sim.kernel import Simulator
from repro.switches.link import Link


def make_worm(dest=1, payload=4, universe=4, source=0):
    destinations = DestinationSet.single(universe, dest)
    message = Message(0, source, destinations, payload,
                      TrafficClass.UNICAST, 0)
    packet = Packet(0, message, destinations, 1, payload)
    return Worm.root(packet)


def rig(host_id=1):
    """An NI with both links wired to test stubs."""
    sim = Simulator()
    ni = HostInterface(host_id)
    sim.add_component(ni)
    out_link = Link("ni->sw")
    out_link.set_credits(4)  # pretend switch fifo
    in_link = Link("sw->ni")
    ni.connect_out(out_link)
    ni.connect_in(in_link)
    return sim, ni, out_link, in_link


class TestInjection:
    def test_one_flit_per_cycle(self):
        sim, ni, out_link, _ = rig()
        worm = make_worm(payload=9)  # 10 flits
        ni.enqueue(worm)
        sim.run(3)
        assert out_link.flits_sent == 3

    def test_injected_cycle_recorded(self):
        sim, ni, out_link, _ = rig()
        worm = make_worm()
        ni.enqueue(worm)
        sim.run(1)
        assert worm.packet.injected_cycle == 0

    def test_blocked_by_credits(self):
        sim, ni, out_link, _ = rig()
        ni.enqueue(make_worm(payload=9))
        sim.run(10)  # only 4 credits, never returned
        assert out_link.flits_sent == 4
        assert ni.injection_backlog == 1

    def test_fifo_across_worms(self):
        sim, ni, out_link, _ = rig()
        a = make_worm(payload=1)  # 2 flits
        b = make_worm(payload=1)
        ni.enqueue(a)
        ni.enqueue(b)
        sim.run(10)
        sent = [flit.worm for flit in out_link.receive(20)]
        assert sent == [a, a, b, b]

    def test_idle_reflects_backlog(self):
        sim, ni, _, _ = rig()
        assert ni.idle()
        ni.enqueue(make_worm())
        assert not ni.idle()


class TestEjection:
    def feed(self, sim, in_link, worm):
        """Stream the worm in, stepping the sim so credits recirculate."""
        sent = 0
        for _ in range(4 * worm.size_flits + 8):
            if sent < worm.size_flits and in_link.can_send(sim.now):
                in_link.send(sim.now, Flit(worm, sent))
                sent += 1
            sim.step()
            if sent == worm.size_flits:
                break
        sim.run(3)

    def test_delivers_on_tail(self):
        sim, ni, _, in_link = rig(host_id=1)
        deliveries = []
        ni.on_delivery(lambda worm, now: deliveries.append((worm, now)))
        worm = make_worm(dest=1, payload=3)
        self.feed(sim, in_link, worm)
        assert len(deliveries) == 1
        assert deliveries[0][0] is worm

    def test_counts_flits(self):
        sim, ni, _, in_link = rig()
        worm = make_worm(dest=1, payload=5)
        self.feed(sim, in_link, worm)
        assert ni.flits_ejected == worm.size_flits

    def test_rejects_wrong_destination(self):
        sim, ni, _, in_link = rig(host_id=1)
        stray = make_worm(dest=2)
        with pytest.raises(ProtocolError):
            self.feed(sim, in_link, stray)

    def test_rejects_multidestination_delivery(self):
        sim, ni, _, in_link = rig(host_id=1)
        destinations = DestinationSet.from_ids(4, [1, 2])
        message = Message(0, 0, destinations, 3, TrafficClass.MULTICAST, 0)
        packet = Packet(0, message, destinations, 1, 3)
        with pytest.raises(ProtocolError):
            self.feed(sim, in_link, Worm.root(packet))

    def test_rejects_headless_body(self):
        sim, ni, _, in_link = rig(host_id=1)
        worm = make_worm(dest=1, payload=3)
        in_link.send(0, Flit(worm, 2))
        with pytest.raises(ProtocolError):
            sim.run(3)

    def test_credits_returned_promptly(self):
        sim, ni, _, in_link = rig()
        worm = make_worm(dest=1, payload=20)
        # send as fast as credits allow; NI returns credits immediately so
        # the stream never stalls
        sent = 0
        for cycle in range(60):
            if sent < worm.size_flits and in_link.can_send(cycle):
                in_link.send(cycle, Flit(worm, sent))
                sent += 1
            sim.step()
        assert sent == worm.size_flits


class TestWiring:
    def test_double_wire_rejected(self):
        _, ni, out_link, in_link = rig()
        with pytest.raises(ProtocolError):
            ni.connect_out(Link("x"))
        with pytest.raises(ProtocolError):
            ni.connect_in(Link("y"))


class TestRxDepth:
    def test_deeper_rx_fifo_unthrottles_long_links(self):
        """With 3-cycle links the default 4-credit FIFO cannot cover the
        credit round trip; a deeper FIFO restores full-rate ejection."""
        from repro.network.builder import build_network
        from repro.network.config import SimulationConfig
        from repro.flits.packet import TrafficClass

        def latency(rx_depth):
            config = SimulationConfig(
                num_hosts=16, link_latency=3, ni_rx_depth=rx_depth,
                sw_send_overhead=0,
            )
            network = build_network(config)
            network.sim.schedule_at(
                0, lambda: network.nodes[0].post_unicast(15, 40)
            )
            network.sim.run_until(
                lambda: network.collector.outstanding_messages == 0
                and network.collector.messages_created == 1,
                max_cycles=60_000,
            )
            return network.collector.classes[
                TrafficClass.UNICAST
            ].latency.mean

        assert latency(16) < latency(4)

    def test_invalid_depth_rejected(self):
        import pytest as _pytest
        from repro.errors import ProtocolError
        with _pytest.raises(ProtocolError):
            HostInterface(0, rx_depth=0)
