"""Host node: CPU model, segmentation, scheme dispatch."""

from __future__ import annotations

import pytest

from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError
from repro.flits.destset import DestinationSet
from repro.flits.packet import TrafficClass
from repro.host.node import HostParams
from repro.network.builder import build_network
from repro.network.config import EncodingKind, SimulationConfig


def mini(**overrides):
    defaults = dict(num_hosts=16, self_check=True)
    defaults.update(overrides)
    return build_network(SimulationConfig(**defaults))


def at(network, cycle, fn):
    network.sim.schedule_at(cycle, fn)


class TestHostParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HostParams(sw_send_overhead=-1).validate()
        with pytest.raises(ConfigurationError):
            HostParams(max_packet_payload_flits=0).validate()


class TestCpuModel:
    def test_send_overhead_delays_injection(self):
        network = mini(sw_send_overhead=25)
        node = network.nodes[0]
        at(network, 0, lambda: node.post_unicast(5, 8))
        network.sim.run(1)
        assert node.cpu_busy_until == 25
        # nothing on the wire before the overhead elapses
        network.sim.run(20)
        assert network.interfaces[0].flits_injected == 0
        network.sim.run(10)
        assert network.interfaces[0].flits_injected > 0

    def test_sends_serialize_on_cpu(self):
        network = mini(sw_send_overhead=30)
        node = network.nodes[0]

        def burst():
            node.post_unicast(5, 8)
            node.post_unicast(6, 8)

        at(network, 0, burst)
        network.sim.run(1)
        assert node.cpu_busy_until == 60

    def test_multi_packet_message_pays_per_packet(self):
        network = mini(sw_send_overhead=10, max_packet_payload_flits=16)
        node = network.nodes[0]
        at(network, 0, lambda: node.post_unicast(5, 40))  # 3 packets
        network.sim.run(1)
        assert node.cpu_busy_until == 30

    def test_zero_overhead_injects_next_cycle(self):
        network = mini(sw_send_overhead=0)
        node = network.nodes[0]
        at(network, 0, lambda: node.post_unicast(5, 8))
        network.sim.run(2)
        assert network.interfaces[0].flits_injected > 0


class TestSendApi:
    def test_unicast_traffic_class(self):
        network = mini(sw_send_overhead=0)
        at(network, 0, lambda: network.nodes[0].post_unicast(3, 8))
        network.sim.run_until(
            lambda: network.collector.outstanding_messages == 0
            and network.collector.messages_created == 1,
            max_cycles=5_000,
        )
        assert network.collector.classes[TrafficClass.UNICAST].deliveries == 1

    def test_multicast_excludes_source_automatically(self):
        network = mini(sw_send_overhead=0)
        dests = DestinationSet.from_ids(16, [0, 1, 2])

        def fire():
            op = network.nodes[0].post_multicast(
                dests, 8, MulticastScheme.HARDWARE
            )
            assert 0 not in op.destinations

        at(network, 0, fire)
        network.sim.run(1)

    def test_multicast_to_only_self_rejected(self):
        network = mini()
        dests = DestinationSet.single(16, 0)
        with pytest.raises(ConfigurationError):
            network.nodes[0].post_multicast(dests, 8, MulticastScheme.HARDWARE)

    def test_multiport_encoding_splits_phases(self):
        network = mini(encoding=EncodingKind.MULTIPORT, sw_send_overhead=0)
        dests = DestinationSet.from_ids(16, [1, 6])  # not a product set

        def fire():
            network.nodes[0].post_multicast(
                dests, 8, MulticastScheme.HARDWARE
            )

        at(network, 0, fire)
        network.sim.run(2)
        assert network.collector.messages_created == 2

    def test_software_multicast_spawns_forwards(self):
        network = mini(sw_send_overhead=0, sw_recv_overhead=0)
        dests = DestinationSet.from_ids(16, [1, 2, 3])

        def fire():
            network.nodes[0].post_multicast(
                dests, 8, MulticastScheme.SOFTWARE
            )

        at(network, 0, fire)
        network.sim.run_until(
            lambda: network.collector.outstanding_operations == 0
            and network.collector.operations_created == 1,
            max_cycles=20_000,
        )
        # binomial over 3 destinations: 3 unicast hops in total
        stats = network.collector.classes[TrafficClass.SW_MULTICAST]
        assert stats.deliveries == 3


class TestSegmentedMessages:
    def test_long_message_reassembled(self):
        network = mini(sw_send_overhead=0, max_packet_payload_flits=16)
        at(network, 0, lambda: network.nodes[0].post_unicast(9, 50))
        network.sim.run_until(
            lambda: network.collector.outstanding_messages == 0
            and network.collector.messages_created == 1,
            max_cycles=20_000,
        )
        stats = network.collector.classes[TrafficClass.UNICAST]
        assert stats.deliveries == 1
        assert stats.payload_flits == 50

    def test_long_multicast_reassembled_everywhere(self):
        network = mini(sw_send_overhead=0, max_packet_payload_flits=16)
        dests = DestinationSet.from_ids(16, [3, 7, 12])

        def fire():
            network.nodes[0].post_multicast(
                dests, 40, MulticastScheme.HARDWARE
            )

        at(network, 0, fire)
        network.sim.run_until(
            lambda: network.collector.outstanding_operations == 0
            and network.collector.operations_created == 1,
            max_cycles=20_000,
        )
        (op,) = network.collector.completed_operations()
        assert sorted(op.arrival_cycles) == [3, 7, 12]
