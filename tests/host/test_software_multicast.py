"""Binomial schedule properties."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.host.software_multicast import binomial_schedule


def phases_of(schedule, source):
    """Longest chain of forwards, counting serialized sends at each host."""
    def finish_depth(host, start_phase):
        children = schedule.get(host, [])
        deepest = start_phase
        for index, child in enumerate(children):
            child_start = start_phase + index + 1
            deepest = max(deepest, finish_depth(child, child_start))
        return deepest

    return finish_depth(source, 0)


class TestSchedule:
    def test_doc_example(self):
        assert binomial_schedule(0, [1, 2, 3, 4, 5, 6, 7]) == {
            0: [4, 2, 1],
            4: [6, 5],
            2: [3],
            6: [7],
        }

    def test_single_destination(self):
        assert binomial_schedule(0, [5]) == {0: [5]}

    def test_empty_destinations(self):
        assert binomial_schedule(0, []) == {}

    @given(
        st.sets(st.integers(0, 63), min_size=1, max_size=40),
        st.integers(0, 63),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_destination_received_exactly_once(self, dests, source):
        dests.discard(source)
        if not dests:
            return
        schedule = binomial_schedule(source, sorted(dests))
        received = [
            child for children in schedule.values() for child in children
        ]
        assert sorted(received) == sorted(dests)

    @given(
        st.sets(st.integers(0, 255), min_size=1, max_size=128),
        st.integers(0, 255),
    )
    @settings(max_examples=60, deadline=None)
    def test_senders_already_hold_the_message(self, dests, source):
        dests.discard(source)
        if not dests:
            return
        schedule = binomial_schedule(source, sorted(dests))
        informed = {source}
        # replay in phase order: a sender must be informed before sending
        remaining = {
            host: list(children) for host, children in schedule.items()
        }
        progress = True
        while any(remaining.values()):
            assert progress, "schedule contains an uninformed sender"
            progress = False
            for host in list(remaining):
                if host in informed and remaining[host]:
                    informed.add(remaining[host].pop(0))
                    progress = True

    @given(st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_phase_count_is_logarithmic(self, degree):
        dests = list(range(1, degree + 1))
        schedule = binomial_schedule(0, dests)
        assert phases_of(schedule, 0) == math.ceil(math.log2(degree + 1))

    def test_sorted_halving_respects_subtree_locality(self):
        """The first split of a sorted list separates the two halves of the
        id space, so simultaneous sends traverse disjoint subtrees."""
        schedule = binomial_schedule(0, list(range(1, 16)))
        first_forward = schedule[0][0]
        assert first_forward == 8
