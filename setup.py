"""Setuptools shim.

The pinned toolchain on some offline hosts lacks the ``wheel`` package
that PEP 660 editable installs require; this shim lets
``pip install -e . --no-build-isolation`` (or ``--no-use-pep517``) fall
back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
