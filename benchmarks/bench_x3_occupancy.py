"""X3 extension: central-buffer occupancy by switch level.

Quantifies what the buffer-sharing argument rests on: under bimodal
traffic the buffers do real work at every level (most at the leaves,
which carry both directions of every worm), and hardware multicast's
extra occupancy — worms always transit the central buffer — stays modest.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.extensions import run_buffer_occupancy


def run():
    return run_buffer_occupancy(
        scale=BENCH, jobs=JOBS, num_hosts=64, load=0.3, degree=8,
    )


def test_x3_occupancy(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    hw = {r["level"]: r["occupancy"] for r in result.rows
          if r["scheme"] == "cb-hw"}
    sw = {r["level"]: r["occupancy"] for r in result.rows
          if r["scheme"] == "sw"}
    assert set(hw) == {0, 1, 2}

    # buffers are busiest toward the leaves and quietest at the roots
    assert hw[0] > hw[2]
    assert sw[0] > sw[2]
    # occupancy stays far below capacity (256 chunks): sharing headroom
    assert all(value < 64 for value in hw.values())
    # hardware multicast consumes at most ~3x the software scheme's
    # buffering at any level (worms transit the buffer by design)
    for level in hw:
        assert hw[level] < 3 * max(sw[level], 0.5)
