"""E6: pure unicast — central vs. input buffer organisation.

Paper shape (after refs [36, 37]): both organisations match at low load;
head-of-line blocking makes the input-buffer switch's latency blow up
earlier as load rises, while accepted throughput stays comparable below
saturation.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.unicast_baseline import run_unicast_baseline

LOADS = (0.15, 0.35, 0.55)


def run():
    return run_unicast_baseline(
        scale=BENCH, jobs=JOBS, num_hosts=64, loads=LOADS, payload_flits=32
    )


def test_e6_unicast_baseline(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    cb = [v for _, v in result.series("load", "latency", scheme="cb-hw")]
    ib = [v for _, v in result.series("load", "latency", scheme="ib-hw")]

    # latency grows with load for both
    assert cb == sorted(cb)
    assert ib == sorted(ib)
    # near-identical at low load
    assert abs(cb[0] - ib[0]) < 0.15 * cb[0]
    # the input-buffer switch degrades faster at the top load point
    assert ib[-1] > 1.25 * cb[-1], (
        f"IB ({ib[-1]}) should clearly trail CB ({cb[-1]}) at high load"
    )
