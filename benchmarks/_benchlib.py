"""Shared scale and helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at a
CI-friendly scale, prints the rows, and asserts the *shape* of the result
(who wins, how gaps trend) rather than absolute numbers — our substrate
is a simulator with reconstructed parameters, not the authors' testbed.
"""

from __future__ import annotations

import os

from repro.experiments.common import Scale

#: benchmark scale: single seed, short windows — shapes remain stable
BENCH = Scale(
    name="bench",
    repeats=1,
    warmup_cycles=200,
    measure_cycles=1_200,
    max_cycles=60_000,
)

#: worker processes per benchmark grid.  Serial by default so timings
#: stay comparable run-to-run; set REPRO_BENCH_JOBS to fan the grid out
#: (results are identical either way — see repro.experiments.parallel).
JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def show(result) -> None:
    """Print an experiment's table (pytest -s shows it; always in logs)."""
    print()
    print(result.render())


def increasing(values, slack=1.0) -> bool:
    """True when the sequence trends upward (each step >= prev * slack)."""
    return all(b >= a * slack for a, b in zip(values, values[1:]))
