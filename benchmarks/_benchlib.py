"""Shared scale and helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at a
CI-friendly scale, prints the rows, and asserts the *shape* of the result
(who wins, how gaps trend) rather than absolute numbers — our substrate
is a simulator with reconstructed parameters, not the authors' testbed.

Set ``REPRO_BENCH_OUT=<dir>`` to also write each result as
``BENCH_<experiment>.json`` — the rows plus a
:class:`repro.obs.manifest.RunManifest` (git SHA, python version, jobs,
wall-time), so archived benchmark numbers carry their provenance.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.common import Scale
from repro.obs.manifest import RunManifest
from repro.store import runtime as store_runtime

#: benchmark scale: single seed, short windows — shapes remain stable
BENCH = Scale(
    name="bench",
    repeats=1,
    warmup_cycles=200,
    measure_cycles=1_200,
    max_cycles=60_000,
)

#: worker processes per benchmark grid.  Serial by default so timings
#: stay comparable run-to-run; set REPRO_BENCH_JOBS to fan the grid out
#: (results are identical either way — see repro.experiments.parallel).
JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))

# The benchmark harness is a CLI entry point, so it honours
# REPRO_STORE_DIR the same way the experiment runner does: runs
# memoize through the journal there, and each BENCH_*.json records a
# "store" section (rows are bit-identical either way).
_store_dir = store_runtime.store_dir_from_env()
if _store_dir is not None and store_runtime.active_session() is None:
    store_runtime.configure(store_runtime.open_session(_store_dir))


def show(result, wall_seconds=None) -> None:
    """Print an experiment's table (pytest -s shows it; always in logs).

    With ``REPRO_BENCH_OUT`` set, also archive the rows with provenance
    (see module docs).
    """
    print()
    print(result.render())
    out_dir = os.environ.get("REPRO_BENCH_OUT")
    if out_dir:
        write_bench_json(result, out_dir, wall_seconds=wall_seconds)


def write_bench_json(result, out_dir, wall_seconds=None) -> Path:
    """Write ``BENCH_<experiment>.json``: rows + table + run manifest."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{result.experiment}.json"
    payload = {
        "experiment": result.experiment,
        "title": result.table.title,
        "rows": result.rows,
        "manifest": RunManifest.collect(
            wall_seconds=wall_seconds, jobs=JOBS, scale=BENCH.name
        ).to_dict(),
    }
    session = store_runtime.active_session()
    if session is not None:
        # rows are bit-identical warm or cold; the section records how
        # much of this artifact came from the journal (see
        # docs/result-store.md and `python -m repro inspect`)
        payload["store"] = session.stats()
    path.write_text(
        json.dumps(payload, indent=1, default=repr) + "\n", encoding="utf-8"
    )
    return path


def increasing(values, slack=1.0) -> bool:
    """True when the sequence trends upward (each step >= prev * slack)."""
    return all(b >= a * slack for a, b in zip(values, values[1:]))
