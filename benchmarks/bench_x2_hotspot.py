"""X2 extension: hot-spot traffic, central vs. input buffers.

Tree saturation around a hot destination punishes statically partitioned
input buffers (whole-path head-of-line blocking) far more than the
dynamically shared central buffer.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.extensions import run_hotspot

FRACTIONS = (0.0, 0.05, 0.10)


def run():
    return run_hotspot(
        scale=BENCH, jobs=JOBS, num_hosts=64, load=0.3, fractions=FRACTIONS
    )


def test_x2_hotspot(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    cb = [v for _, v in result.series("fraction", "latency", scheme="cb-hw")]
    ib = [v for _, v in result.series("fraction", "latency", scheme="ib-hw")]

    # a hot spot degrades both, the input-buffer switch far more
    assert cb[-1] > cb[0]
    assert ib[-1] > ib[0]
    assert ib[-1] > 1.4 * cb[-1], (
        f"hot-spot should hurt IB ({ib[-1]}) much more than CB ({cb[-1]})"
    )
    # without a hot spot the organisations are close
    assert ib[0] < 1.25 * cb[0]
