"""E5: system-size scaling (16 / 64 / 256 hosts).

Paper shape: hardware broadcast grows only with tree depth; software
broadcast pays log2(N) serialized phases, so the HW/SW ratio widens with
system size.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.system_size import run_system_size

SIZES = (16, 64, 256)


def run():
    return run_system_size(
        scale=BENCH, jobs=JOBS, sizes=SIZES, payload_flits=64,
    )


def test_e5_system_size(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    cb_broadcast, sw_broadcast = [], []
    for n in SIZES:
        cb = result.value(
            "latency", num_hosts=n, workload="broadcast", scheme="cb-hw"
        )
        sw = result.value(
            "latency", num_hosts=n, workload="broadcast", scheme="sw"
        )
        # hardware wins broadcast by a wide margin at every size
        assert sw > 2.5 * cb, f"N={n}: SW ({sw}) vs CB ({cb})"
        cb_broadcast.append(cb)
        sw_broadcast.append(sw)

    # both grow with system size, software much faster in absolute terms
    assert cb_broadcast == sorted(cb_broadcast)
    assert sw_broadcast == sorted(sw_broadcast)
    sw_growth = sw_broadcast[-1] - sw_broadcast[0]
    cb_growth = cb_broadcast[-1] - cb_broadcast[0]
    assert sw_growth > 2 * cb_growth

    # hardware broadcast scales gently: 16 -> 256 hosts costs under 2.5x
    # (the growth is tree depth plus the O(N) bit-string header)
    assert cb_broadcast[-1] < 2.5 * cb_broadcast[0]
