"""E7: methodology table and zero-load calibration.

The simulator must land exactly on the closed-form zero-load latency —
the calibration any simulation-methodology section reports.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.parameters import run_parameters


def run():
    return run_parameters(scale=BENCH, jobs=JOBS, num_hosts=64)


def test_e7_parameters(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    simulated = result.value("value", parameter="zero_load_simulated")
    model = result.value("value", parameter="zero_load_model")
    assert simulated == model, (
        f"zero-load simulator ({simulated}) must match the analytic model "
        f"({model})"
    )
    # the parameter table covers the full methodology
    names = {row["parameter"] for row in result.rows}
    for expected in (
        "hosts (N)",
        "central buffer [flits]",
        "per-input quota [chunks]",
        "software send overhead [cycles]",
    ):
        assert expected in names
