"""E3: multicast latency vs. message length.

Paper shape: both schemes grow linearly with payload, but software's
slope is a multiple of hardware's (every binomial phase re-serializes the
message), so the absolute gap widens with length.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.length_sweep import run_length_sweep

LENGTHS = (16, 32, 64, 128, 256)


def run():
    return run_length_sweep(
        scale=BENCH, jobs=JOBS, num_hosts=64, lengths=LENGTHS, degree=8
    )


def test_e3_length_sweep(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    cb = [lat for _, lat in result.series("length", "latency", scheme="cb-hw")]
    sw = [lat for _, lat in result.series("length", "latency", scheme="sw")]

    # both grow with message length
    assert cb == sorted(cb)
    assert sw == sorted(sw)
    # software stays slower everywhere
    assert all(s > c for c, s in zip(cb, sw))
    # and the absolute gap widens with length
    gaps = [s - c for c, s in zip(cb, sw)]
    assert gaps[-1] > 2 * gaps[0], f"gap should widen with length: {gaps}"
