"""E4: bimodal traffic — the multicast scheme's impact on everyone else.

Paper shape: at matched nominal load, software multicast (a) delivers
much worse multicast latency and (b) degrades the *background unicast*
traffic more than hardware multicast does, increasingly so with load —
the abstract's "affects background unicast traffic less adversely".
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.bimodal import run_bimodal

LOADS = (0.15, 0.3, 0.45)


def run():
    return run_bimodal(
        scale=BENCH, jobs=JOBS,
        num_hosts=64,
        loads=LOADS,
        multicast_fraction=1.0 / 16.0,
        degree=8,
        payload_flits=32,
    )


def test_e4_bimodal(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    for load in LOADS:
        hw_op = result.value("op_latency", load=load, scheme="cb-hw")
        sw_op = result.value("op_latency", load=load, scheme="sw")
        assert sw_op > 1.5 * hw_op, (
            f"load={load}: SW ops ({sw_op}) should dominate HW ({hw_op})"
        )

    # background unicast suffers more under software multicast at the
    # highest load (the extra unicasts and start-ups congest the network)
    top = LOADS[-1]
    hw_uni = result.value("unicast_latency", load=top, scheme="cb-hw")
    sw_uni = result.value("unicast_latency", load=top, scheme="sw")
    assert sw_uni > hw_uni, (
        f"background unicast at load {top} should be worse under SW "
        f"({sw_uni}) than HW ({hw_uni})"
    )
