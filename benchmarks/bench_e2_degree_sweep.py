"""E2: multicast latency vs. degree.

Paper shape: hardware multicast is nearly flat in the degree; software
grows with ceil(log2(d+1)) phases, reaching a multi-x gap by d=63.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.degree_sweep import run_degree_sweep

DEGREES = (2, 4, 8, 16, 32, 63)


def run():
    return run_degree_sweep(
        scale=BENCH, jobs=JOBS, num_hosts=64, degrees=DEGREES, payload_flits=64
    )


def test_e2_degree_sweep(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    cb = [lat for _, lat in result.series("degree", "latency", scheme="cb-hw")]
    sw = [lat for _, lat in result.series("degree", "latency", scheme="sw")]

    # hardware latency is nearly flat across a 30x degree range
    assert max(cb) <= 1.5 * min(cb), f"CB-HW should be flat, got {cb}"
    # software latency grows steadily with degree
    assert sw == sorted(sw), f"SW should grow with degree, got {sw}"
    assert sw[-1] > 3 * sw[0]
    # the broadcast-degree gap is the paper's multi-x headline
    assert sw[-1] > 3 * cb[-1], (
        f"SW at d=63 ({sw[-1]}) should be several times CB ({cb[-1]})"
    )
