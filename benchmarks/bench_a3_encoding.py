"""A3 ablation: bit-string vs. multiport header encoding.

The trade-off of paper section 3: bit-string headers grow linearly with
system size but cover any set in one phase; multiport headers stay tiny
but random destination sets decompose into several product-set phases,
each a separate worm serialized at the source.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.ablations import run_encoding_ablation

SIZES = (16, 64, 256)


def run():
    return run_encoding_ablation(scale=BENCH, jobs=JOBS, sizes=SIZES, degree=8)


def test_a3_encoding(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    for row in result.rows:
        n = row["num_hosts"]
        if n >= 64:
            # multiport headers stay small while bit-string grows with N
            assert row["header_multiport"] < row["header_bitstring"], (
                f"N={n}: multiport header should be smaller"
            )
        # but bit-string wins latency on random sets (single phase)
        assert row["latency_bitstring"] <= row["latency_multiport"], (
            f"N={n}: single-phase bit-string should not lose"
        )

    big = [r for r in result.rows if r["num_hosts"] == 256][0]
    assert big["header_bitstring"] >= 4 * big["header_multiport"]
