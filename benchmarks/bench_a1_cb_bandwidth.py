"""A1 ablation: central-buffer port bandwidth.

Ref [33] claims flit-wide RAMs / register pipelines (modelled as our
full-bandwidth default) perform as well as a chunk-wide crossbar; this
ablation shows multicast latency degrading once per-cycle buffer
bandwidth is throttled well below one flit per port.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.ablations import run_cb_bandwidth_ablation

BANDWIDTHS = (1, 2, 4, 8)


def run():
    return run_cb_bandwidth_ablation(
        scale=BENCH, jobs=JOBS,
        num_hosts=64,
        bandwidths=BANDWIDTHS,
        num_multicasts=8,
        degree=8,
        payload_flits=64,
    )


def test_a1_cb_bandwidth(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    by_bandwidth = dict(result.series("bandwidth", "latency"))
    # starving the buffer (1 flit/cycle for the whole switch) clearly hurts
    assert by_bandwidth[1] > 1.5 * by_bandwidth[8]
    # full bandwidth is no worse than half: the extra ports stop mattering
    assert by_bandwidth[8] <= by_bandwidth[4] * 1.10
    # monotone non-increasing trend as bandwidth grows (small noise allowed)
    ordered = [by_bandwidth[b] for b in BANDWIDTHS]
    assert all(b <= a * 1.10 for a, b in zip(ordered, ordered[1:]))
