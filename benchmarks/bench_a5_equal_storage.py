"""A5 ablation: is the central buffer's advantage just more storage?

Three switches with comparable buffering: CB (2048 shared flits), IB at
its minimal legal size, and IB given the same 2048 flits statically
split per input.  The claim of refs [36, 37] — dynamic sharing beats
static partitioning — predicts the equal-storage IB still loses, and by
about as much as the minimal one (its bottleneck is head-of-line
blocking, not capacity).
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.ablations import run_equal_storage_ablation

LOADS = (0.3, 0.55)


def run():
    return run_equal_storage_ablation(
        scale=BENCH, jobs=JOBS, num_hosts=64, loads=LOADS,
    )


def test_a5_equal_storage(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    top = LOADS[-1]
    cb = result.value("latency", load=top, variant="cb-2048-shared")
    ib_min = result.value("latency", load=top, variant="ib-minimal")
    ib_big = result.value("latency", load=top, variant="ib-2048-split")

    # extra static storage buys the IB switch almost nothing
    assert abs(ib_big - ib_min) < 0.15 * ib_min, (
        f"static storage should not matter: {ib_min} vs {ib_big}"
    )
    # while the shared buffer, at the same total storage, clearly wins
    assert cb < 0.85 * ib_big, (
        f"CB ({cb}) must beat equal-storage IB ({ib_big})"
    )
