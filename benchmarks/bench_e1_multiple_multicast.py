"""E1: multiple multicast — CB-HW vs IB-HW vs SW as concurrency grows.

Paper shape: CB-HW lowest throughout; IB-HW degrades faster with
concurrency; SW is several times slower at every point.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.multiple_multicast import run_multiple_multicast


def run():
    return run_multiple_multicast(
        scale=BENCH, jobs=JOBS,
        num_hosts=64,
        concurrency=(1, 2, 4, 8, 16),
        degree=8,
        payload_flits=64,
    )


def test_e1_multiple_multicast(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    for m in (1, 2, 4, 8, 16):
        cb = result.value("latency", m=m, scheme="cb-hw")
        ib = result.value("latency", m=m, scheme="ib-hw")
        sw = result.value("latency", m=m, scheme="sw")
        # software multicast is far slower at every concurrency level
        assert sw > 1.5 * cb, f"m={m}: SW ({sw}) should dominate CB ({cb})"
        # the central buffer never loses to input buffers (small tolerance
        # for arbitration noise at low concurrency)
        assert cb <= ib * 1.10, f"m={m}: CB ({cb}) should not lose to IB ({ib})"

    # contention grows latency with concurrency for the hardware schemes
    cb_series = [lat for _, lat in result.series("m", "latency", scheme="cb-hw")]
    assert cb_series[-1] > cb_series[0]
    # and the IB handicap is visible at high concurrency
    cb16 = result.value("latency", m=16, scheme="cb-hw")
    ib16 = result.value("latency", m=16, scheme="ib-hw")
    assert ib16 >= cb16
