"""A4 ablation: asynchronous vs. synchronous replication (paper §3).

The paper rejects synchronous (lock-step) replication: a blocked branch
stalls the whole worm, and per-switch arbitration serializes concurrent
multicasts.  Under contention the asynchronous discipline must win, and
the synchronous handicap must grow with concurrency.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.ablations import run_replication_ablation

CONCURRENCY = (2, 4, 8, 16)


def run():
    return run_replication_ablation(
        scale=BENCH, jobs=JOBS, num_hosts=16,
        concurrency=CONCURRENCY, degree=6, payload_flits=48,
    )


def test_a4_replication(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    asynchronous = [
        lat for _, lat in result.series("m", "latency",
                                        replication="asynchronous")
    ]
    synchronous = [
        lat for _, lat in result.series("m", "latency",
                                        replication="synchronous")
    ]
    # at every concurrency level async is at least as good (tiny noise ok)
    for m, a, s in zip(CONCURRENCY, asynchronous, synchronous):
        assert a <= s * 1.03, f"m={m}: async ({a}) should not lose to sync ({s})"
    # the synchronous handicap is clear under heavy concurrency
    assert synchronous[-1] > 1.08 * asynchronous[-1], (
        f"lock-step coupling should cost >8% at m={CONCURRENCY[-1]}: "
        f"{synchronous[-1]} vs {asynchronous[-1]}"
    )
