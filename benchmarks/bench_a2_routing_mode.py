"""A2 ablation: turnaround vs. branch-on-up LCA routing (paper section 3).

Both modes must cover the destination set; branch-on-up can deliver
nearby destinations without climbing to the LCA first, so it is never
meaningfully slower on an idle network.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.ablations import run_routing_mode_ablation

DEGREES = (4, 8, 16, 32)


def run():
    return run_routing_mode_ablation(
        scale=BENCH, jobs=JOBS, num_hosts=64, degrees=DEGREES, payload_flits=64
    )


def test_a2_routing_mode(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    for degree in DEGREES:
        turnaround = result.value(
            "latency", degree=degree, mode="turnaround"
        )
        branchy = result.value(
            "latency", degree=degree, mode="branch_on_up"
        )
        assert turnaround > 0 and branchy > 0
        # last-arrival latency is set by the deepest branch, which both
        # modes route identically; they must agree closely at zero load
        assert abs(turnaround - branchy) <= 0.10 * turnaround, (
            f"d={degree}: modes diverged ({turnaround} vs {branchy})"
        )
