"""X1 extension: barrier synchronization with multicast release.

The paper's follow-up direction (ref [34]): releasing a barrier with one
multidestination worm beats a software broadcast release in both latency
and release skew, at every system size.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.extensions import run_barrier_scaling

SIZES = (16, 64, 256)


def run():
    return run_barrier_scaling(scale=BENCH, jobs=JOBS, sizes=SIZES)


def test_x1_barrier(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    for n in SIZES:
        hw_latency = result.value(
            "latency", num_hosts=n, release="hardware_multicast"
        )
        sw_latency = result.value(
            "latency", num_hosts=n, release="software_broadcast"
        )
        hw_skew = result.value(
            "skew", num_hosts=n, release="hardware_multicast"
        )
        sw_skew = result.value(
            "skew", num_hosts=n, release="software_broadcast"
        )
        assert hw_latency < sw_latency, f"N={n}"
        assert hw_skew < sw_skew, f"N={n}"

    # both latencies grow with system size; the gap does not close
    hw = [r["latency"] for r in result.rows
          if r["release"] == "hardware_multicast"]
    sw = [r["latency"] for r in result.rows
          if r["release"] == "software_broadcast"]
    assert hw == sorted(hw)
    assert sw == sorted(sw)
    assert sw[-1] - hw[-1] >= sw[0] - hw[0] * 0.5
