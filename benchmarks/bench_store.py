"""Result store: warm-campaign and duplicate-coalescing gates.

Unlike the experiment benchmarks (which regenerate paper tables), this
one times the memoizing execution layer itself: a campaign re-run
against its own journal must cost at most 0.1x the cold wall time, and
a grid with 50% duplicate specs must speed up by at least 1.8x from
coalescing alone — with the resolved values asserted bit-identical to
plain execution in every mode.  The same gates run from ``python -m
repro bench --check``; see ``docs/result-store.md``.
"""

from __future__ import annotations

from repro.bench.store import (
    DEDUP_SPEEDUP_MIN,
    WARM_RATIO_MAX,
    check_store_result,
    run_store_bench,
)


def run():
    return run_store_bench(smoke=True)


def test_store_gates(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.render())

    # every campaign spec answered from the journal on the warm run
    assert result.warm_hits == result.campaign_runs
    # half the duplicate grid resolved by coalescing, not execution
    assert result.dedup_coalesced == result.dedup_runs // 2

    failures = check_store_result(result)
    assert not failures, "\n".join(failures)
    assert result.warm_ratio <= WARM_RATIO_MAX
    assert result.dedup_speedup >= DEDUP_SPEEDUP_MIN
