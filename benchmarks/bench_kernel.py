"""Kernel benchmark: active-set vs dense wall-time on the smoke set.

Unlike the experiment benchmarks (which regenerate paper tables), this
one times the simulator itself: every scenario runs on both kernels,
asserts bit-identical results, and checks the active-set speedup has
not regressed past the tolerance recorded next to the checked-in
baseline ``BENCH_kernel.json``.  The full scenario set (and the JSON
artifact) is driven by ``python -m repro bench`` — see
``docs/performance.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.kernel import (
    DEFAULT_TOLERANCE,
    check_against_baseline,
    render_table,
    run_scenarios,
)

BASELINE = Path(__file__).parent / "BENCH_kernel.json"


def run():
    return run_scenarios(smoke=True)


def test_kernel_speedup(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(results))

    # the headline low-load scenario keeps a real active-set advantage
    by_name = {result.scenario: result for result in results}
    assert by_name["e5-low-load-smoke"].speedup > 2.0

    # and nothing regressed past tolerance vs the recorded baseline
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    failures = check_against_baseline(
        results, baseline, tolerance=DEFAULT_TOLERANCE
    )
    assert not failures, "\n".join(failures)
