"""X4 extension: multidestination worms across topology families.

The paper claims its schemes apply to every category of switch-based
system (BMIN, UMIN, irregular NOW); the hardware advantage must hold on
all three, with flat HW latency and log-growing SW latency everywhere.
"""

from __future__ import annotations

from _benchlib import BENCH, JOBS, show

from repro.experiments.cross_topology import run_cross_topology

DEGREES = (4, 8, 12)
TOPOLOGIES = ("bmin", "umin", "irregular")


def run():
    return run_cross_topology(
        scale=BENCH, jobs=JOBS, num_hosts=16, degrees=DEGREES,
    )


def test_x4_cross_topology(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)

    for topology in TOPOLOGIES:
        hw = [
            lat for _, lat in result.series(
                "degree", "latency", topology=topology, scheme="cb-hw"
            )
        ]
        sw = [
            lat for _, lat in result.series(
                "degree", "latency", topology=topology, scheme="sw"
            )
        ]
        # hardware flat, software growing, clear gap — on every family
        assert max(hw) <= 1.3 * min(hw), f"{topology}: HW not flat: {hw}"
        assert sw[-1] > sw[0], f"{topology}: SW should grow: {sw}"
        for h, s in zip(hw, sw):
            assert s > 2 * h, f"{topology}: SW ({s}) vs HW ({h})"
