#!/usr/bin/env python
"""DSM cache-invalidation traffic (after Dai & Panda, ref [8]).

In a distributed-shared-memory machine, writes to shared cache lines
multicast short invalidation messages to the sharer set, and the writer
stalls until the *last* acknowledgement — exactly the last-arrival
latency metric.  Invalidations are tiny (a cache-line address) and ride
on a network busy with ordinary memory traffic.

This example mixes background unicast load with a stream of short,
small-degree multicasts (the invalidations) and compares how quickly
invalidation rounds complete under hardware and software multicast.

Run:  python examples/dsm_invalidation.py
"""

from repro import (
    BimodalTraffic,
    MulticastScheme,
    SimulationConfig,
    TrafficClass,
    run_simulation,
)
from repro.metrics.report import Table


def invalidation_round(load, scheme, seed=5):
    """Mean invalidation completion and background read latency."""
    # The writer's coherence hardware issues messages in a few cycles,
    # but *forwarding* a software multicast runs on the intermediate
    # node's controller/firmware — that detour is the software scheme's
    # real cost in a DSM (ref [8]).
    config = SimulationConfig(
        num_hosts=64, seed=seed, sw_send_overhead=4, sw_recv_overhead=30
    )
    workload = BimodalTraffic(
        load=load,
        multicast_fraction=0.10,   # one write-invalidate per 10 accesses
        degree=8,                  # a widely shared line
        payload_flits=4,           # an address plus a word
        scheme=scheme,
        warmup_cycles=500,
        measure_cycles=4_000,
    )
    result = run_simulation(config, workload, max_cycles=200_000)
    return (
        result.op_last_latency.mean,
        result.unicast_latency.mean,
        result.collector.classes[TrafficClass.UNICAST].deliveries,
    )


def main() -> None:
    table = Table(
        "DSM invalidation rounds (64 hosts, 8 sharers, 4-flit lines)",
        ["memory load", "scheme", "invalidate [cycles]", "reads [cycles]"],
    )
    # 10% of accesses invalidate 8 sharers, so delivered traffic is ~2.4x
    # the nominal load; loads above ~0.4 would oversubscribe the hosts'
    # ejection links for any scheme.
    for load in (0.05, 0.15, 0.3):
        for scheme in (MulticastScheme.HARDWARE, MulticastScheme.SOFTWARE):
            invalidate, reads, _count = invalidation_round(load, scheme)
            table.add_row(
                load, scheme.value, round(invalidate, 1), round(reads, 1)
            )
    table.write()
    print()
    print("A writer stalls for the full invalidation round, so the")
    print("last-arrival gap between the schemes is directly lost write")
    print("throughput; note how software invalidations also inflate the")
    print("latency of ordinary reads sharing the network.")


if __name__ == "__main__":
    main()
