#!/usr/bin/env python
"""Multicast on an irregular network of workstations (NOW).

The paper notes its schemes apply beyond regular MINs: on an irregular
cluster, routing follows a spanning tree superimposed on the switch
graph (up*/down* style, as in Autonet).  This example generates a random
12-switch cluster, multicasts from several corners of the tree, and
shows the worm replicating along tree links.

Run:  python examples/irregular_cluster.py
"""

from repro import (
    MulticastScheme,
    SimulationConfig,
    SingleMulticast,
    TopologyKind,
    run_simulation,
)
from repro.metrics.report import Table
from repro.network.builder import build_network


def main() -> None:
    config = SimulationConfig(
        num_hosts=24,
        topology=TopologyKind.IRREGULAR,
        irregular_switches=12,
        irregular_extra_links=4,
        topology_seed=17,
        seed=2,
    )
    network = build_network(config)
    cluster = network.topology_object
    print(f"Cluster: {cluster!r}")
    print("Routing tree (switch: parent):")
    for switch in range(cluster.num_switches):
        parent = cluster.tree_parent[switch]
        label = "root" if parent is None else f"parent {parent}"
        hosts = [h for h, _ in cluster.host_ports[switch]]
        print(f"  switch {switch:2d}: {label:9s} hosts {hosts}")
    print()

    table = Table(
        "Multicast on the cluster (degree 8, 32-flit payload) [cycles]",
        ["source", "hardware", "software", "speedup"],
    )
    for source in (0, 7, 23):
        latencies = {}
        for scheme in (MulticastScheme.HARDWARE, MulticastScheme.SOFTWARE):
            result = run_simulation(
                config.derived(seed=source + 10),
                SingleMulticast(
                    source=source, degree=8, payload_flits=32, scheme=scheme
                ),
            )
            (operation,) = result.collector.completed_operations()
            latencies[scheme] = operation.last_latency
        hw = latencies[MulticastScheme.HARDWARE]
        sw = latencies[MulticastScheme.SOFTWARE]
        table.add_row(source, hw, sw, round(sw / hw, 2))
    table.write()
    print()
    print("Even without a regular topology, a single worm replicated along")
    print("the routing tree beats log-phase software multicast.")


if __name__ == "__main__":
    main()
