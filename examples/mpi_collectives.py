#!/usr/bin/env python
"""MPI-style collective communication study.

The paper's introduction motivates multidestination worms with MPI
collectives: broadcast and multicast underlie barrier, reduction and
friends.  This example measures broadcast latency across system sizes
and communicator sizes for hardware vs. software multicast — the numbers
an MPI library implementer would want before choosing an algorithm.

Run:  python examples/mpi_collectives.py
"""

from repro import (
    MulticastScheme,
    SimulationConfig,
    SingleMulticast,
    run_simulation,
)
from repro.metrics.report import Table


def broadcast_latency(num_hosts, degree, payload_flits, scheme, seed=3):
    """Last-arrival latency of one multicast on an idle system."""
    config = SimulationConfig(num_hosts=num_hosts, seed=seed)
    workload = SingleMulticast(
        source=0, degree=degree, payload_flits=payload_flits, scheme=scheme
    )
    result = run_simulation(config, workload)
    (operation,) = result.collector.completed_operations()
    return operation.last_latency


def main() -> None:
    table = Table(
        "MPI_Bcast latency [cycles]: hardware worms vs. binomial software",
        ["hosts", "communicator", "payload", "hardware", "software", "speedup"],
    )
    for num_hosts in (16, 64, 256):
        for fraction, label in ((1.0, "world"), (0.5, "half")):
            degree = max(2, int((num_hosts - 1) * fraction))
            for payload in (32, 256):
                hw = broadcast_latency(
                    num_hosts, degree, payload, MulticastScheme.HARDWARE
                )
                sw = broadcast_latency(
                    num_hosts, degree, payload, MulticastScheme.SOFTWARE
                )
                table.add_row(
                    num_hosts, f"{label} ({degree})", payload, hw, sw,
                    round(sw / hw, 2),
                )
    table.write()
    print()
    print("Hardware multicast turns broadcast from a log2(P)-phase software")
    print("protocol into a single network transaction; the advantage grows")
    print("with communicator size and message length.")


if __name__ == "__main__":
    main()
