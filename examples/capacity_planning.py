#!/usr/bin/env python
"""Capacity planning: where does each switch organisation saturate?

Uses the saturation finder to locate the maximum sustainable uniform
load for the central-buffer and input-buffer switches, then sketches the
latency-load curves as an ASCII chart — the two numbers and one picture
a system architect wants first.

Run:  python examples/capacity_planning.py   (takes a minute or two)
"""

from repro import SimulationConfig, SwitchArchitecture
from repro.experiments.saturation import find_saturation_load, probe_load
from repro.metrics.ascii_chart import render_chart
from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.unicast import UniformRandomUnicast


def latency_at(config, load):
    result = run_simulation(
        config,
        UniformRandomUnicast(
            load=load, payload_flits=32,
            warmup_cycles=300, measure_cycles=2_000,
        ),
        max_cycles=30_000,
    )
    if result.unicast_latency.count == 0:
        return None
    return result.unicast_latency.mean


def main() -> None:
    # saturation here means the latency knee (4x the low-load latency):
    # a full-bisection fat tree carries ~100% of uniform traffic, so
    # delay, not throughput, is what separates the organisations
    variants = {
        "central-buffer": SimulationConfig(num_hosts=64),
        "input-buffer": SimulationConfig(
            num_hosts=64,
            switch_architecture=SwitchArchitecture.INPUT_BUFFER,
        ),
    }

    table = Table(
        "Saturation load (uniform random unicast, 32-flit payloads)",
        ["switch", "saturation load", "probes"],
    )
    for name, config in variants.items():
        estimate, probes = find_saturation_load(
            config, tolerance=0.1, warmup_cycles=300, measure_cycles=2_000
        )
        table.add_row(name, round(estimate, 2), len(probes))
    table.write()
    print()

    series = {}
    for name, config in variants.items():
        points = []
        for load in (0.1, 0.25, 0.4, 0.55, 0.7):
            latency = latency_at(config, load)
            if latency is not None:
                points.append((load, latency))
        series[name] = points
    print(render_chart(
        series,
        title="unicast latency vs offered load",
        x_label="offered load",
        y_label="cycles",
    ))


if __name__ == "__main__":
    main()
