#!/usr/bin/env python
"""Barrier and all-reduce on the simulated machine.

The paper's conclusion points at barrier synchronization as the next
application of multidestination worms (their follow-up, ref [34]).
This example runs full-machine barriers and sum-reductions, releasing
the participants either with one multidestination worm or with a
binomial software broadcast, and reports latency and release skew.

Run:  python examples/barrier_and_reduce.py
"""

from repro import MulticastScheme, SimulationConfig
from repro.collectives import BarrierEngine, ReductionEngine, ReleaseScheme
from repro.metrics.report import Table
from repro.network.builder import build_network


def run_barrier(num_hosts, release_scheme, seed=3):
    network = build_network(SimulationConfig(num_hosts=num_hosts, seed=seed))
    engine = BarrierEngine(network.nodes)
    operation = engine.create(
        list(range(num_hosts)), release_scheme=release_scheme
    )

    def enter_all():
        for host in range(num_hosts):
            engine.enter(operation, host)

    network.sim.schedule_at(0, enter_all)
    network.sim.run_until(
        lambda: operation.complete, max_cycles=500_000, stall_limit=30_000
    )
    return operation


def run_allreduce(num_hosts, result_scheme, seed=3):
    network = build_network(SimulationConfig(num_hosts=num_hosts, seed=seed))
    engine = ReductionEngine(network.nodes)
    operation = engine.create(
        list(range(num_hosts)),
        combine=lambda a, b: a + b,
        payload_flits=8,
        result_scheme=result_scheme,
    )

    def contribute_all():
        for host in range(num_hosts):
            engine.contribute(operation, host, host + 1)

    network.sim.schedule_at(0, contribute_all)
    network.sim.run_until(
        lambda: operation.complete, max_cycles=500_000, stall_limit=30_000
    )
    expected = num_hosts * (num_hosts + 1) // 2
    assert operation.result == expected, "reduction computed a wrong sum"
    return operation


def main() -> None:
    barrier_table = Table(
        "Full-machine barrier [cycles]",
        ["hosts", "release", "latency", "release skew"],
    )
    for num_hosts in (16, 64, 256):
        for release in ReleaseScheme:
            operation = run_barrier(num_hosts, release)
            barrier_table.add_row(
                num_hosts, release.value, operation.last_latency,
                operation.skew,
            )
    barrier_table.write()
    print()

    reduce_table = Table(
        "All-reduce (sum of 1..N, 8-flit vectors) [cycles]",
        ["hosts", "result broadcast", "latency", "result"],
    )
    for num_hosts in (16, 64):
        for scheme in MulticastScheme:
            operation = run_allreduce(num_hosts, scheme)
            reduce_table.add_row(
                num_hosts, scheme.value, operation.last_latency,
                operation.result,
            )
    reduce_table.write()
    print()
    print("The multidestination release reaches every host in one network")
    print("transaction: barriers complete sooner and, just as importantly,")
    print("all hosts resume within a few cycles of each other (low skew).")


if __name__ == "__main__":
    main()
