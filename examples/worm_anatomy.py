#!/usr/bin/env python
"""Anatomy of a multidestination worm, event by event.

Runs one multicast on a small (16-host) system with tracing enabled and
prints the replication tree: where the worm ascended, where it was
admitted into central buffers, where it branched, and when each
destination received it.  Also cross-checks the flit-level simulation
against the pure-functional path model.

Run:  python examples/worm_anatomy.py
"""

from repro import DestinationSet, MulticastScheme, SimulationConfig
from repro.core.path_model import trace_worm
from repro.network.builder import build_network
from repro.sim.trace import Tracer

SOURCE = 2
DESTINATIONS = [5, 6, 11, 12]


def main() -> None:
    config = SimulationConfig(num_hosts=16, seed=1, self_check=True)
    tracer = Tracer(enabled=True)
    network = build_network(config, tracer=tracer)

    dest_set = DestinationSet.from_ids(16, DESTINATIONS)
    network.sim.schedule_at(
        0,
        lambda: network.nodes[SOURCE].post_multicast(
            dest_set, payload_flits=16, scheme=MulticastScheme.HARDWARE
        ),
    )
    network.sim.run_until(
        lambda: network.collector.outstanding_operations == 0
        and network.collector.operations_created == 1,
        max_cycles=50_000,
    )

    print(f"Multicast: host {SOURCE} -> {DESTINATIONS} on a 16-host BMIN")
    print()
    print("Predicted replication tree (pure path model):")
    traced = trace_worm(
        network.topology, network.tables, SOURCE, dest_set,
        mode=config.multicast_mode,
    )
    for switch, port in traced.links:
        level = network.topology_object.switch_level(switch)
        kind = "down" if port < config.arity else " up "
        print(f"  switch {switch:2d} (level {level}) -> port {port} [{kind}]")
    print(f"  deepest branch: {traced.max_depth} switches")
    print()

    print("Observed switch events (flit-level simulation):")
    interesting = ("admit_multidest", "bypass", "queue_cb")
    for record in tracer.records:
        if record.event in interesting:
            details = ", ".join(
                f"{key}={value}" for key, value in record.details
            )
            print(f"  cycle {record.cycle:4d}  {record.source:5s} "
                  f"{record.event:16s} {details}")
    print()

    (operation,) = network.collector.completed_operations()
    print("Arrivals:")
    for host, cycle in sorted(operation.arrival_cycles.items()):
        print(f"  host {host:2d} at cycle {cycle}")
    print(f"Operation complete at cycle {operation.completed_cycle} "
          f"(last-arrival latency {operation.last_latency})")
    assert set(operation.arrival_cycles) == set(traced.delivered)
    print()
    print("The flit-level simulation delivered to exactly the hosts the")
    print("path model predicted.")


if __name__ == "__main__":
    main()
