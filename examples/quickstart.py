#!/usr/bin/env python
"""Quickstart: one multicast, three ways.

Builds the paper's default system (64 hosts on a bidirectional MIN of
8-port switches), sends a single 16-destination multicast with each of
the three schemes the paper compares, and prints the latencies.

Run:  python examples/quickstart.py
"""

from repro import (
    MulticastScheme,
    SimulationConfig,
    SingleMulticast,
    SwitchArchitecture,
    run_simulation,
)


def main() -> None:
    destinations = [3, 9, 14, 21, 27, 33, 38, 42, 45, 50, 53, 55, 58, 60, 61, 63]
    print("Multicast from host 0 to 16 destinations on a 64-host BMIN")
    print(f"destinations: {destinations}")
    print()

    cases = [
        ("central-buffer switch, hardware worms",
         SwitchArchitecture.CENTRAL_BUFFER, MulticastScheme.HARDWARE),
        ("input-buffer switch,   hardware worms",
         SwitchArchitecture.INPUT_BUFFER, MulticastScheme.HARDWARE),
        ("central-buffer switch, software binomial",
         SwitchArchitecture.CENTRAL_BUFFER, MulticastScheme.SOFTWARE),
    ]
    for label, architecture, scheme in cases:
        config = SimulationConfig(
            num_hosts=64, switch_architecture=architecture
        )
        workload = SingleMulticast(
            source=0,
            destinations=destinations,
            payload_flits=64,
            scheme=scheme,
        )
        result = run_simulation(config, workload)
        (operation,) = result.collector.completed_operations()
        print(
            f"{label}:  last arrival {operation.last_latency:4d} cycles, "
            f"mean arrival {operation.average_latency:7.1f} cycles"
        )

    print()
    print("The hardware multidestination worm pays the network pipeline")
    print("once; the software scheme pays ceil(log2(17)) = 5 serialized")
    print("store-and-forward phases with software start-up costs.")


if __name__ == "__main__":
    main()
