"""Packed-data-plane variant of the input-buffer switch.

Same microarchitecture as
:class:`~repro.switches.input_buffer.InputBufferSwitch` — routing,
output arbitration and slot recycling are inherited unchanged — but the
flit-movement phases use the packed link API: spans in
(:meth:`~repro.switches.link.Link.receive_span`), flit coordinates out
(:meth:`~repro.switches.link.Link.send_packed`).  No
:class:`~repro.flits.flit.Flit` object is ever constructed here
(enforced by reprolint rule REP008); trace events use
:func:`~repro.flits.packed.flit_repr`.

Every observable is bit-identical to the object path — a span accept
updates the same ingress cursors the per-flit accept would, and egress
stays one flit per output per cycle (see
``tests/sim/test_packed_differential.py``).
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.flits.packed import flit_repr
from repro.flits.worm import Worm
from repro.switches.input_buffer import InputBufferSwitch, _Ingress


class PackedInputBufferSwitch(InputBufferSwitch):
    """Input-queued switch on the packed data plane."""

    # -- phase 1: absorb link arrivals as spans --------------------------
    def _receive(self, now: int) -> None:
        for port, link in enumerate(self.in_links):
            if link is None or not link.pending_arrival(now):
                continue
            while True:
                span = link.receive_span(now)
                if span is None:
                    break
                worm, start, count = span
                self._accept_span(port, worm, start, count, now)

    def _accept_span(
        self, port: int, worm: Worm, start: int, count: int, now: int
    ) -> None:
        inflow = self._inflow[port]
        ingress = inflow[-1] if inflow else None
        if ingress is None or ingress.received == ingress.worm.size_flits:
            if start != 0:
                raise ProtocolError(
                    f"{self.name}.in{port}: body flit "
                    f"{flit_repr(worm, start)} without head"
                )
            ingress = _Ingress(worm)
            inflow.append(ingress)
            self._total_ingresses += 1
        if worm is not ingress.worm or start != ingress.received:
            raise ProtocolError(
                f"{self.name}.in{port}: out-of-order flit "
                f"{flit_repr(worm, start)} "
                f"(expected index {ingress.received} of {ingress.worm!r})"
            )
        ingress.received = start + count
        self._stirred = True
        # the object path stamps header completion at the cycle of the
        # tick that drains the completing flit — for a span that crosses
        # the header boundary that is exactly this tick's cycle
        if start < worm.header_flits <= start + count:
            ingress.header_done_cycle = now
        if self.tracer.enabled:
            for index in range(start, start + count):
                self.tracer.emit(
                    now, self.name, "flit_in",
                    port=port, flit=flit_repr(worm, index),
                )

    # -- phase 3: grant outputs and move flits -----------------------------
    def _drive_outputs(self, now: int) -> None:
        for port in range(self.num_ports):
            if self._current[port] is None and self._waiting[port]:
                winner = self._grant_arbiters[port].grant(self._waiting[port])
                if winner is not None:
                    self._current[port] = self._waiting[port].pop(winner)
                    self._stirred = True
        lockstep_done = set()
        for port in range(self.num_ports):
            branch = self._current[port]
            if branch is None:
                continue
            link = self.out_links[port]
            if link is None:
                raise ProtocolError(f"{self.name}: active branch on unwired "
                                    f"output port {port}")
            ingress = branch.ingress
            if self._synchronous and len(ingress.branches) > 1:
                if id(ingress) not in lockstep_done:
                    lockstep_done.add(id(ingress))
                    self._advance_lockstep(ingress, now)
                continue
            if branch.read >= ingress.received or not link.can_send(now):
                if (
                    self._obs
                    and branch.read < ingress.received
                    and not link.can_send(now)
                ):
                    self._c_blocked.inc()
                continue
            link.send_packed(now, branch.worm, branch.read)
            branch.read += 1
            self._stirred = True
            if self._obs:
                self._c_forwarded.inc()
            self.sim.note_progress()
            self._recycle_slots(branch.input_port, ingress, now)
            if branch.read == branch.worm.size_flits:
                self._current[port] = None
                self._active -= 1

    def _advance_lockstep(self, ingress: _Ingress, now: int) -> None:
        """Synchronous replication: every branch sends the same flit in
        the same cycle, or nobody sends."""
        branches = ingress.branches
        if any(self._current[b.out_port] is not b for b in branches):
            return  # still accumulating output ports
        index = branches[0].read
        if index >= ingress.received:
            return
        links = [self.out_links[b.out_port] for b in branches]
        if any(link is None or not link.can_send(now) for link in links):
            if self._obs:
                self._c_blocked.inc()
            return  # one blocked branch stalls the whole worm
        self._stirred = True
        for branch, link in zip(branches, links):
            link.send_packed(now, branch.worm, branch.read)
            branch.read += 1
        if self._obs:
            self._c_forwarded.inc(len(branches))
        self.sim.note_progress()
        self._recycle_slots(branches[0].input_port, ingress, now)
        if branches[0].read == ingress.worm.size_flits:
            for branch in branches:
                self._current[branch.out_port] = None
                self._active -= 1
            if self._sync_queue and self._sync_queue[0] is ingress:
                self._sync_queue.popleft()
                if self._sync_queue:
                    self._register_branches(self._sync_queue[0])
