"""Chunked central-buffer storage (paper section 4).

The SP2-style central buffer is a shared RAM organised in fixed-size
*chunks*; packets queued for an output port occupy linked chunks.  For
multidestination worms the paper's deadlock-freedom rule requires that a
worm be *admitted* only once the switch can guarantee it will eventually
be completely buffered.

A single shared pool cannot give that guarantee: a worm travelling up
could hold chunks a descending worm needs, whose own chunks are needed by
other ascending worms — a cyclic buffer dependency between switch levels
that genuinely deadlocks (our stress tests reproduce it).  The SP-switch
solution, which we model, is a **per-input quota**: the buffer always
retains one maximum-packet's worth of chunks per input port, and a worm's
full-packet reservation waits only on *its own input's* quota.  The quota
is freed exclusively by earlier packets from the same input, which drain
by induction on the acyclic up*/down* route order, so every admission
eventually succeeds.  Capacity beyond the quotas forms a *shared* region
that any input may use opportunistically — this is what makes the central
buffer dynamically shared and superior to static input buffers.

A stored multidestination packet is written once; each replicated branch
holds its own read cursor, and a chunk is freed when the *slowest* branch
has read past it (reference-counted sharing, as in the paper's design).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import BufferError_, ConfigurationError
from repro.flits.worm import Worm
from repro.sim.stats import TimeWeightedAverage


class CentralBufferPool:
    """The chunk store of one central-buffer switch.

    Parameters
    ----------
    capacity_flits:
        Total buffer size in flits (a whole number of chunks).
    chunk_flits:
        Chunk granularity.
    num_inputs:
        Input ports sharing the buffer.
    quota_chunks:
        Chunks permanently guaranteed to each input (at least the largest
        packet, enforced by the network configuration); the remainder is
        the shared region.
    """

    def __init__(
        self,
        capacity_flits: int,
        chunk_flits: int,
        num_inputs: int,
        quota_chunks: int,
    ) -> None:
        if chunk_flits < 1:
            raise ConfigurationError("chunk_flits must be at least 1")
        if capacity_flits < chunk_flits:
            raise ConfigurationError(
                "central buffer must hold at least one chunk"
            )
        if capacity_flits % chunk_flits:
            raise ConfigurationError(
                "central buffer capacity must be a whole number of chunks"
            )
        if num_inputs < 1:
            raise ConfigurationError("need at least one input port")
        if quota_chunks < 1:
            raise ConfigurationError("quota_chunks must be at least 1")
        self.chunk_flits = chunk_flits
        self.capacity_chunks = capacity_flits // chunk_flits
        self.num_inputs = num_inputs
        self.quota_chunks = quota_chunks
        if self.capacity_chunks < num_inputs * quota_chunks:
            raise ConfigurationError(
                f"central buffer of {self.capacity_chunks} chunks cannot "
                f"guarantee {quota_chunks} chunks to each of {num_inputs} "
                f"inputs; the deadlock-freedom rule would be violated"
            )
        self.free_shared = self.capacity_chunks - num_inputs * quota_chunks
        self.free_quota: List[int] = [quota_chunks] * num_inputs
        # running count of held chunks, kept in lockstep with the free
        # counters so per-chunk bookkeeping never sums the quota list
        self._used_chunks = 0
        self.occupancy = TimeWeightedAverage()

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def chunks_for(self, flits: int) -> int:
        """Chunks needed to store ``flits`` flits."""
        return math.ceil(flits / self.chunk_flits)

    # ------------------------------------------------------------------
    # allocation (used by StoredPacket)
    # ------------------------------------------------------------------
    def try_take(
        self, input_port: int, chunks: int, now: int
    ) -> Optional["ChunkCharge"]:
        """Atomically take ``chunks``, shared region first.

        Returns the charge breakdown, or ``None`` when the shared region
        plus this input's remaining quota cannot cover the request (the
        caller retries next cycle; the quota guarantee bounds the wait).
        """
        if chunks < 1:
            raise ValueError("chunks must be positive")
        from_shared = min(self.free_shared, chunks)
        from_quota = chunks - from_shared
        if from_quota > self.free_quota[input_port]:
            return None
        self.free_shared -= from_shared
        self.free_quota[input_port] -= from_quota
        self._used_chunks += chunks
        self.occupancy.update(now, self._used_chunks)
        return ChunkCharge(input_port, from_shared, from_quota)

    def give_back(self, charge: "ChunkCharge", chunks: int, now: int) -> None:
        """Return ``chunks`` of a charge, refilling the quota first."""
        if chunks < 0:
            raise ValueError("chunks must be non-negative")
        if chunks == 0:
            return
        if chunks > charge.shared + charge.quota:
            raise BufferError_("central buffer chunk over-release")
        to_quota = min(chunks, charge.quota)
        to_shared = chunks - to_quota
        charge.quota -= to_quota
        charge.shared -= to_shared
        self.free_quota[charge.input_port] += to_quota
        self.free_shared += to_shared
        self._used_chunks -= chunks
        if self._used_chunks < 0 or (
            self.free_quota[charge.input_port] > self.quota_chunks
        ):
            raise BufferError_("central buffer accounting corrupted")
        self.occupancy.update(now, self._used_chunks)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def free_chunks(self) -> int:
        """Unallocated chunks (shared region plus all quotas)."""
        return self.free_shared + sum(self.free_quota)

    @property
    def used_chunks(self) -> int:
        """Chunks currently held by stored packets."""
        return self._used_chunks

    def __repr__(self) -> str:
        return (
            f"CentralBufferPool(used={self.used_chunks}/"
            f"{self.capacity_chunks} chunks, shared_free={self.free_shared})"
        )


class ChunkCharge:
    """How many of a packet's chunks came from where."""

    __slots__ = ("input_port", "shared", "quota")

    def __init__(self, input_port: int, shared: int, quota: int) -> None:
        self.input_port = input_port
        self.shared = shared
        self.quota = quota

    @property
    def total(self) -> int:
        """Chunks still held by this charge."""
        return self.shared + self.quota

    def absorb(self, other: "ChunkCharge") -> None:
        """Merge another charge for the same input into this one."""
        if other.input_port != self.input_port:
            raise BufferError_("cannot merge charges across inputs")
        self.shared += other.shared
        self.quota += other.quota

    def __repr__(self) -> str:
        return (
            f"ChunkCharge(in={self.input_port}, shared={self.shared}, "
            f"quota={self.quota})"
        )


class BranchCursor:
    """One output branch's read position into a stored packet."""

    __slots__ = ("worm", "out_port", "read")

    def __init__(self, worm: Worm, out_port: int) -> None:
        self.worm = worm
        self.out_port = out_port
        self.read = 0

    def __repr__(self) -> str:
        return f"BranchCursor(port={self.out_port}, read={self.read})"


class StoredPacket:
    """A packet resident in the central buffer, shared by its branches.

    Created with ``reserve_all=True`` for multidestination worms (the
    admission rule: all chunks are taken up front via :meth:`try_admit`)
    and ``reserve_all=False`` for unicast packets, which allocate chunk by
    chunk as flits are written.
    """

    def __init__(
        self,
        pool: CentralBufferPool,
        input_port: int,
        total_flits: int,
        reserve_all: bool,
    ) -> None:
        self.pool = pool
        self.input_port = input_port
        self.total_flits = total_flits
        self.reserve_all = reserve_all
        self.charge: Optional[ChunkCharge] = None
        self.flits_written = 0
        self.branches: List[BranchCursor] = []
        self._chunks_released = 0

    # ------------------------------------------------------------------
    # admission (multidestination)
    # ------------------------------------------------------------------
    def try_admit(self, now: int) -> bool:
        """Attempt the full-packet reservation; retried each cycle.

        The per-input quota makes eventual success certain: only earlier
        packets from the same input can hold quota chunks, and they drain.
        """
        if not self.reserve_all:
            raise BufferError_("try_admit on an incrementally stored packet")
        if self.charge is not None:
            return True
        needed = self.pool.chunks_for(self.total_flits)
        self.charge = self.pool.try_take(self.input_port, needed, now)
        return self.charge is not None

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def ensure_write_space(self, now: int) -> bool:
        """True when the next flit has a chunk to land in.

        Admitted packets always have space; incremental packets grab one
        more chunk at each chunk boundary and report ``False`` (stalling
        the input) when the pool refuses.
        """
        if self.flits_written >= self.total_flits:
            raise BufferError_("write past end of stored packet")
        if self.reserve_all:
            if self.charge is None:
                raise BufferError_("write before admission")
            return True
        needed = self.flits_written // self.pool.chunk_flits + 1
        live = (0 if self.charge is None else self.charge.total)
        live += self._chunks_released
        if needed <= live:
            return True
        taken = self.pool.try_take(self.input_port, 1, now)
        if taken is None:
            return False
        if self.charge is None:
            self.charge = taken
        else:
            self.charge.absorb(taken)
        return True

    def write_flit(self) -> None:
        """Commit one flit into the buffer (space must be ensured first)."""
        self.flits_written += 1

    @property
    def fully_written(self) -> bool:
        """True once the tail flit has been stored."""
        return self.flits_written == self.total_flits

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def add_branch(self, worm: Worm, out_port: int) -> BranchCursor:
        """Register a replicated branch; all branches are added at
        admission, before any read."""
        cursor = BranchCursor(worm, out_port)
        self.branches.append(cursor)
        return cursor

    def readable(self, cursor: BranchCursor) -> bool:
        """True when the branch's next flit has already been written."""
        return cursor.read < self.flits_written

    def branch_read(self, cursor: BranchCursor, now: int) -> None:
        """Advance a branch one flit; free chunks the slowest branch passed."""
        if not self.readable(cursor):
            raise BufferError_("branch read past written flits")
        cursor.read += 1
        self._release_consumed(now)

    def _release_consumed(self, now: int) -> None:
        if self.charge is None:
            return
        branches = self.branches
        if len(branches) == 1:  # unicast: no generator over one cursor
            min_read = branches[0].read
        else:
            min_read = min(cursor.read for cursor in branches)
        if min_read >= self.total_flits and self.fully_written:
            target = self.charge.total + self._chunks_released
        else:
            target = min_read // self.pool.chunk_flits
        to_release = target - self._chunks_released
        if to_release > 0:
            self.pool.give_back(self.charge, to_release, now)
            self._chunks_released += to_release

    @property
    def chunks_held(self) -> int:
        """Chunks this packet currently occupies."""
        return 0 if self.charge is None else self.charge.total

    @property
    def finished(self) -> bool:
        """True when every branch has drained the whole packet."""
        return self.fully_written and all(
            cursor.read == self.total_flits for cursor in self.branches
        )

    def __repr__(self) -> str:
        return (
            f"StoredPacket(written={self.flits_written}/{self.total_flits}, "
            f"branches={len(self.branches)}, chunks={self.chunks_held})"
        )
