"""Shared machinery for the two switch architectures."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.flits.worm import Worm
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.routing.base import (
    MulticastRoutingMode,
    PortRequest,
    UpPortPolicy,
    make_up_selector,
)
from repro.routing.table import SwitchRoutingTable
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switches.link import Link


class ReplicationMode(enum.Enum):
    """How a switch forwards the branches of a multidestination worm.

    ASYNCHRONOUS (paper's choice)
        Each branch forwards flits at its own pace; a blocked branch
        never stalls its siblings.  Requires the full-packet buffering
        guarantee for deadlock freedom.
    SYNCHRONOUS (the alternative of Chiang/Ni, ref [6])
        All branches forward each flit in lock-step; a single blocked
        branch stalls the whole worm.  Modelled on the input-buffer
        switch (where the worm is fully buffered, so lock-step coupling
        costs performance, not safety) to quantify why the paper rejects
        it.
    """

    ASYNCHRONOUS = "asynchronous"
    SYNCHRONOUS = "synchronous"


@dataclass
class SwitchSettings:
    """Microarchitectural parameters shared by both switch designs.

    The defaults model the paper's SP-Switch-like baseline: 8-port
    switches, a 4 KB central buffer in 8-flit (16-byte) chunks, and
    central-buffer bandwidth matching one flit per port per cycle (the
    "performs as well as a chunk-wide crossbar" alternative of ref [33]).
    """

    #: per-input synchronisation FIFO of the central-buffer switch
    input_fifo_depth: int = 8
    #: shared central buffer capacity, in flits
    central_buffer_flits: int = 2048
    #: chunk granularity of the central buffer, in flits
    chunk_flits: int = 8
    #: total flits writable into the central buffer per cycle
    cb_write_bandwidth: int = 8
    #: total flits readable out of the central buffer per cycle
    cb_read_bandwidth: int = 8
    #: per-input buffer of the input-buffer switch, in flits
    input_buffer_flits: int = 256
    #: largest worm in the system; sizes the central buffer's per-input
    #: quota (the deadlock-freedom guarantee) and must fit input buffers
    max_packet_flits: int = 160
    #: cycles from header completion to routing decision
    routing_delay: int = 2
    #: LCA traversal scheme for multidestination worms
    multicast_mode: MulticastRoutingMode = MulticastRoutingMode.TURNAROUND
    #: branch forwarding discipline (synchronous only on the IB switch)
    replication: ReplicationMode = ReplicationMode.ASYNCHRONOUS
    #: how equivalent up-ports are chosen
    up_port_policy: UpPortPolicy = UpPortPolicy.RANDOM
    #: enable expensive internal invariant checks (tests)
    self_check: bool = False
    #: extra fields reserved for experiment-specific knobs
    extras: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range parameters."""
        if self.input_fifo_depth < 1:
            raise ConfigurationError("input_fifo_depth must be >= 1")
        if self.chunk_flits < 1:
            raise ConfigurationError("chunk_flits must be >= 1")
        if self.central_buffer_flits < self.chunk_flits:
            raise ConfigurationError(
                "central buffer must hold at least one chunk"
            )
        if self.cb_write_bandwidth < 1 or self.cb_read_bandwidth < 1:
            raise ConfigurationError("central buffer bandwidth must be >= 1")
        if self.input_buffer_flits < 2:
            raise ConfigurationError("input_buffer_flits must be >= 2")
        if self.routing_delay < 0:
            raise ConfigurationError("routing_delay must be >= 0")
        if self.max_packet_flits < 2:
            raise ConfigurationError("max_packet_flits must be >= 2")


class SwitchBase(Component):
    """Ports, links and routing plumbing common to both architectures."""

    def __init__(
        self,
        name: str,
        table: SwitchRoutingTable,
        num_ports: int,
        settings: SwitchSettings,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(name)
        settings.validate()
        self.table = table
        self.num_ports = num_ports
        self.settings = settings
        self.tracer = tracer
        self.metrics = metrics
        self.in_links: List[Optional[Link]] = [None] * num_ports
        self.out_links: List[Optional[Link]] = [None] * num_ports
        self._up_selector = None

    # ------------------------------------------------------------------
    # wiring (done by the network builder)
    # ------------------------------------------------------------------
    def input_credit_depth(self, port: int) -> int:
        """Receive-buffer depth advertised to the upstream sender."""
        raise NotImplementedError

    def connect_in(self, port: int, link: Link) -> None:
        """Wire an incoming link and declare our buffer depth on it.

        Also registers this switch as the link's arrival waker: a send
        on the link schedules a tick at the delivery cycle, so an idle
        switch needs no polling to notice new worms.
        """
        if self.in_links[port] is not None:
            raise ProtocolError(f"{self.name}: input port {port} already wired")
        self.in_links[port] = link
        link.set_credits(self.input_credit_depth(port))
        link.wake_on_arrival(self)

    def connect_out(self, port: int, link: Link) -> None:
        """Wire an outgoing link and register this switch as its credit
        waker (a returned credit schedules a tick when it matures)."""
        if self.out_links[port] is not None:
            raise ProtocolError(f"{self.name}: output port {port} already wired")
        self.out_links[port] = link
        link.wake_on_credit(self)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        rng = sim.rng.stream(f"switch.{self.name}.uproute")
        self._up_selector = make_up_selector(
            self.settings.up_port_policy,
            rng=rng,
            credit_view=self._up_port_credits,
        )

    def _up_port_credits(self, port: int) -> int:
        link = self.out_links[port]
        if link is None:
            return -1
        return link.credits(self.sim.now)

    def compute_requests(self, worm: Worm) -> List[PortRequest]:
        """Decode a worm's header into output-port branch requests."""
        if self._up_selector is None:
            raise ProtocolError(f"{self.name}: switch not attached to simulator")
        return self.table.compute_requests(
            worm,
            mode=self.settings.multicast_mode,
            up_selector=self._up_selector,
            self_check=self.settings.self_check,
        )
