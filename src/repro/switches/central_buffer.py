"""The central-buffer switch architecture (paper section 4).

Modelled on the IBM SP2 High Performance Switch enhanced for
multidestination worms:

* each input port has a small synchronisation FIFO;
* a dynamically shared, chunked central buffer implements output queuing:
  packets destined to a busy output are written into the buffer and
  linked onto that output's queue;
* a unicast packet whose output is idle *bypasses* the central buffer and
  cuts through directly (the SP2 fast path);
* a multidestination worm is admitted only after reserving central-buffer
  space for its entire length (the paper's deadlock-freedom rule), is
  written into the buffer exactly once, and is read independently by one
  branch cursor per requested output port (asynchronous replication);
  chunks are freed as the slowest branch drains them;
* buffer bandwidth is capped at ``cb_write_bandwidth`` flit-writes and
  ``cb_read_bandwidth`` flit-reads per cycle, arbitrated round-robin
  (the flit-wide-RAM alternative of ref [33]).

Flits are never physically copied into Python lists: a worm's flits
arrive in order, so an input port tracks ``received``/``consumed``
cursors and materialises :class:`~repro.flits.flit.Flit` objects on
transmission.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

from repro.errors import ProtocolError
from repro.flits.flit import Flit
from repro.flits.worm import Worm
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.routing.table import SwitchRoutingTable
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switches.arbiter import RoundRobinArbiter
from repro.switches.base import SwitchBase, SwitchSettings
from repro.switches.chunks import (
    BranchCursor,
    CentralBufferPool,
    StoredPacket,
)


class _IngressState(enum.Enum):
    """Lifecycle of a worm arriving at an input port."""

    ARRIVING = "arriving"          # header not yet complete
    ROUTE_WAIT = "route_wait"      # header complete, routing delay running
    ADMIT_WAIT = "admit_wait"      # multidestination reservation queued
    STREAM_CB = "stream_cb"        # flits flowing into the central buffer
    STREAM_BYPASS = "stream_bypass"  # flits pulled directly by the output


class _Ingress:
    """Per-worm arrival state at one input port."""

    __slots__ = (
        "worm",
        "received",
        "consumed",
        "header_done_cycle",
        "state",
        "stored",
        "bypass_worm",
        "bypass_port",
    )

    def __init__(self, worm: Worm) -> None:
        self.worm = worm
        self.received = 0
        self.consumed = 0
        self.header_done_cycle: Optional[int] = None
        self.state = _IngressState.ARRIVING
        self.stored: Optional[StoredPacket] = None
        self.bypass_worm: Optional[Worm] = None
        self.bypass_port: Optional[int] = None

    @property
    def complete(self) -> bool:
        """True once every flit has left the input FIFO."""
        return self.consumed == self.worm.size_flits


class _BypassFeed:
    """An output port streaming a unicast worm straight from an input FIFO."""

    __slots__ = ("input_port", "ingress")

    def __init__(self, input_port: int, ingress: _Ingress) -> None:
        self.input_port = input_port
        self.ingress = ingress


class CentralBufferSwitch(SwitchBase):
    """SP2-style shared-buffer switch with multidestination support."""

    def __init__(
        self,
        name: str,
        table: SwitchRoutingTable,
        num_ports: int,
        settings: SwitchSettings,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(name, table, num_ports, settings, tracer, metrics)
        quota_pool = CentralBufferPool(
            capacity_flits=settings.central_buffer_flits,
            chunk_flits=settings.chunk_flits,
            num_inputs=num_ports,
            quota_chunks=-(-settings.max_packet_flits // settings.chunk_flits),
        )
        self.pool = quota_pool
        self._inflow: List[Deque[_Ingress]] = [deque() for _ in range(num_ports)]
        #: per-output FIFO of branch cursors queued in the central buffer
        self._out_queue: List[Deque[BranchCursor]] = [
            deque() for _ in range(num_ports)
        ]
        self._out_current: List[Optional[object]] = [None] * num_ports
        self._write_arbiter = RoundRobinArbiter(num_ports)
        self._read_arbiter = RoundRobinArbiter(num_ports)
        #: stored packets indexed by branch cursor identity
        self._stored_of_cursor: dict = {}
        #: routing decisions parked while a reservation waits
        self._pending_requests: dict = {}
        # hot-path activity counters: skip whole phases when nothing is
        # inside the switch (and, on the active-set kernel, decide
        # whether to re-arm at all)
        self._total_ingresses = 0
        self._outputs_busy = 0
        self._queued_branches = 0
        # set whenever a tick changes any switch state (flit accepted,
        # route/admit decision, write, activation, send); a blocked tick
        # that stays False may sleep instead of re-arming — see tick()
        self._stirred = False
        #: reused drain buffer — the per-cycle receive loop is allocation-free
        self._rx_scratch: List[Flit] = []
        # observability: shared process-wide counters (no-ops unless an
        # enabled registry was passed in; `_obs` keeps the hot path to a
        # single boolean test)
        self._obs = metrics.enabled
        self._c_forwarded = metrics.counter("switch.flits_forwarded")
        self._c_replicated = metrics.counter("switch.chunks_replicated")
        self._c_blocked = metrics.counter("switch.blocked_cycles")

    # ------------------------------------------------------------------
    # SwitchBase contract
    # ------------------------------------------------------------------
    def input_credit_depth(self, port: int) -> int:
        return self.settings.input_fifo_depth

    # ------------------------------------------------------------------
    # per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self._stirred = False
        self._receive(now)
        if self._total_ingresses:
            self._route_and_admit(now)
            self._write_central_buffer(now)
        if self._outputs_busy or self._queued_branches:
            self._drive_outputs(now)
        # active-set re-arm: ingresses cover arriving/routing/admission-
        # waiting worms; busy outputs and queued branches cover everything
        # held in the central buffer (a stored packet always has at least
        # one live branch cursor until fully drained).  A fully idle
        # switch is woken again by its in-links' arrival hooks.
        #
        # Blocked-sleep: a non-empty switch whose tick changed *nothing*
        # can only be unblocked by an arrival (in-link hook), a maturing
        # credit (out-link hook), its own routing delay expiring (exact
        # wake computed below), or chunk space freed by its own reads —
        # which are sends, hence stirring.  So an un-stirred tick may skip
        # the re-arm entirely.  Exception: with metrics enabled the
        # blocked-cycles counter must increment every blocked cycle, as it
        # does on the dense kernel, so observed runs keep polling.
        if self._total_ingresses or self._outputs_busy or self._queued_branches:
            if self._stirred or self._obs:
                self.wake_at(now + 1)
            else:
                wake = self._blocked_wake()
                if wake is not None:
                    self.wake_at(wake)

    def _blocked_wake(self) -> Optional[int]:
        """Earliest routing-delay expiry among blocked FIFO-head worms.

        The only *time*-driven transition a sleeping switch could miss:
        every other unblocking event fires a link wake hook.
        """
        delay = self.settings.routing_delay
        best: Optional[int] = None
        for inflow in self._inflow:
            if not inflow:
                continue
            ingress = inflow[0]
            if ingress.state is _IngressState.ROUTE_WAIT:
                assert ingress.header_done_cycle is not None
                cycle = ingress.header_done_cycle + delay
                if best is None or cycle < best:
                    best = cycle
        return best

    # -- phase 1: absorb link arrivals into the input FIFOs -------------
    def _receive(self, now: int) -> None:
        scratch = self._rx_scratch
        for port, link in enumerate(self.in_links):
            if link is None or not link.pending_arrival(now):
                continue
            del scratch[:]
            link.receive_into(now, scratch)
            for flit in scratch:
                self._accept_flit(port, flit, now)

    def _accept_flit(self, port: int, flit: Flit, now: int) -> None:
        inflow = self._inflow[port]
        ingress = inflow[-1] if inflow else None
        if ingress is None or ingress.received == ingress.worm.size_flits:
            if not flit.is_head:
                raise ProtocolError(
                    f"{self.name}.in{port}: body flit {flit!r} without head"
                )
            ingress = _Ingress(flit.worm)
            inflow.append(ingress)
            self._total_ingresses += 1
        if flit.worm is not ingress.worm or flit.index != ingress.received:
            raise ProtocolError(
                f"{self.name}.in{port}: out-of-order flit {flit!r} "
                f"(expected index {ingress.received} of {ingress.worm!r})"
            )
        ingress.received += 1
        self._stirred = True
        if ingress.received == ingress.worm.header_flits:
            ingress.header_done_cycle = now
            if ingress.state is _IngressState.ARRIVING:
                ingress.state = _IngressState.ROUTE_WAIT
        if self.tracer.enabled:
            self.tracer.emit(
                now, self.name, "flit_in", port=port, flit=repr(flit)
            )

    # -- phase 2: route the FIFO-front worm and admit it -----------------
    def _route_and_admit(self, now: int) -> None:
        for port in range(self.num_ports):
            inflow = self._inflow[port]
            if not inflow:
                continue
            ingress = inflow[0]
            if ingress.state is _IngressState.ROUTE_WAIT:
                self._try_route(port, ingress, now)
            if ingress.state is _IngressState.ADMIT_WAIT:
                self._try_admit(port, ingress, now)

    def _try_route(self, port: int, ingress: _Ingress, now: int) -> None:
        assert ingress.header_done_cycle is not None
        if now < ingress.header_done_cycle + self.settings.routing_delay:
            return
        self._stirred = True
        requests = self.compute_requests(ingress.worm)
        if ingress.worm.is_multidestination:
            ingress.stored = StoredPacket(
                self.pool, port, ingress.worm.size_flits, reserve_all=True
            )
            ingress.state = _IngressState.ADMIT_WAIT
            self._pending_requests[id(ingress)] = requests
            self._try_admit(port, ingress, now)
            return
        # unicast: single branch
        request = requests[0]
        child = ingress.worm.branch(request.destinations, request.descending)
        out_port = request.port
        if (
            self._out_current[out_port] is None
            and not self._out_queue[out_port]
        ):
            ingress.bypass_worm = child
            ingress.bypass_port = out_port
            ingress.state = _IngressState.STREAM_BYPASS
            self._out_current[out_port] = _BypassFeed(port, ingress)
            self._outputs_busy += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "bypass", inp=port, out=out_port,
                    packet=ingress.worm.packet.packet_id,
                    waited=now - ingress.header_done_cycle
                    - self.settings.routing_delay,
                )
        else:
            stored = StoredPacket(
                self.pool, port, ingress.worm.size_flits, reserve_all=False
            )
            cursor = stored.add_branch(child, out_port)
            self._stored_of_cursor[id(cursor)] = stored
            self._out_queue[out_port].append(cursor)
            self._queued_branches += 1
            ingress.stored = stored
            ingress.state = _IngressState.STREAM_CB
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "queue_cb", inp=port, out=out_port,
                    packet=ingress.worm.packet.packet_id,
                    waited=now - ingress.header_done_cycle
                    - self.settings.routing_delay,
                )

    def _try_admit(self, port: int, ingress: _Ingress, now: int) -> None:
        stored = ingress.stored
        assert stored is not None
        if not stored.try_admit(now):
            if self._obs:
                self._c_blocked.inc()
            return
        self._stirred = True
        requests = self._pending_requests.pop(id(ingress))
        if self._obs and len(requests) > 1:
            self._c_replicated.inc(
                self.pool.chunks_for(ingress.worm.size_flits)
                * (len(requests) - 1)
            )
        for request in requests:
            child = ingress.worm.branch(request.destinations, request.descending)
            cursor = stored.add_branch(child, request.port)
            self._stored_of_cursor[id(cursor)] = stored
            self._out_queue[request.port].append(cursor)
            self._queued_branches += 1
        ingress.state = _IngressState.STREAM_CB
        if self.tracer.enabled:
            self.tracer.emit(
                now, self.name, "admit_multidest",
                inp=port, branches=len(requests),
                packet=ingress.worm.packet.packet_id,
                waited=now - ingress.header_done_cycle
                - self.settings.routing_delay,
            )

    # -- phase 3: move flits from input FIFOs into the central buffer ----
    def _write_central_buffer(self, now: int) -> None:
        candidates = []
        for port in range(self.num_ports):
            inflow = self._inflow[port]
            if not inflow:
                continue
            ingress = inflow[0]
            if (
                ingress.state is _IngressState.STREAM_CB
                and ingress.consumed < ingress.received
            ):
                candidates.append(port)
        winners = self._write_arbiter.grant_up_to(
            candidates, self.settings.cb_write_bandwidth
        )
        for port in winners:
            ingress = self._inflow[port][0]
            stored = ingress.stored
            assert stored is not None
            if not stored.ensure_write_space(now):
                if self._obs:
                    self._c_blocked.inc()
                # when more inputs competed than the write bandwidth
                # admits, next cycle's rotated grant may reach an input
                # whose own quota still has room — keep polling
                if len(candidates) > self.settings.cb_write_bandwidth:
                    self._stirred = True
                continue  # central buffer full: stall this input
            stored.write_flit()
            self._stirred = True
            self._consume_fifo_slot(port, ingress, now)
            self.sim.note_progress()

    def _consume_fifo_slot(self, port: int, ingress: _Ingress, now: int) -> None:
        ingress.consumed += 1
        link = self.in_links[port]
        if link is not None:
            link.return_credit(now)
        if ingress.complete:
            self._inflow[port].popleft()
            self._total_ingresses -= 1

    # -- phase 4: drive the output ports ---------------------------------
    def _drive_outputs(self, now: int) -> None:
        # activate queued branches on idle outputs
        for port in range(self.num_ports):
            if self._out_current[port] is None and self._out_queue[port]:
                self._out_current[port] = self._out_queue[port].popleft()
                self._queued_branches -= 1
                self._outputs_busy += 1
                self._stirred = True
        # bypass feeds move independently of central-buffer bandwidth
        read_candidates = []
        for port in range(self.num_ports):
            current = self._out_current[port]
            if current is None:
                continue
            if isinstance(current, _BypassFeed):
                self._advance_bypass(port, current, now)
            else:
                cursor = current
                stored = self._stored_of_cursor[id(cursor)]
                link = self.out_links[port]
                if (
                    link is not None
                    and stored.readable(cursor)
                    and link.can_send(now)
                ):
                    read_candidates.append(port)
        winners = self._read_arbiter.grant_up_to(
            read_candidates, self.settings.cb_read_bandwidth
        )
        for port in winners:
            cursor = self._out_current[port]
            stored = self._stored_of_cursor[id(cursor)]
            link = self.out_links[port]
            assert link is not None
            flit = Flit(cursor.worm, cursor.read)
            link.send(now, flit)
            self._stirred = True
            stored.branch_read(cursor, now)
            if self._obs:
                self._c_forwarded.inc()
            self.sim.note_progress()
            if cursor.read == stored.total_flits:
                del self._stored_of_cursor[id(cursor)]
                self._out_current[port] = None
                self._outputs_busy -= 1

    def _advance_bypass(self, port: int, feed: _BypassFeed, now: int) -> None:
        ingress = feed.ingress
        link = self.out_links[port]
        if link is None:
            raise ProtocolError(f"{self.name}: bypass to unwired port {port}")
        if ingress.consumed >= ingress.received or not link.can_send(now):
            return
        assert ingress.bypass_worm is not None
        flit = Flit(ingress.bypass_worm, ingress.consumed)
        link.send(now, flit)
        self._stirred = True
        self._consume_fifo_slot(feed.input_port, ingress, now)
        if self._obs:
            self._c_forwarded.inc()
        self.sim.note_progress()
        if ingress.complete:
            self._out_current[port] = None
            self._outputs_busy -= 1

    # ------------------------------------------------------------------
    # introspection for tests and metrics
    # ------------------------------------------------------------------
    def fifo_occupancy(self, port: int) -> int:
        """Flits currently held in an input FIFO."""
        return sum(i.received - i.consumed for i in self._inflow[port])

    def output_queue_length(self, port: int) -> int:
        """Branches queued (not yet active) on an output port."""
        return len(self._out_queue[port])

    def idle(self) -> bool:
        """True when no worm is anywhere inside the switch."""
        return (
            all(not q for q in self._inflow)
            and all(not q for q in self._out_queue)
            and all(c is None for c in self._out_current)
            and self.pool.used_chunks == 0
        )
