"""Switch architectures: links, arbitration, and the two designs of the paper."""

from repro.switches.arbiter import RoundRobinArbiter
from repro.switches.chunks import CentralBufferPool, StoredPacket
from repro.switches.link import Link
from repro.switches.base import SwitchBase
from repro.switches.central_buffer import CentralBufferSwitch
from repro.switches.input_buffer import InputBufferSwitch

__all__ = [
    "CentralBufferPool",
    "CentralBufferSwitch",
    "InputBufferSwitch",
    "Link",
    "RoundRobinArbiter",
    "StoredPacket",
    "SwitchBase",
]
