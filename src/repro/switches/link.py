"""Unidirectional pipelined links with credit-based flow control.

A link carries at most one flit per cycle and delivers it ``latency``
cycles later; credits flow back with ``credit_latency``.  The receiver
declares its buffer depth once (:meth:`set_credits`); the sender may only
send while it holds a credit, so a full receiver exerts backpressure and
a worm blocks in place — the essential wormhole behaviour.

The link is passive (not a :class:`~repro.sim.component.Component`): the
sender asks :meth:`can_send`/:meth:`send` during its tick and the receiver
drains :meth:`receive`/:meth:`receive_into` during its own, with the
pipeline queues keyed by arrival cycle.  Because latency is at least one
cycle, behaviour is independent of which side ticks first.

In-flight flits are stored packed — as int spans in a preallocated
:class:`~repro.flits.packed.SpanQueue`, never as per-flit objects.  Both
data planes share this storage:

* the object plane sends one :class:`~repro.flits.flit.Flit` per cycle
  (:meth:`send`) and materialises flit objects on :meth:`receive`;
* the packed plane sends flit *coordinates* (:meth:`send_packed`) or a
  whole contiguous span in one call (:meth:`send_span`, which reserves
  one send slot and one credit per member flit, exactly as the same
  flits sent one per cycle would) and drains spans with
  :meth:`receive_span`, which moves up to ``min(credits, pending)``
  flits per wake as slice arithmetic on the span records.

The wire protocol is identical either way: a span sent at cycle *t*
occupies send slots *t .. t+count-1* and delivers one flit per cycle —
so credits, arrival cycles and every downstream observable match the
one-flit-per-tick reference bit for bit (see
``tests/sim/test_packed_differential.py``).

For the active-set kernel the link carries two *wake hooks*: the
receiving component registers :meth:`on_arrival` (wired by
``connect_in``) so a send wakes it at the delivery cycle, and the
sending component registers :meth:`on_credit` (wired by ``connect_out``)
so a credit return wakes it when the credit matures.  Both hooks are
optional — a bare link in a unit test works exactly as before.

The arrival hook fires once per :meth:`send` and once per
:meth:`send_span` — at the span's *first* arrival cycle, not once per
member flit.  A receiver that drains a span partially therefore owns its
own re-arm for the remaining members; every switch satisfies this for
free, because accepting a flit stirs it and a stirred non-empty switch
always re-arms for the next cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.flits.flit import Flit
from repro.flits.packed import SpanQueue
from repro.flits.worm import Worm
from repro.sim.component import Component

#: a wake hook receives the absolute cycle the wake is requested for
WakeHook = Callable[[int], None]


class Link:
    """One direction of a cable between two components."""

    def __init__(
        self,
        name: str,
        latency: int = 1,
        credit_latency: Optional[int] = None,
    ) -> None:
        if latency < 1:
            raise ConfigurationError("link latency must be at least 1 cycle")
        self.name = name
        self.latency = latency
        self.credit_latency = credit_latency if credit_latency is not None else latency
        if self.credit_latency < 1:
            raise ConfigurationError("credit latency must be at least 1 cycle")
        in_flight = SpanQueue()
        self._in_flight = in_flight
        # receiver-side hot aliases: both drains below are pure wrappers
        # around the span store, and both run once (or more) per busy
        # input port per cycle — binding the store's methods directly
        # saves a Python call on every poll.  Semantics are documented
        # on SpanQueue.has_arrived / SpanQueue.take.
        #: True when :meth:`receive_span` would deliver at least one flit
        #: at the given cycle (the REP007 guard for the drains below).
        self.pending_arrival = in_flight.has_arrived
        #: pop the longest arrived span as ``(worm, start, count)`` —
        #: up to ``min(limit, pending)`` flits of one worm, ``None`` when
        #: nothing has arrived.  The packed-plane drain: call repeatedly
        #: until ``None``; a span is never split across worms.
        self.receive_span = in_flight.take
        self._credit_returns: Deque[Tuple[int, int]] = deque()
        self._credits: Optional[int] = None
        #: last cycle with a reserved send slot; a span send at cycle t
        #: reserves slots t .. t+count-1 in one call
        self._last_send_cycle = -1
        self._arrival_hook: Optional[WakeHook] = None
        self._credit_hook: Optional[WakeHook] = None
        # component wakers (the fast form of the hooks above): storing
        # the component itself lets the send/credit paths test its
        # next-cycle wake marker inline and skip the wake call entirely
        # when the target is already scheduled — the overwhelmingly
        # common case in a busy network
        self._arrival_comp: Optional[Component] = None
        self._credit_comp: Optional[Component] = None
        #: total flits ever sent (utilisation statistics)
        self.flits_sent = 0

    # ------------------------------------------------------------------
    # wake hooks (wired once, by whoever owns each end)
    # ------------------------------------------------------------------
    def on_arrival(self, hook: WakeHook) -> None:
        """Register the receiver's wake hook; called per send with the
        arrival cycle, so an idle receiver is ticked exactly when the
        flit becomes receivable."""
        if self._arrival_hook is not None or self._arrival_comp is not None:
            raise ProtocolError(f"link {self.name}: arrival hook already set")
        self._arrival_hook = hook

    def on_credit(self, hook: WakeHook) -> None:
        """Register the sender's wake hook; called per credit return with
        the cycle the credit matures, so a credit-starved sender can go
        dormant instead of polling."""
        if self._credit_hook is not None or self._credit_comp is not None:
            raise ProtocolError(f"link {self.name}: credit hook already set")
        self._credit_hook = hook

    def wake_on_arrival(self, component: Component) -> None:
        """Register the receiving component itself as the arrival waker.

        Equivalent to ``on_arrival(component.wake_at)`` but lets the
        send paths dedup against the component's next-cycle wake marker
        without a call; the standard network wiring uses this form.
        """
        if self._arrival_hook is not None or self._arrival_comp is not None:
            raise ProtocolError(f"link {self.name}: arrival hook already set")
        self._arrival_comp = component

    def wake_on_credit(self, component: Component) -> None:
        """Register the sending component itself as the credit waker
        (the fast form of ``on_credit(component.wake_at)``)."""
        if self._credit_hook is not None or self._credit_comp is not None:
            raise ProtocolError(f"link {self.name}: credit hook already set")
        self._credit_comp = component

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def set_credits(self, depth: int) -> None:
        """Declare the receiver's buffer depth; must be called exactly once."""
        if self._credits is not None:
            raise ProtocolError(f"link {self.name}: credits already set")
        if depth < 1:
            raise ConfigurationError("credit depth must be at least 1")
        self._credits = depth

    def receive(self, now: int) -> List[Flit]:
        """Pop every flit that has arrived by cycle ``now``, in order.

        Allocates a fresh list per call; the per-cycle drain loops use
        :meth:`receive_into` with a reused scratch buffer instead.
        """
        out: List[Flit] = []
        self.receive_into(now, out)
        return out

    def receive_into(self, now: int, buf: List[Flit]) -> int:
        """Append every flit arrived by ``now`` to ``buf``; return count.

        The object-plane drain: materialises one :class:`Flit` per
        arrived member of the packed span records.
        """
        in_flight = self._in_flight
        count = 0
        while True:
            span = in_flight.take(now)
            if span is None:
                break
            worm, start, taken = span
            for index in range(start, start + taken):
                buf.append(Flit(worm, index))
            count += taken
        return count

    def return_credit(self, now: int, count: int = 1) -> None:
        """Receiver freed ``count`` buffer slots; sender sees them later."""
        if count < 1:
            raise ValueError("count must be positive")
        mature = now + self.credit_latency
        self._credit_returns.append((mature, count))
        comp = self._credit_comp
        if comp is not None:
            # inline wake dedup: the marker equals `mature` only when the
            # component is already in the kernel's next-cycle bucket for
            # exactly that cycle (markers never run ahead of the bucket)
            if comp._wake_marker != mature:
                comp.wake_at(mature)
        elif self._credit_hook is not None:
            self._credit_hook(mature)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def credits(self, now: int) -> int:
        """Credits usable by the sender at cycle ``now``."""
        credits = self._credits
        if credits is None:
            raise ProtocolError(f"link {self.name}: receiver never set credits")
        returns = self._credit_returns
        if returns:  # skip the drain loop entirely on the idle path
            while returns and returns[0][0] <= now:
                credits += returns.popleft()[1]
            self._credits = credits
        return credits

    def can_send(self, now: int) -> bool:
        """True when a credit is available and this cycle's slot is free."""
        if self._last_send_cycle >= now:
            return False
        # inlined credits(now): this runs once per busy output per cycle
        credits = self._credits
        if credits is None:
            raise ProtocolError(f"link {self.name}: receiver never set credits")
        returns = self._credit_returns
        if returns and returns[0][0] <= now:
            while returns and returns[0][0] <= now:
                credits += returns.popleft()[1]
            self._credits = credits
        return credits > 0

    def sendable_span(self, now: int) -> int:
        """Largest span :meth:`send_span` would accept at cycle ``now``."""
        if self._last_send_cycle >= now:
            return 0
        return self.credits(now)

    def send(self, now: int, flit: Flit) -> None:
        """Transmit one flit; requires :meth:`can_send`."""
        self.send_packed(now, flit.worm, flit.index)

    def send_packed(self, now: int, worm: Worm, index: int) -> None:
        """Transmit flit ``(worm, index)`` without materialising it."""
        if self._last_send_cycle >= now:
            raise ProtocolError(
                f"link {self.name}: second send in cycle {now}"
            )
        # inlined credits(now): this is the hottest call in the simulator
        credits = self._credits
        if credits is None:
            raise ProtocolError(f"link {self.name}: receiver never set credits")
        returns = self._credit_returns
        if returns and returns[0][0] <= now:
            while returns and returns[0][0] <= now:
                credits += returns.popleft()[1]
        if credits <= 0:
            self._credits = credits
            raise ProtocolError(
                f"link {self.name}: send without credit in cycle {now}"
            )
        self._credits = credits - 1
        self._last_send_cycle = now
        arrival = now + self.latency
        self._in_flight.push_span(arrival, worm, index, 1)
        self.flits_sent += 1
        comp = self._arrival_comp
        if comp is not None:
            if comp._wake_marker != arrival:
                comp.wake_at(arrival)
        elif self._arrival_hook is not None:
            self._arrival_hook(arrival)

    def send_granted(self, now: int, worm: Worm, index: int) -> None:
        """Transmit flit ``(worm, index)`` after a :meth:`can_send` check.

        The packed switches test :meth:`can_send` while collecting grant
        candidates and send to each winner in the same cycle; since
        ``can_send`` already drained matured credit returns and nothing
        else can touch this link's credits within the tick, re-draining
        here would be pure overhead.  Caller contract: ``can_send(now)``
        returned True earlier in this same cycle and no other send has
        happened since — exactly what the scan-then-grant phases ensure.
        """
        self._credits = self._credits - 1  # type: ignore[operator]
        self._last_send_cycle = now
        arrival = now + self.latency
        self._in_flight.push_span(arrival, worm, index, 1)
        self.flits_sent += 1
        comp = self._arrival_comp
        if comp is not None:
            if comp._wake_marker != arrival:
                comp.wake_at(arrival)
        elif self._arrival_hook is not None:
            self._arrival_hook(arrival)

    def send_span(self, now: int, worm: Worm, start: int, count: int) -> None:
        """Transmit ``count`` flits of ``worm`` from ``start`` in one call.

        Wire-identical to ``count`` single sends on consecutive cycles:
        one send slot and one credit per member flit (all reserved now)
        and member ``j`` arriving at ``now + latency + j``.  The arrival
        hook fires once, at the first arrival cycle; the receiver's own
        stirred re-arm covers the rest of the span (see the module
        docstring).  Requires ``count <= sendable_span(now)``.
        """
        if count < 1:
            raise ValueError("span count must be positive")
        if self._last_send_cycle >= now:
            raise ProtocolError(
                f"link {self.name}: second send in cycle {now}"
            )
        if self.credits(now) < count:
            raise ProtocolError(
                f"link {self.name}: span of {count} flits exceeds "
                f"{self._credits} credits in cycle {now}"
            )
        self._credits -= count  # type: ignore[operator]
        self._last_send_cycle = now + count - 1
        arrival = now + self.latency
        self._in_flight.push_span(arrival, worm, start, count)
        self.flits_sent += count
        comp = self._arrival_comp
        if comp is not None:
            if comp._wake_marker != arrival:
                comp.wake_at(arrival)
        elif self._arrival_hook is not None:
            self._arrival_hook(arrival)

    # ------------------------------------------------------------------
    # introspection (tests and invariant checks)
    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Flits currently traversing the pipeline."""
        return len(self._in_flight)

    def credits_in_return(self) -> int:
        """Credits currently travelling back to the sender."""
        return sum(count for _, count in self._credit_returns)

    def accounted_credits(self) -> Optional[int]:
        """Credits at the sender plus those in flight (either direction).

        Credit conservation: this value plus the flits the *receiver*
        currently holds without having returned their credits equals the
        depth declared via :meth:`set_credits`.  Tests use it to assert
        no credit is ever lost or duplicated.
        """
        if self._credits is None:
            return None
        return self._credits + self.in_flight() + self.credits_in_return()

    def __repr__(self) -> str:
        return f"Link({self.name!r}, latency={self.latency})"
