"""Unidirectional pipelined links with credit-based flow control.

A link carries at most one flit per cycle and delivers it ``latency``
cycles later; credits flow back with ``credit_latency``.  The receiver
declares its buffer depth once (:meth:`set_credits`); the sender may only
send while it holds a credit, so a full receiver exerts backpressure and
a worm blocks in place — the essential wormhole behaviour.

The link is passive (not a :class:`~repro.sim.component.Component`): the
sender asks :meth:`can_send`/:meth:`send` during its tick and the receiver
drains :meth:`receive`/:meth:`receive_into` during its own, with the
pipeline queues keyed by arrival cycle.  Because latency is at least one
cycle, behaviour is independent of which side ticks first.

For the active-set kernel the link carries two *wake hooks*: the
receiving component registers :meth:`on_arrival` (wired by
``connect_in``) so a send wakes it at the delivery cycle, and the
sending component registers :meth:`on_credit` (wired by ``connect_out``)
so a credit return wakes it when the credit matures.  Both hooks are
optional — a bare link in a unit test works exactly as before.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.flits.flit import Flit

#: a wake hook receives the absolute cycle the wake is requested for
WakeHook = Callable[[int], None]


class Link:
    """One direction of a cable between two components."""

    def __init__(
        self,
        name: str,
        latency: int = 1,
        credit_latency: Optional[int] = None,
    ) -> None:
        if latency < 1:
            raise ConfigurationError("link latency must be at least 1 cycle")
        self.name = name
        self.latency = latency
        self.credit_latency = credit_latency if credit_latency is not None else latency
        if self.credit_latency < 1:
            raise ConfigurationError("credit latency must be at least 1 cycle")
        self._in_flight: Deque[Tuple[int, Flit]] = deque()
        self._credit_returns: Deque[Tuple[int, int]] = deque()
        self._credits: Optional[int] = None
        self._last_send_cycle = -1
        self._arrival_hook: Optional[WakeHook] = None
        self._credit_hook: Optional[WakeHook] = None
        #: total flits ever sent (utilisation statistics)
        self.flits_sent = 0

    # ------------------------------------------------------------------
    # wake hooks (wired once, by whoever owns each end)
    # ------------------------------------------------------------------
    def on_arrival(self, hook: WakeHook) -> None:
        """Register the receiver's wake hook; called per send with the
        arrival cycle, so an idle receiver is ticked exactly when the
        flit becomes receivable."""
        if self._arrival_hook is not None:
            raise ProtocolError(f"link {self.name}: arrival hook already set")
        self._arrival_hook = hook

    def on_credit(self, hook: WakeHook) -> None:
        """Register the sender's wake hook; called per credit return with
        the cycle the credit matures, so a credit-starved sender can go
        dormant instead of polling."""
        if self._credit_hook is not None:
            raise ProtocolError(f"link {self.name}: credit hook already set")
        self._credit_hook = hook

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def set_credits(self, depth: int) -> None:
        """Declare the receiver's buffer depth; must be called exactly once."""
        if self._credits is not None:
            raise ProtocolError(f"link {self.name}: credits already set")
        if depth < 1:
            raise ConfigurationError("credit depth must be at least 1")
        self._credits = depth

    def pending_arrival(self, now: int) -> bool:
        """True when :meth:`receive` would deliver at least one flit.

        A cheap guard for the per-cycle hot path: components poll every
        input link every cycle they are awake, and most are silent most
        cycles (enforced by reprolint rule REP007).
        """
        return bool(self._in_flight) and self._in_flight[0][0] <= now

    def receive(self, now: int) -> List[Flit]:
        """Pop every flit that has arrived by cycle ``now``, in order.

        Allocates a fresh list per call; the per-cycle drain loops use
        :meth:`receive_into` with a reused scratch buffer instead.
        """
        out: List[Flit] = []
        self.receive_into(now, out)
        return out

    def receive_into(self, now: int, buf: List[Flit]) -> int:
        """Append every flit arrived by ``now`` to ``buf``; return count.

        The allocation-free variant of :meth:`receive` for hot drain
        loops: the caller owns (and reuses) ``buf``.
        """
        in_flight = self._in_flight
        count = 0
        while in_flight and in_flight[0][0] <= now:
            buf.append(in_flight.popleft()[1])
            count += 1
        return count

    def return_credit(self, now: int, count: int = 1) -> None:
        """Receiver freed ``count`` buffer slots; sender sees them later."""
        if count < 1:
            raise ValueError("count must be positive")
        mature = now + self.credit_latency
        self._credit_returns.append((mature, count))
        if self._credit_hook is not None:
            self._credit_hook(mature)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def credits(self, now: int) -> int:
        """Credits usable by the sender at cycle ``now``."""
        credits = self._credits
        if credits is None:
            raise ProtocolError(f"link {self.name}: receiver never set credits")
        returns = self._credit_returns
        if returns:  # skip the drain loop entirely on the idle path
            while returns and returns[0][0] <= now:
                credits += returns.popleft()[1]
            self._credits = credits
        return credits

    def can_send(self, now: int) -> bool:
        """True when a credit is available and this cycle's slot is free."""
        return self._last_send_cycle != now and self.credits(now) > 0

    def send(self, now: int, flit: Flit) -> None:
        """Transmit one flit; requires :meth:`can_send`."""
        if self._last_send_cycle == now:
            raise ProtocolError(
                f"link {self.name}: second send in cycle {now}"
            )
        if self.credits(now) <= 0:
            raise ProtocolError(
                f"link {self.name}: send without credit in cycle {now}"
            )
        self._credits -= 1  # type: ignore[operator]
        self._last_send_cycle = now
        arrival = now + self.latency
        self._in_flight.append((arrival, flit))
        self.flits_sent += 1
        if self._arrival_hook is not None:
            self._arrival_hook(arrival)

    # ------------------------------------------------------------------
    # introspection (tests and invariant checks)
    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Flits currently traversing the pipeline."""
        return len(self._in_flight)

    def credits_in_return(self) -> int:
        """Credits currently travelling back to the sender."""
        return sum(count for _, count in self._credit_returns)

    def accounted_credits(self) -> Optional[int]:
        """Credits at the sender plus those in flight (either direction).

        Credit conservation: this value plus the flits the *receiver*
        currently holds without having returned their credits equals the
        depth declared via :meth:`set_credits`.  Tests use it to assert
        no credit is ever lost or duplicated.
        """
        if self._credits is None:
            return None
        return self._credits + self.in_flight() + self.credits_in_return()

    def __repr__(self) -> str:
        return f"Link({self.name!r}, latency={self.latency})"
