"""Packed-data-plane variant of the central-buffer switch.

Same microarchitecture as
:class:`~repro.switches.central_buffer.CentralBufferSwitch` — the
routing, admission and buffering phases are inherited unchanged — but
the flit-movement phases are rewritten against the packed link API:
spans in (:meth:`~repro.switches.link.Link.receive_span`), flit
coordinates out (:meth:`~repro.switches.link.Link.send_packed`), and
central-buffer bandwidth arbitrated with the single-rotation
:meth:`~repro.switches.arbiter.RoundRobinArbiter.grant_batch`.  No
:class:`~repro.flits.flit.Flit` object is ever constructed here
(enforced by reprolint rule REP008); trace events use
:func:`~repro.flits.packed.flit_repr`.

Every observable is bit-identical to the object path: a span accept
updates the same ingress cursors the per-flit accept would, and switch
egress is still one flit per output per cycle, so credits, arrival
cycles, arbiter pointers and pool occupancy evolve identically (see
``tests/sim/test_packed_differential.py``).  Beyond the span moves,
the rewritten phases shave constant factors the object path pays per
flit: the bandwidth caps are cached at construction, the stored packet
of each active output is cached per port instead of re-resolved through
the ``id(cursor)`` registry twice per cycle, and the FIFO-slot consume
and kernel progress bookkeeping are inlined into the phase loops.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.flits.packed import flit_repr
from repro.flits.worm import Worm
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.routing.table import SwitchRoutingTable
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switches.base import SwitchSettings
from repro.switches.central_buffer import (
    CentralBufferSwitch,
    _BypassFeed,
    _Ingress,
    _IngressState,
)
from repro.switches.chunks import StoredPacket
from repro.switches.link import Link

#: per-port receive bindings: (port, pending_arrival, receive_span)
_RxPort = Tuple[int, Callable[[int], bool], Callable[..., object]]


class PackedCentralBufferSwitch(CentralBufferSwitch):
    """SP2-style shared-buffer switch on the packed data plane."""

    def __init__(
        self,
        name: str,
        table: SwitchRoutingTable,
        num_ports: int,
        settings: SwitchSettings,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(name, table, num_ports, settings, tracer, metrics)
        # hot-path constants and caches (see module docstring)
        self._w_bw = settings.cb_write_bandwidth
        self._r_bw = settings.cb_read_bandwidth
        self._chunk_flits = settings.chunk_flits
        #: stored packet feeding each active (non-bypass) output, cached
        #: at branch activation so the per-cycle scan never consults the
        #: ``_stored_of_cursor`` registry
        self._cur_stored: List[Optional[StoredPacket]] = [None] * num_ports
        #: per-wired-input receive bindings, built lazily on first tick
        #: (wiring happens after construction) and invalidated by
        #: :meth:`connect_in`
        self._rx_ports: Optional[List[_RxPort]] = None

    def connect_in(self, port: int, link: Link) -> None:
        super().connect_in(port, link)
        self._rx_ports = None

    # -- phase 1: absorb link arrivals as spans --------------------------
    def _receive(self, now: int) -> None:
        rx = self._rx_ports
        if rx is None:
            rx = self._rx_ports = [
                (port, link.pending_arrival, link.receive_span)
                for port, link in enumerate(self.in_links)
                if link is not None
            ]
        for port, has_arrived, take in rx:
            while has_arrived(now):
                worm, start, count = take(now)  # type: ignore[misc]
                self._accept_span(port, worm, start, count, now)

    def _accept_span(
        self, port: int, worm: Worm, start: int, count: int, now: int
    ) -> None:
        inflow = self._inflow[port]
        ingress = inflow[-1] if inflow else None
        if ingress is None or ingress.received == ingress.worm.size_flits:
            if start != 0:
                raise ProtocolError(
                    f"{self.name}.in{port}: body flit "
                    f"{flit_repr(worm, start)} without head"
                )
            ingress = _Ingress(worm)
            inflow.append(ingress)
            self._total_ingresses += 1
        if worm is not ingress.worm or start != ingress.received:
            raise ProtocolError(
                f"{self.name}.in{port}: out-of-order flit "
                f"{flit_repr(worm, start)} "
                f"(expected index {ingress.received} of {ingress.worm!r})"
            )
        ingress.received = start + count
        self._stirred = True
        # the object path stamps header completion at the cycle of the
        # tick that drains the completing flit — for a span that crosses
        # the header boundary that is exactly this tick's cycle
        if start < worm.header_flits <= start + count:
            ingress.header_done_cycle = now
            if ingress.state is _IngressState.ARRIVING:
                ingress.state = _IngressState.ROUTE_WAIT
        if self.tracer.enabled:
            for index in range(start, start + count):
                self.tracer.emit(
                    now, self.name, "flit_in",
                    port=port, flit=flit_repr(worm, index),
                )

    # -- phase 3: move flits from input FIFOs into the central buffer ----
    def _write_central_buffer(self, now: int) -> None:
        inflows = self._inflow
        candidates = []
        for port in range(self.num_ports):
            inflow = inflows[port]
            if not inflow:
                continue
            ingress = inflow[0]
            if (
                ingress.state is _IngressState.STREAM_CB
                and ingress.consumed < ingress.received
            ):
                candidates.append(port)
        if not candidates:
            return
        w_bw = self._w_bw
        winners = self._write_arbiter.grant_batch(candidates, w_bw)
        in_links = self.in_links
        progress = 0
        for port in winners:
            ingress = inflows[port][0]
            stored = ingress.stored
            assert stored is not None
            if not stored.ensure_write_space(now):
                if self._obs:
                    self._c_blocked.inc()
                # when more inputs competed than the write bandwidth
                # admits, next cycle's rotated grant may reach an input
                # whose own quota still has room — keep polling
                if len(candidates) > w_bw:
                    self._stirred = True
                continue  # central buffer full: stall this input
            stored.write_flit()
            # inlined FIFO-slot consume (the object path's
            # _consume_fifo_slot, minus a call per flit)
            consumed = ingress.consumed + 1
            ingress.consumed = consumed
            link = in_links[port]
            if link is not None:
                link.return_credit(now)
            if consumed == ingress.worm.size_flits:
                inflows[port].popleft()
                self._total_ingresses -= 1
            progress += 1
        if progress:
            self._stirred = True
            self.sim.progress += progress

    # -- phase 4: drive the output ports ---------------------------------
    def _drive_outputs(self, now: int) -> None:
        out_current = self._out_current
        out_links = self.out_links
        cur_stored = self._cur_stored
        # activate queued branches on idle outputs
        if self._queued_branches:
            out_queue = self._out_queue
            for port in range(self.num_ports):
                if out_current[port] is None and out_queue[port]:
                    cursor = out_queue[port].popleft()
                    out_current[port] = cursor
                    cur_stored[port] = self._stored_of_cursor[id(cursor)]
                    self._queued_branches -= 1
                    self._outputs_busy += 1
                    self._stirred = True
        # bypass feeds move independently of central-buffer bandwidth
        read_candidates = []
        for port in range(self.num_ports):
            current = out_current[port]
            if current is None:
                continue
            if type(current) is _BypassFeed:
                self._advance_bypass(port, current, now)
            else:
                stored = cur_stored[port]
                link = out_links[port]
                assert stored is not None
                # inlined Link.can_send (kept in sync with it): credits
                # only ever grow by draining matured returns, so a
                # positive counter needs no drain to prove sendability
                if (
                    link is not None
                    and current.read < stored.flits_written  # type: ignore[attr-defined]
                    and link._last_send_cycle < now
                    and (
                        link._credits > 0  # type: ignore[operator]
                        or link.can_send(now)
                    )
                ):
                    read_candidates.append(port)
        if not read_candidates:
            return
        winners = self._read_arbiter.grant_batch(read_candidates, self._r_bw)
        chunk = self._chunk_flits
        progress = 0
        for port in winners:
            cursor = out_current[port]
            stored = cur_stored[port]
            link = out_links[port]
            assert stored is not None and link is not None
            read = cursor.read  # type: ignore[union-attr]
            link.send_granted(now, cursor.worm, read)  # type: ignore[union-attr]
            read += 1
            cursor.read = read  # type: ignore[union-attr]
            # inlined single-branch chunk release: _release_consumed only
            # frees chunks at chunk boundaries or on full consumption, so
            # skip the call on every other flit (multi-branch packets
            # keep the slowest-branch logic in branch_read)
            if len(stored.branches) == 1:
                if read == stored.total_flits or not read % chunk:
                    stored._release_consumed(now)
            else:
                stored._release_consumed(now)
            progress += 1
            if read == stored.total_flits:
                del self._stored_of_cursor[id(cursor)]
                out_current[port] = None
                cur_stored[port] = None
                self._outputs_busy -= 1
        if progress:
            self._stirred = True
            self.sim.progress += progress
            if self._obs:
                self._c_forwarded.inc(progress)

    def _advance_bypass(self, port: int, feed: _BypassFeed, now: int) -> None:
        ingress = feed.ingress
        link = self.out_links[port]
        if link is None:
            raise ProtocolError(f"{self.name}: bypass to unwired port {port}")
        consumed = ingress.consumed
        if consumed >= ingress.received or link._last_send_cycle >= now:
            return
        # inlined Link.can_send, as in the read-candidate scan
        if link._credits <= 0 and not link.can_send(  # type: ignore[operator]
            now
        ):
            return
        worm = ingress.bypass_worm
        assert worm is not None
        link.send_granted(now, worm, consumed)
        self._stirred = True
        # inlined FIFO-slot consume, as in _write_central_buffer
        consumed += 1
        ingress.consumed = consumed
        in_link = self.in_links[feed.input_port]
        if in_link is not None:
            in_link.return_credit(now)
        if self._obs:
            self._c_forwarded.inc()
        self.sim.progress += 1
        if consumed == ingress.worm.size_flits:
            self._inflow[feed.input_port].popleft()
            self._total_ingresses -= 1
            self._out_current[port] = None
            self._outputs_busy -= 1
