"""The input-buffer switch architecture (paper section 5).

Each input port owns a private FIFO buffer sized to hold the largest
packet in the system (the deadlock-freedom requirement for asynchronous
replication: an accepted multidestination worm can always be completely
buffered in its input buffer).  The worm at the buffer head is decoded
and requests its output ports; every granted branch reads the buffer
through its own cursor at its own pace — asynchronous replication — and
a buffer slot is recycled (credit returned upstream) once the slowest
branch has consumed it.

The architectural weaknesses the paper demonstrates are modelled
faithfully:

* storage is statically partitioned per input (no sharing), and
* strict FIFO service means a blocked head worm blocks every packet
  behind it (head-of-line blocking), even ones whose outputs are idle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import ProtocolError
from repro.flits.flit import Flit
from repro.flits.worm import Worm
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.routing.table import SwitchRoutingTable
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switches.arbiter import RoundRobinArbiter
from repro.switches.base import ReplicationMode, SwitchBase, SwitchSettings


class _Branch:
    """One replicated output branch reading an input buffer."""

    __slots__ = ("worm", "out_port", "read", "input_port", "ingress")

    def __init__(
        self, worm: Worm, out_port: int, input_port: int, ingress: "_Ingress"
    ) -> None:
        self.worm = worm
        self.out_port = out_port
        self.read = 0
        self.input_port = input_port
        self.ingress = ingress


class _Ingress:
    """Per-worm arrival state at one input buffer."""

    __slots__ = ("worm", "received", "freed", "header_done_cycle", "branches")

    def __init__(self, worm: Worm) -> None:
        self.worm = worm
        self.received = 0
        self.freed = 0
        self.header_done_cycle: Optional[int] = None
        self.branches: List[_Branch] = []

    @property
    def routed(self) -> bool:
        return bool(self.branches)

    @property
    def drained(self) -> bool:
        """True when every branch has read the entire worm."""
        return (
            self.routed
            and self.received == self.worm.size_flits
            and all(b.read == self.worm.size_flits for b in self.branches)
        )

    def min_read(self) -> int:
        return min(branch.read for branch in self.branches)


class InputBufferSwitch(SwitchBase):
    """Input-queued switch with per-branch asynchronous replication."""

    def __init__(
        self,
        name: str,
        table: SwitchRoutingTable,
        num_ports: int,
        settings: SwitchSettings,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(name, table, num_ports, settings, tracer, metrics)
        self._inflow: List[Deque[_Ingress]] = [deque() for _ in range(num_ports)]
        #: branches waiting for each output port, keyed by input port
        self._waiting: List[Dict[int, _Branch]] = [
            {} for _ in range(num_ports)
        ]
        self._current: List[Optional[_Branch]] = [None] * num_ports
        self._grant_arbiters = [
            RoundRobinArbiter(num_ports) for _ in range(num_ports)
        ]
        # hot-path activity counters: skip whole phases when idle (and,
        # on the active-set kernel, decide whether to re-arm at all)
        self._total_ingresses = 0
        self._active = 0  # granted branches plus waiting requests
        # set whenever a tick changes any switch state (flit accepted,
        # routing decision, output grant, send); a blocked tick that
        # stays False may sleep instead of re-arming — see tick()
        self._stirred = False
        #: reused drain buffer — the per-cycle receive loop is allocation-free
        self._rx_scratch: List[Flit] = []
        #: FIFO of multidestination worms awaiting the replication token
        #: (synchronous mode only): at most one worm per switch may
        #: hold-and-accumulate output ports, the deadlock-avoidance
        #: arbitration synchronous replication requires (ref [6])
        self._sync_queue: Deque[_Ingress] = deque()
        # observability: shared process-wide counters (no-ops unless an
        # enabled registry was passed in)
        self._obs = metrics.enabled
        self._c_forwarded = metrics.counter("switch.flits_forwarded")
        self._c_replicated = metrics.counter("switch.branches_replicated")
        self._c_blocked = metrics.counter("switch.blocked_cycles")

    # ------------------------------------------------------------------
    # SwitchBase contract
    # ------------------------------------------------------------------
    def input_credit_depth(self, port: int) -> int:
        return self.settings.input_buffer_flits

    # ------------------------------------------------------------------
    # per-cycle behaviour
    # ------------------------------------------------------------------
    def tick(self, now: int) -> None:
        self._stirred = False
        self._receive(now)
        if self._total_ingresses:
            self._route_heads(now)
        if self._active:
            self._drive_outputs(now)
        # active-set re-arm: any worm anywhere inside the switch (inflow,
        # waiting, granted, or parked in the sync queue — sync entries are
        # always inflow worms) needs the next cycle too; a fully idle
        # switch is woken again by its in-links' arrival hooks.
        #
        # Blocked-sleep: a non-empty switch whose tick changed *nothing*
        # can only be unblocked by an arrival (in-link hook), a maturing
        # credit (out-link hook), or its own routing delay expiring (exact
        # wake computed below) — so an un-stirred tick may skip the
        # re-arm.  Exception: with metrics enabled the blocked-cycles
        # counter must increment every blocked cycle, as it does on the
        # dense kernel, so observed runs keep polling.
        if self._total_ingresses or self._active:
            if self._stirred or self._obs:
                self.wake_at(now + 1)
            else:
                wake = self._blocked_wake()
                if wake is not None:
                    self.wake_at(wake)

    def _blocked_wake(self) -> Optional[int]:
        """Earliest routing-delay expiry among unrouted buffer-head worms.

        The only *time*-driven transition a sleeping switch could miss:
        every other unblocking event fires a link wake hook.
        """
        delay = self.settings.routing_delay
        best: Optional[int] = None
        for inflow in self._inflow:
            if not inflow:
                continue
            ingress = inflow[0]
            if not ingress.routed and ingress.header_done_cycle is not None:
                cycle = ingress.header_done_cycle + delay
                if best is None or cycle < best:
                    best = cycle
        return best

    # -- phase 1: absorb link arrivals ------------------------------------
    def _receive(self, now: int) -> None:
        scratch = self._rx_scratch
        for port, link in enumerate(self.in_links):
            if link is None or not link.pending_arrival(now):
                continue
            del scratch[:]
            link.receive_into(now, scratch)
            for flit in scratch:
                self._accept_flit(port, flit, now)

    def _accept_flit(self, port: int, flit: Flit, now: int) -> None:
        inflow = self._inflow[port]
        ingress = inflow[-1] if inflow else None
        if ingress is None or ingress.received == ingress.worm.size_flits:
            if not flit.is_head:
                raise ProtocolError(
                    f"{self.name}.in{port}: body flit {flit!r} without head"
                )
            ingress = _Ingress(flit.worm)
            inflow.append(ingress)
            self._total_ingresses += 1
        if flit.worm is not ingress.worm or flit.index != ingress.received:
            raise ProtocolError(
                f"{self.name}.in{port}: out-of-order flit {flit!r} "
                f"(expected index {ingress.received} of {ingress.worm!r})"
            )
        ingress.received += 1
        self._stirred = True
        if ingress.received == ingress.worm.header_flits:
            ingress.header_done_cycle = now
        if self.tracer.enabled:
            self.tracer.emit(
                now, self.name, "flit_in", port=port, flit=repr(flit)
            )

    # -- phase 2: decode the worm at each buffer head ----------------------
    def _route_heads(self, now: int) -> None:
        for port in range(self.num_ports):
            inflow = self._inflow[port]
            if not inflow:
                continue
            ingress = inflow[0]
            if ingress.routed or ingress.header_done_cycle is None:
                continue
            if now < ingress.header_done_cycle + self.settings.routing_delay:
                continue
            self._stirred = True
            for request in self.compute_requests(ingress.worm):
                child = ingress.worm.branch(
                    request.destinations, request.descending
                )
                branch = _Branch(child, request.port, port, ingress)
                ingress.branches.append(branch)
            if self._obs and len(ingress.branches) > 1:
                self._c_replicated.inc(len(ingress.branches) - 1)
            if self._synchronous and len(ingress.branches) > 1:
                self._sync_queue.append(ingress)
                if self._sync_queue[0] is ingress:
                    self._register_branches(ingress)
            else:
                self._register_branches(ingress)
            if self.tracer.enabled:
                self.tracer.emit(
                    now, self.name, "route",
                    inp=port, branches=len(ingress.branches),
                    packet=ingress.worm.packet.packet_id,
                    waited=now - ingress.header_done_cycle
                    - self.settings.routing_delay,
                )

    @property
    def _synchronous(self) -> bool:
        return self.settings.replication is ReplicationMode.SYNCHRONOUS

    def _register_branches(self, ingress: _Ingress) -> None:
        """Expose a worm's branches to output-port arbitration."""
        for branch in ingress.branches:
            self._waiting[branch.out_port][branch.input_port] = branch
            self._active += 1

    # -- phase 3: grant outputs and move flits -----------------------------
    def _drive_outputs(self, now: int) -> None:
        for port in range(self.num_ports):
            if self._current[port] is None and self._waiting[port]:
                winner = self._grant_arbiters[port].grant(self._waiting[port])
                if winner is not None:
                    self._current[port] = self._waiting[port].pop(winner)
                    self._stirred = True
        lockstep_done = set()
        for port in range(self.num_ports):
            branch = self._current[port]
            if branch is None:
                continue
            link = self.out_links[port]
            if link is None:
                raise ProtocolError(f"{self.name}: active branch on unwired "
                                    f"output port {port}")
            ingress = branch.ingress
            if self._synchronous and len(ingress.branches) > 1:
                if id(ingress) not in lockstep_done:
                    lockstep_done.add(id(ingress))
                    self._advance_lockstep(ingress, now)
                continue
            if branch.read >= ingress.received or not link.can_send(now):
                if (
                    self._obs
                    and branch.read < ingress.received
                    and not link.can_send(now)
                ):
                    self._c_blocked.inc()
                continue
            link.send(now, Flit(branch.worm, branch.read))
            branch.read += 1
            self._stirred = True
            if self._obs:
                self._c_forwarded.inc()
            self.sim.note_progress()
            self._recycle_slots(branch.input_port, ingress, now)
            if branch.read == branch.worm.size_flits:
                self._current[port] = None
                self._active -= 1

    def _advance_lockstep(self, ingress: _Ingress, now: int) -> None:
        """Synchronous replication: every branch sends the same flit in
        the same cycle, or nobody sends."""
        branches = ingress.branches
        if any(self._current[b.out_port] is not b for b in branches):
            return  # still accumulating output ports
        index = branches[0].read
        if index >= ingress.received:
            return
        links = [self.out_links[b.out_port] for b in branches]
        if any(link is None or not link.can_send(now) for link in links):
            if self._obs:
                self._c_blocked.inc()
            return  # one blocked branch stalls the whole worm
        self._stirred = True
        for branch, link in zip(branches, links):
            link.send(now, Flit(branch.worm, branch.read))
            branch.read += 1
        if self._obs:
            self._c_forwarded.inc(len(branches))
        self.sim.note_progress()
        self._recycle_slots(branches[0].input_port, ingress, now)
        if branches[0].read == ingress.worm.size_flits:
            for branch in branches:
                self._current[branch.out_port] = None
                self._active -= 1
            if self._sync_queue and self._sync_queue[0] is ingress:
                self._sync_queue.popleft()
                if self._sync_queue:
                    self._register_branches(self._sync_queue[0])

    def _recycle_slots(self, input_port: int, ingress: _Ingress, now: int) -> None:
        """Free buffer slots the slowest branch has passed; pop when drained."""
        new_min = ingress.min_read()
        delta = new_min - ingress.freed
        if delta > 0:
            ingress.freed = new_min
            link = self.in_links[input_port]
            if link is not None:
                link.return_credit(now, delta)
        if ingress.drained:
            popped = self._inflow[input_port].popleft()
            self._total_ingresses -= 1
            if popped is not ingress:
                raise ProtocolError(
                    f"{self.name}.in{input_port}: drained a non-head worm"
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def buffer_occupancy(self, port: int) -> int:
        """Flits currently held in an input buffer."""
        return sum(i.received - i.freed for i in self._inflow[port])

    def idle(self) -> bool:
        """True when no worm is anywhere inside the switch."""
        return (
            all(not q for q in self._inflow)
            and all(not w for w in self._waiting)
            and all(c is None for c in self._current)
        )
