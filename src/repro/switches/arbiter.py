"""Round-robin arbitration.

Switch resources that several requesters share — output ports, central
buffer read/write bandwidth, chunk reservations — are granted round-robin
so no input can starve another, matching the fairness assumption of the
paper's switch designs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional


class RoundRobinArbiter:
    """Grants one requester per call, rotating priority past each winner."""

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ValueError("need at least one requester")
        self.num_requesters = num_requesters
        self._next = 0

    def grant(self, requesters: Iterable[int]) -> Optional[int]:
        """Pick the requesting index closest at-or-after the pointer.

        ``requesters`` is the set of indices requesting this cycle.
        Returns ``None`` when nobody requests.  The pointer advances one
        past the winner, so a persistent requester cannot lock the
        resource against others.
        """
        candidates = set(requesters)
        if not candidates:
            return None
        if len(candidates) == 1:
            (index,) = candidates  # deterministic: a one-element set
            self._next = (index + 1) % self.num_requesters
            return index
        for offset in range(self.num_requesters):
            index = (self._next + offset) % self.num_requesters
            if index in candidates:
                self._next = (index + 1) % self.num_requesters
                return index
        return None

    def grant_up_to(self, requesters: Iterable[int], limit: int) -> List[int]:
        """Grant as many distinct requesters as ``limit`` allows, fairly.

        Used for multi-port resources such as central-buffer bandwidth:
        each granted requester gets one unit this cycle.
        """
        if limit < 0:
            raise ValueError("limit must be non-negative")
        candidates = set(requesters)
        granted: List[int] = []
        while candidates and len(granted) < limit:
            winner = self.grant(candidates)
            if winner is None:
                break
            candidates.discard(winner)
            granted.append(winner)
        return granted

    def grant_batch(self, requesters: List[int], limit: int) -> List[int]:
        """Identical grants to :meth:`grant_up_to` in one rotation.

        ``requesters`` must be distinct indices in ascending order (the
        per-cycle candidate scans produce exactly that).  Repeated
        :meth:`grant` calls each rescan all offsets from the pointer;
        since every grant moves the pointer one past its winner, the
        winners of a whole cycle are simply the first ``limit``
        candidates in pointer-rotated order — computed here with one
        list split instead of ``limit`` modulo scans.  Winners, order,
        and the final pointer position match :meth:`grant_up_to` exactly
        (property-tested in ``tests/switches/test_arbiter.py``).
        """
        if limit < 0:
            raise ValueError("limit must be non-negative")
        if not requesters:
            return []
        start = self._next
        if len(requesters) == 1:
            winners = requesters if limit else []
        else:
            pivot = 0
            for position, value in enumerate(requesters):
                if value >= start:
                    pivot = position
                    break
            winners = (requesters[pivot:] + requesters[:pivot])[:limit]
        if winners:
            self._next = (winners[-1] + 1) % self.num_requesters
        return winners


def rotate_from(items: Iterable[int], start: int) -> List[int]:
    """Return ``items`` rotated so scanning starts at value ``start``.

    Helper for per-cycle fair iteration orders over port indices.
    """
    ordered = sorted(items)
    if not ordered:
        return []
    pivot = 0
    for position, value in enumerate(ordered):
        if value >= start:
            pivot = position
            break
    else:
        pivot = 0
    return ordered[pivot:] + ordered[:pivot]
