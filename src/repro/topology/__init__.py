"""Network topologies: bidirectional MINs, unidirectional MINs, irregular."""

from repro.topology.graph import Endpoint, LinkSpec, NodeKind, Topology
from repro.topology.bmin import BidirectionalMin
from repro.topology.umin import UnidirectionalMin
from repro.topology.irregular import IrregularNetwork

__all__ = [
    "BidirectionalMin",
    "Endpoint",
    "IrregularNetwork",
    "LinkSpec",
    "NodeKind",
    "Topology",
    "UnidirectionalMin",
]
