"""Unidirectional multistage interconnection networks (a-ary n-fly).

In a unidirectional MIN every message crosses all ``n`` stages from the
injection side to the ejection side.  We build the classic butterfly:
stage *s* resolves one digit of the destination address, so
destination-tag routing works and, for multidestination worms, the
destination set splits across a switch's output ports by digit — the same
reachability-AND decode used on the bidirectional MIN, with no up-ports at
all.

Port convention: on every switch, ports ``0..a-1`` are the *input* side
(incoming links only) and ports ``a..2a-1`` are the *output* side
(outgoing links only).  Hosts inject into stage 0 and eject from stage
``n-1``, so a host's outgoing and incoming links meet different switches;
:meth:`Topology.validate` is therefore run with ``require_symmetric=False``.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import TopologyError
from repro.topology.graph import Endpoint, Topology


class UnidirectionalMin:
    """An a-ary n-fly butterfly MIN serving ``arity**stages`` hosts."""

    def __init__(self, arity: int, stages: int) -> None:
        if arity < 2:
            raise TopologyError("arity must be at least 2")
        if stages < 1:
            raise TopologyError("stages must be at least 1")
        self.arity = arity
        self.stages = stages
        self.num_hosts = arity**stages
        self.switches_per_stage = arity ** (stages - 1)
        self.num_switches = stages * self.switches_per_stage
        self.topology = self._build()
        self.topology.validate(require_symmetric=False)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    def switch_id(self, stage: int, index: int) -> int:
        """Flat switch id of ``<stage, index>``."""
        if not 0 <= stage < self.stages:
            raise TopologyError(f"stage {stage} outside 0..{self.stages - 1}")
        if not 0 <= index < self.switches_per_stage:
            raise TopologyError(
                f"switch index {index} outside 0..{self.switches_per_stage - 1}"
            )
        return stage * self.switches_per_stage + index

    def switch_stage(self, switch_id: int) -> int:
        """Stage of a flat switch id."""
        return switch_id // self.switches_per_stage

    def input_ports(self, switch_id: int) -> range:
        """Input-side port indices (incoming links only)."""
        return range(self.arity)

    def output_ports(self, switch_id: int) -> range:
        """Output-side port indices (outgoing links only)."""
        return range(self.arity, 2 * self.arity)

    # ------------------------------------------------------------------
    # address-digit helpers
    # ------------------------------------------------------------------
    def _remove_digit(self, value: int, position: int) -> Tuple[int, int]:
        """Split ``value`` into (value-without-digit, digit) at ``position``."""
        base = self.arity**position
        digit = value // base % self.arity
        high = value // (base * self.arity)
        low = value % base
        return high * base + low, digit

    def _insert_digit(self, word: int, position: int, digit: int) -> int:
        """Inverse of :meth:`_remove_digit`."""
        base = self.arity**position
        high = word // base
        low = word % base
        return (high * self.arity + digit) * base + low

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> Topology:
        topo = Topology(
            num_hosts=self.num_hosts,
            switch_ports=[2 * self.arity] * self.num_switches,
        )
        # Hosts inject into stage 0.  Address h: stage 0 groups addresses
        # that differ only in the most significant digit (position n-1).
        for host in range(self.num_hosts):
            word, digit = self._remove_digit(host, self.stages - 1)
            switch = self.switch_id(0, word)
            topo.add_link(Endpoint.host(host), Endpoint.switch(switch, digit))
        # Stage s output p rewrites digit (n-1-s) to p; the resulting
        # address determines the stage s+1 switch and input lane.
        for stage in range(self.stages - 1):
            digit_here = self.stages - 1 - stage
            digit_next = self.stages - 2 - stage
            for word in range(self.switches_per_stage):
                src_switch = self.switch_id(stage, word)
                for p in range(self.arity):
                    address = self._insert_digit(word, digit_here, p)
                    next_word, lane = self._remove_digit(address, digit_next)
                    dst_switch = self.switch_id(stage + 1, next_word)
                    topo.add_link(
                        Endpoint.switch(src_switch, self.arity + p),
                        Endpoint.switch(dst_switch, lane),
                    )
        # Final stage resolves digit 0 and ejects straight to the host.
        last = self.stages - 1
        for word in range(self.switches_per_stage):
            src_switch = self.switch_id(last, word)
            for p in range(self.arity):
                host = self._insert_digit(word, 0, p)
                topo.add_link(
                    Endpoint.switch(src_switch, self.arity + p),
                    Endpoint.host(host),
                )
        return topo

    def __repr__(self) -> str:
        return (
            f"UnidirectionalMin(arity={self.arity}, stages={self.stages}, "
            f"hosts={self.num_hosts})"
        )
