"""Irregular switch networks (NOW/COW style) with a routing spanning tree.

The paper notes its schemes extend to irregular networks of workstations
by superimposing a tree on the network, as up*/down* routing does
(Autonet, ref [30]).  :class:`IrregularNetwork` generates a random
connected switch graph, elects switch 0 as the tree root, and records the
BFS spanning tree.  Routing (and multidestination replication) follows
tree links only — the standard way to guarantee deadlock freedom on an
irregular topology — while extra non-tree links exist in the topology to
make the generated graphs realistic (they are simply not used by the tree
router; an adaptive router could exploit them).
"""

from __future__ import annotations

from random import Random
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.topology.graph import Endpoint, Topology


class IrregularNetwork:
    """A random connected irregular network with a routing tree.

    Parameters
    ----------
    num_switches:
        Switch count; switch 0 becomes the tree root.
    hosts_per_switch:
        Hosts attached to every switch (host ids are dense:
        switch *s* serves hosts ``s*hps .. (s+1)*hps - 1``).
    ports_per_switch:
        Radix of every switch; must fit hosts, tree links and extras.
    extra_links:
        Non-tree switch-to-switch cables added at random (may end up
        fewer if free ports run out).
    seed:
        Seed for the topology-generation RNG (independent of the
        simulation seed so the same topology can run many workloads).
    """

    def __init__(
        self,
        num_switches: int,
        hosts_per_switch: int = 2,
        ports_per_switch: int = 8,
        extra_links: int = 0,
        seed: int = 0,
    ) -> None:
        if num_switches < 1:
            raise TopologyError("need at least one switch")
        if hosts_per_switch < 1:
            raise TopologyError("need at least one host per switch")
        self.num_switches = num_switches
        self.hosts_per_switch = hosts_per_switch
        self.ports_per_switch = ports_per_switch
        self.num_hosts = num_switches * hosts_per_switch
        rng = Random(seed)

        self.topology = Topology(
            num_hosts=self.num_hosts,
            switch_ports=[ports_per_switch] * num_switches,
        )
        self._next_port = [0] * num_switches
        #: parent switch of each switch in the routing tree (None at root)
        self.tree_parent: List[Optional[int]] = [None] * num_switches
        #: port on each switch leading to its tree parent (None at root)
        self.parent_port: List[Optional[int]] = [None] * num_switches
        #: (child switch, port leading to it) pairs per switch
        self.child_ports: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_switches)
        ]
        #: (host, port leading to it) pairs per switch
        self.host_ports: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_switches)
        ]
        self._adjacent: Set[Tuple[int, int]] = set()

        self._attach_hosts()
        self._build_tree(rng)
        self.extra_links_added = self._add_extras(rng, extra_links)
        self.topology.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _take_port(self, switch: int) -> int:
        port = self._next_port[switch]
        if port >= self.ports_per_switch:
            raise TopologyError(
                f"switch {switch} is out of ports "
                f"(radix {self.ports_per_switch} too small)"
            )
        self._next_port[switch] = port + 1
        return port

    def _free_ports(self, switch: int) -> int:
        return self.ports_per_switch - self._next_port[switch]

    def _attach_hosts(self) -> None:
        for host in range(self.num_hosts):
            switch = host // self.hosts_per_switch
            port = self._take_port(switch)
            self.topology.add_bidirectional(
                Endpoint.host(host), Endpoint.switch(switch, port)
            )
            self.host_ports[switch].append((host, port))

    def _build_tree(self, rng: Random) -> None:
        """Connect switches 1..n-1 to a random already-connected switch."""
        connected = [0]
        for switch in range(1, self.num_switches):
            candidates = [s for s in connected if self._free_ports(s) > 0]
            if not candidates:
                raise TopologyError(
                    "cannot build spanning tree: no free ports left"
                )
            parent = rng.choice(candidates)
            child_side = self._take_port(switch)
            parent_side = self._take_port(parent)
            self.topology.add_bidirectional(
                Endpoint.switch(switch, child_side),
                Endpoint.switch(parent, parent_side),
            )
            self.tree_parent[switch] = parent
            self.parent_port[switch] = child_side
            self.child_ports[parent].append((switch, parent_side))
            self._adjacent.add((min(switch, parent), max(switch, parent)))
            connected.append(switch)

    def _add_extras(self, rng: Random, requested: int) -> int:
        added = 0
        attempts = 0
        while added < requested and attempts < 50 * max(requested, 1):
            attempts += 1
            a = rng.randrange(self.num_switches)
            b = rng.randrange(self.num_switches)
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            if key in self._adjacent:
                continue
            if self._free_ports(a) == 0 or self._free_ports(b) == 0:
                continue
            self.topology.add_bidirectional(
                Endpoint.switch(a, self._take_port(a)),
                Endpoint.switch(b, self._take_port(b)),
            )
            self._adjacent.add(key)
            added += 1
        return added

    # ------------------------------------------------------------------
    # tree queries used by the routing layer
    # ------------------------------------------------------------------
    def host_switch(self, host: int) -> int:
        """The switch a host attaches to."""
        if not 0 <= host < self.num_hosts:
            raise TopologyError(f"host {host} outside 0..{self.num_hosts - 1}")
        return host // self.hosts_per_switch

    def subtree_hosts(self, switch: int) -> List[int]:
        """Every host below ``switch`` in the routing tree (inclusive)."""
        hosts: List[int] = []
        stack = [switch]
        while stack:
            node = stack.pop()
            hosts.extend(h for h, _ in self.host_ports[node])
            stack.extend(child for child, _ in self.child_ports[node])
        return sorted(hosts)

    def tree_depth(self, switch: int) -> int:
        """Hops from ``switch`` up to the tree root."""
        depth = 0
        node: Optional[int] = switch
        while self.tree_parent[node] is not None:  # type: ignore[index]
            node = self.tree_parent[node]  # type: ignore[index]
            depth += 1
        return depth

    def adjacency(self) -> Dict[int, List[int]]:
        """Switch adjacency (tree and extra links) for analysis code."""
        out: Dict[int, List[int]] = {s: [] for s in range(self.num_switches)}
        for a, b in sorted(self._adjacent):
            out[a].append(b)
            out[b].append(a)
        return out

    def __repr__(self) -> str:
        return (
            f"IrregularNetwork(switches={self.num_switches}, "
            f"hosts={self.num_hosts}, extras={self.extra_links_added})"
        )
