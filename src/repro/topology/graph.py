"""Generic topology description consumed by the network builder.

A topology is a set of hosts, a set of switches with a fixed port count,
and a set of *unidirectional* links between endpoints.  Bidirectional
cables are represented as two opposed links (as in the SP systems, where
a port pair carries one link in each direction).

The topology layer is purely structural: routing knowledge (port
direction classes, reachability vectors) is computed by
:mod:`repro.routing` from this structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TopologyError


class NodeKind:
    """Endpoint kinds (plain strings; an enum would add noise here)."""

    HOST = "host"
    SWITCH = "switch"


@dataclass(frozen=True)
class Endpoint:
    """One side of a link: a host (port is always 0) or a switch port."""

    kind: str
    node: int
    port: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (NodeKind.HOST, NodeKind.SWITCH):
            raise TopologyError(f"unknown endpoint kind {self.kind!r}")
        if self.node < 0 or self.port < 0:
            raise TopologyError("endpoint node and port must be non-negative")

    @classmethod
    def host(cls, host_id: int) -> "Endpoint":
        """Endpoint at a host's single network port."""
        return cls(NodeKind.HOST, host_id, 0)

    @classmethod
    def switch(cls, switch_id: int, port: int) -> "Endpoint":
        """Endpoint at a switch port."""
        return cls(NodeKind.SWITCH, switch_id, port)

    def __repr__(self) -> str:
        if self.kind == NodeKind.HOST:
            return f"host{self.node}"
        return f"sw{self.node}.p{self.port}"


@dataclass(frozen=True)
class LinkSpec:
    """A unidirectional link from ``src`` to ``dst``."""

    src: Endpoint
    dst: Endpoint


class Topology:
    """Hosts, switches and unidirectional links.

    Parameters
    ----------
    num_hosts:
        Hosts are numbered ``0..num_hosts-1``.
    switch_ports:
        Port count per switch, indexed by switch id ``0..len-1``.
    """

    def __init__(self, num_hosts: int, switch_ports: List[int]) -> None:
        if num_hosts <= 0:
            raise TopologyError("need at least one host")
        if any(p <= 0 for p in switch_ports):
            raise TopologyError("every switch needs at least one port")
        self.num_hosts = num_hosts
        self.switch_ports = list(switch_ports)
        self._links: List[LinkSpec] = []
        self._out_by_endpoint: Dict[Endpoint, LinkSpec] = {}
        self._in_by_endpoint: Dict[Endpoint, LinkSpec] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def num_switches(self) -> int:
        """Number of switches."""
        return len(self.switch_ports)

    def add_link(self, src: Endpoint, dst: Endpoint) -> LinkSpec:
        """Add one unidirectional link; endpoints must be unused in that
        direction."""
        self._validate_endpoint(src)
        self._validate_endpoint(dst)
        if src in self._out_by_endpoint:
            raise TopologyError(f"{src} already has an outgoing link")
        if dst in self._in_by_endpoint:
            raise TopologyError(f"{dst} already has an incoming link")
        link = LinkSpec(src, dst)
        self._links.append(link)
        self._out_by_endpoint[src] = link
        self._in_by_endpoint[dst] = link
        return link

    def add_bidirectional(self, a: Endpoint, b: Endpoint) -> Tuple[LinkSpec, LinkSpec]:
        """Add a cable: one link in each direction between ``a`` and ``b``."""
        return self.add_link(a, b), self.add_link(b, a)

    def _validate_endpoint(self, endpoint: Endpoint) -> None:
        if endpoint.kind == NodeKind.HOST:
            if endpoint.node >= self.num_hosts:
                raise TopologyError(f"host {endpoint.node} does not exist")
            if endpoint.port != 0:
                raise TopologyError("hosts have a single port, index 0")
        else:
            if endpoint.node >= self.num_switches:
                raise TopologyError(f"switch {endpoint.node} does not exist")
            if endpoint.port >= self.switch_ports[endpoint.node]:
                raise TopologyError(
                    f"switch {endpoint.node} has no port {endpoint.port}"
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def links(self) -> List[LinkSpec]:
        """All links, in insertion order."""
        return self._links

    def link_from(self, endpoint: Endpoint) -> Optional[LinkSpec]:
        """The outgoing link at ``endpoint``, or ``None``."""
        return self._out_by_endpoint.get(endpoint)

    def link_into(self, endpoint: Endpoint) -> Optional[LinkSpec]:
        """The incoming link at ``endpoint``, or ``None``."""
        return self._in_by_endpoint.get(endpoint)

    def neighbor_of(self, endpoint: Endpoint) -> Optional[Endpoint]:
        """The endpoint at the far end of the outgoing link, if any."""
        link = self.link_from(endpoint)
        return link.dst if link else None

    def host_attachment(self, host_id: int) -> Endpoint:
        """The switch endpoint the host's outgoing link lands on."""
        link = self.link_from(Endpoint.host(host_id))
        if link is None or link.dst.kind != NodeKind.SWITCH:
            raise TopologyError(f"host {host_id} is not attached to a switch")
        return link.dst

    def switch_port_peers(self, switch_id: int) -> List[Optional[Endpoint]]:
        """Per-port peer endpoint of a switch (``None`` for unwired ports).

        A port's peer is the destination of its outgoing link; validation
        ensures it matches the source of its incoming link.
        """
        peers: List[Optional[Endpoint]] = []
        for port in range(self.switch_ports[switch_id]):
            link = self.link_from(Endpoint.switch(switch_id, port))
            peers.append(link.dst if link else None)
        return peers

    def iter_switch_links(self) -> Iterator[LinkSpec]:
        """Yield only switch-to-switch links."""
        for link in self._links:
            if (
                link.src.kind == NodeKind.SWITCH
                and link.dst.kind == NodeKind.SWITCH
            ):
                yield link

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, require_symmetric: bool = True) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        * every host has exactly one outgoing and one incoming link;
        * with ``require_symmetric`` (the bidirectional-network default),
          a host's two links meet the same switch port, and every wired
          switch port is wired in both directions to the same peer.
          Unidirectional MINs pass ``require_symmetric=False`` because
          their hosts inject into stage 0 but eject from the last stage,
          and their switch ports carry traffic one way only.
        """
        for host in range(self.num_hosts):
            endpoint = Endpoint.host(host)
            out = self.link_from(endpoint)
            into = self.link_into(endpoint)
            if out is None or into is None:
                raise TopologyError(f"host {host} is not fully attached")
            if out.dst.kind != NodeKind.SWITCH:
                raise TopologyError(f"host {host} attaches to a non-switch")
            if require_symmetric and into.src != out.dst:
                raise TopologyError(
                    f"host {host} attachment is asymmetric: "
                    f"sends to {out.dst} but hears from {into.src}"
                )
        if not require_symmetric:
            return
        for switch in range(self.num_switches):
            for port in range(self.switch_ports[switch]):
                endpoint = Endpoint.switch(switch, port)
                out = self.link_from(endpoint)
                into = self.link_into(endpoint)
                if (out is None) != (into is None):
                    raise TopologyError(
                        f"{endpoint} is wired in only one direction"
                    )
                if out is not None and into is not None and out.dst != into.src:
                    raise TopologyError(
                        f"{endpoint} is wired asymmetrically: "
                        f"sends to {out.dst}, hears from {into.src}"
                    )

    def __repr__(self) -> str:
        return (
            f"Topology(hosts={self.num_hosts}, switches={self.num_switches}, "
            f"links={len(self._links)})"
        )
