"""Bidirectional multistage interconnection networks (k-ary n-trees).

The paper evaluates its switch designs on bidirectional MINs, the fat-tree
style networks of the IBM SP1/SP2.  We build the standard *k-ary n-tree*
(Petrini/Vanneschi formulation): with ``arity`` = a down-ports per switch
(half the radix of a 2a-port switch) and ``levels`` = n, the network
connects ``a**n`` hosts through ``n * a**(n-1)`` switches.

Switch identity
---------------
A switch is ``<level, w>`` with ``w`` an (n-1)-digit base-a word.  Ports
``0..a-1`` are *down* ports (toward the hosts) and ``a..2a-1`` are *up*
ports (toward the roots; unwired on the top level).  Switch ``<l, w>``
connects its up port *j* to the level ``l+1`` switch whose word equals
``w`` with digit *l* replaced by *j*; the parent's down-port index for
that cable is ``w``'s original digit *l*.  Level-0 switch ``w`` serves
hosts ``w*a .. w*a + a-1``.

With 8-port switches (a=4) this yields the paper's system sizes:
16 hosts (n=2), 64 hosts (n=3) and 256 hosts (n=4).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.graph import Endpoint, Topology


class BidirectionalMin:
    """A k-ary n-tree bidirectional MIN.

    Parameters
    ----------
    arity:
        Down-ports per switch (a); the switch radix is ``2 * arity``.
    levels:
        Number of switch levels (n); the network serves ``arity**levels``
        hosts.
    """

    def __init__(self, arity: int, levels: int) -> None:
        if arity < 2:
            raise TopologyError("arity must be at least 2")
        if levels < 1:
            raise TopologyError("levels must be at least 1")
        self.arity = arity
        self.levels = levels
        self.num_hosts = arity**levels
        self.switches_per_level = arity ** (levels - 1)
        self.num_switches = levels * self.switches_per_level
        self.topology = self._build()
        self.topology.validate()

    @classmethod
    def for_hosts(cls, num_hosts: int, arity: int = 4) -> "BidirectionalMin":
        """Build the smallest tree of the given arity serving ``num_hosts``.

        ``num_hosts`` must be a power of ``arity`` (the paper's system
        sizes 16/64/256 with arity 4).
        """
        levels = 1
        size = arity
        while size < num_hosts:
            size *= arity
            levels += 1
        if size != num_hosts:
            raise TopologyError(
                f"num_hosts={num_hosts} is not a power of arity={arity}"
            )
        return cls(arity, levels)

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    def switch_id(self, level: int, index: int) -> int:
        """Flat switch id of ``<level, index>``."""
        if not 0 <= level < self.levels:
            raise TopologyError(f"level {level} outside 0..{self.levels - 1}")
        if not 0 <= index < self.switches_per_level:
            raise TopologyError(
                f"switch index {index} outside 0..{self.switches_per_level - 1}"
            )
        return level * self.switches_per_level + index

    def switch_level(self, switch_id: int) -> int:
        """Level of a flat switch id."""
        return switch_id // self.switches_per_level

    def switch_index(self, switch_id: int) -> int:
        """Within-level index (the word ``w``) of a flat switch id."""
        return switch_id % self.switches_per_level

    def down_ports(self, switch_id: int) -> range:
        """Down-port indices of any switch."""
        return range(self.arity)

    def up_ports(self, switch_id: int) -> range:
        """Up-port indices; empty for the top level."""
        if self.switch_level(switch_id) == self.levels - 1:
            return range(0)
        return range(self.arity, 2 * self.arity)

    def host_switch(self, host: int) -> int:
        """The level-0 switch a host attaches to."""
        if not 0 <= host < self.num_hosts:
            raise TopologyError(f"host {host} outside 0..{self.num_hosts - 1}")
        return self.switch_id(0, host // self.arity)

    def host_digits(self, host: int) -> Tuple[int, ...]:
        """Base-``arity`` digits of a host id, most significant first."""
        digits = []
        for level in reversed(range(self.levels)):
            digits.append(host // self.arity**level % self.arity)
        return tuple(digits)

    # ------------------------------------------------------------------
    # word-digit helpers (words have levels-1 digits)
    # ------------------------------------------------------------------
    def _word_digit(self, word: int, position: int) -> int:
        return word // self.arity**position % self.arity

    def _word_with_digit(self, word: int, position: int, digit: int) -> int:
        base = self.arity**position
        return word - self._word_digit(word, position) * base + digit * base

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> Topology:
        topo = Topology(
            num_hosts=self.num_hosts,
            switch_ports=[2 * self.arity] * self.num_switches,
        )
        for host in range(self.num_hosts):
            switch = self.host_switch(host)
            port = host % self.arity
            topo.add_bidirectional(
                Endpoint.host(host), Endpoint.switch(switch, port)
            )
        for level in range(self.levels - 1):
            for word in range(self.switches_per_level):
                child = self.switch_id(level, word)
                child_digit = self._word_digit(word, level)
                for j in range(self.arity):
                    parent_word = self._word_with_digit(word, level, j)
                    parent = self.switch_id(level + 1, parent_word)
                    topo.add_bidirectional(
                        Endpoint.switch(child, self.arity + j),
                        Endpoint.switch(parent, child_digit),
                    )
        return topo

    # ------------------------------------------------------------------
    # analytic helpers used by routing and tests
    # ------------------------------------------------------------------
    def lca_level(self, hosts: Iterable[int]) -> int:
        """Lowest switch level from which every given host is reachable
        going only downward.

        Level 0 means all hosts share a leaf switch; level ``levels-1``
        means the worm must climb to the roots.
        """
        digit_rows: List[Sequence[int]] = [self.host_digits(h) for h in hosts]
        if not digit_rows:
            raise ValueError("need at least one host")
        first = digit_rows[0]
        # find the most significant position where any pair differs
        for position in range(self.levels):
            if any(row[position] != first[position] for row in digit_rows):
                # digits are most-significant first: a mismatch at index i
                # corresponds to digit position levels-1-i, which is first
                # resolved at switch level levels-1-i.
                return self.levels - 1 - position
        return 0

    def min_switch_hops(self, src: int, dst: int) -> int:
        """Switches traversed on a shortest path between two hosts."""
        if src == dst:
            return 0
        turn = self.lca_level((src, dst))
        return 2 * turn + 1

    def __repr__(self) -> str:
        return (
            f"BidirectionalMin(arity={self.arity}, levels={self.levels}, "
            f"hosts={self.num_hosts}, switches={self.num_switches})"
        )
