"""Experiment definitions reproducing the paper's evaluation.

One module per evaluation axis (see DESIGN.md's per-experiment index):

=====  ==============================================  =====================
Exp    Paper axis                                      Module
=====  ==============================================  =====================
E1     multiple multicast vs. concurrency              multiple_multicast
E2     latency vs. degree of multicast                 degree_sweep
E3     latency vs. message length                      length_sweep
E4     bimodal traffic impact on background unicast    bimodal
E5     system-size scaling                             system_size
E6     unicast baseline of the buffer organisations    unicast_baseline
E7     methodology / parameter table                   parameters
A1     ablation: central-buffer bandwidth              ablations
A2     ablation: LCA routing mode                      ablations
A3     ablation: header encodings                      ablations
=====  ==============================================  =====================

Every experiment function accepts a :class:`~repro.experiments.common.Scale`
(``QUICK`` for benches/CI, ``PAPER`` for full-size runs) and returns an
:class:`~repro.experiments.common.ExperimentResult` with both structured
rows and a printable table.

Each experiment is split into three pieces (see
:mod:`repro.experiments.parallel`): a ``plan_*`` function declaring the
grid of independent :class:`~repro.experiments.parallel.RunSpec`\\ s, a
pure ``reduce_*`` step folding per-run summaries into table rows in
declared grid order, and the ``run_*`` entry point tying them together.
``run_*(..., jobs=N)`` fans the grid out over N worker processes with
output bit-identical to the serial path.
"""

from repro.experiments.common import (
    PAPER,
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    RunOutcome,
    RunSpec,
    default_jobs,
    execute_plan,
)
from repro.experiments.multiple_multicast import run_multiple_multicast
from repro.experiments.degree_sweep import run_degree_sweep
from repro.experiments.length_sweep import run_length_sweep
from repro.experiments.bimodal import run_bimodal
from repro.experiments.system_size import run_system_size
from repro.experiments.unicast_baseline import run_unicast_baseline
from repro.experiments.parameters import run_parameters
from repro.experiments.ablations import (
    run_cb_bandwidth_ablation,
    run_encoding_ablation,
    run_equal_storage_ablation,
    run_replication_ablation,
    run_routing_mode_ablation,
)
from repro.experiments.cross_topology import run_cross_topology
from repro.experiments.extensions import (
    run_barrier_scaling,
    run_buffer_occupancy,
    run_hotspot,
)

__all__ = [
    "ExecutionPlan",
    "ExperimentResult",
    "PAPER",
    "QUICK",
    "RunOutcome",
    "RunSpec",
    "Scale",
    "Scheme",
    "default_jobs",
    "execute_plan",
    "run_barrier_scaling",
    "run_bimodal",
    "run_buffer_occupancy",
    "run_cb_bandwidth_ablation",
    "run_cross_topology",
    "run_degree_sweep",
    "run_encoding_ablation",
    "run_equal_storage_ablation",
    "run_hotspot",
    "run_length_sweep",
    "run_multiple_multicast",
    "run_parameters",
    "run_replication_ablation",
    "run_routing_mode_ablation",
    "run_system_size",
    "run_unicast_baseline",
]
