"""E3: multicast latency vs. message length.

Degree held at 8, payload swept.  Both schemes grow linearly in the
payload (serialization on the injection link), but the software scheme's
slope is steeper: every binomial phase re-serializes the full message,
so the absolute hardware advantage *widens* with message length.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.traffic.multicast import SingleMulticast

DEFAULT_LENGTHS = (16, 32, 64, 128, 256)


def plan_length_sweep(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    degree: int = 8,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExecutionPlan:
    """Declare E3's (length x scheme x seed) grid of independent runs."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    seeds = scale.seeds()
    specs = []
    for length in lengths:
        for scheme in schemes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(length, scheme.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=scheme.apply(
                                base_config(
                                    num_hosts,
                                    seed=seed,
                                    max_packet_payload_flits=max(128, length),
                                    central_buffer_flits=_buffer_for(
                                        num_hosts, length
                                    ),
                                )
                            ),
                            workload_cls=SingleMulticast,
                            workload_kwargs=dict(
                                source=seed % num_hosts,
                                degree=degree,
                                payload_flits=length,
                                scheme=scheme.multicast_scheme,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        lengths=tuple(lengths),
        degree=degree,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("e3", specs, meta)


def reduce_length_sweep(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into E3's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    table = Table(
        f"E3: single multicast latency vs. message length "
        f"(N={meta['num_hosts']}, d={meta['degree']}) [cycles]",
        ["payload_flits"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("e3_length_sweep", table)
    for length in meta["lengths"]:
        cells = [length]
        for scheme in schemes:
            latency = mean(
                [
                    results[(length, scheme.value, seed)].op_last_latency.mean
                    for seed in meta["seeds"]
                ]
            )
            cells.append(latency)
            result.rows.append(
                {"length": length, "scheme": scheme.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_length_sweep(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    degree: int = 8,
    schemes: Optional[Sequence[Scheme]] = None,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run E3 and return per-(length, scheme) last-arrival latencies."""
    plan = plan_length_sweep(scale, num_hosts, lengths, degree, schemes)
    return reduce_length_sweep(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


def _buffer_for(num_hosts: int, length: int) -> int:
    """A central buffer large enough for the per-input quota at this
    message length (grown beyond the 4 KB default only when needed)."""
    header_worst = 1 + -(-num_hosts // 16)
    packet = header_worst + max(128, length)
    chunks = -(-packet // 8)
    needed = 8 * chunks * 8
    return max(2048, needed)
