"""E3: multicast latency vs. message length.

Degree held at 8, payload swept.  Both schemes grow linearly in the
payload (serialization on the injection link), but the software scheme's
slope is steeper: every binomial phase re-serializes the full message,
so the absolute hardware advantage *widens* with message length.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.multicast import SingleMulticast

DEFAULT_LENGTHS = (16, 32, 64, 128, 256)


def run_length_sweep(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    lengths: Sequence[int] = DEFAULT_LENGTHS,
    degree: int = 8,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExperimentResult:
    """Run E3 and return per-(length, scheme) last-arrival latencies."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    table = Table(
        f"E3: single multicast latency vs. message length "
        f"(N={num_hosts}, d={degree}) [cycles]",
        ["payload_flits"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("e3_length_sweep", table)
    for length in lengths:
        cells = [length]
        for scheme in schemes:
            latencies = []
            for seed in scale.seeds():
                config = scheme.apply(
                    base_config(
                        num_hosts,
                        seed=seed,
                        max_packet_payload_flits=max(128, length),
                        central_buffer_flits=_buffer_for(num_hosts, length),
                    )
                )
                workload = SingleMulticast(
                    source=seed % num_hosts,
                    degree=degree,
                    payload_flits=length,
                    scheme=scheme.multicast_scheme,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                latencies.append(run.op_last_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"length": length, "scheme": scheme.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def _buffer_for(num_hosts: int, length: int) -> int:
    """A central buffer large enough for the per-input quota at this
    message length (grown beyond the 4 KB default only when needed)."""
    header_worst = 1 + -(-num_hosts // 16)
    packet = header_worst + max(128, length)
    chunks = -(-packet // 8)
    needed = 8 * chunks * 8
    return max(2048, needed)
