"""Shared plumbing for the experiment suite."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.metrics.report import Table
from repro.network.config import SimulationConfig
from repro.network.simulation import RunSummary, run_simulation
from repro.traffic.base import Workload


class Scheme(enum.Enum):
    """The three implementations the paper compares throughout."""

    #: hardware multidestination worms on the central-buffer switch
    CB_HW = "cb-hw"
    #: hardware multidestination worms on the input-buffer switch
    IB_HW = "ib-hw"
    #: binomial software multicast (runs on the central-buffer switch)
    SW = "sw"

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """The simulation config realising this scheme."""
        if self is Scheme.CB_HW:
            return config.derived(
                switch_architecture=SwitchArchitecture.CENTRAL_BUFFER
            )
        if self is Scheme.IB_HW:
            return config.derived(
                switch_architecture=SwitchArchitecture.INPUT_BUFFER
            )
        return config.derived(
            switch_architecture=SwitchArchitecture.CENTRAL_BUFFER
        )

    @property
    def multicast_scheme(self) -> MulticastScheme:
        """Hardware or software collective implementation."""
        if self is Scheme.SW:
            return MulticastScheme.SOFTWARE
        return MulticastScheme.HARDWARE


@dataclass(frozen=True)
class Scale:
    """How big an experiment run is.

    ``QUICK`` keeps benches and CI fast (small repeats, short windows);
    ``PAPER`` runs the full sweeps the tables in EXPERIMENTS.md report.
    """

    name: str
    repeats: int
    warmup_cycles: int
    measure_cycles: int
    max_cycles: int

    def seeds(self, base: int = 1) -> List[int]:
        """Deterministic seed list for repeated runs."""
        return [base + 97 * index for index in range(self.repeats)]


QUICK = Scale(
    name="quick",
    repeats=2,
    warmup_cycles=300,
    measure_cycles=1_500,
    max_cycles=60_000,
)

PAPER = Scale(
    name="paper",
    repeats=5,
    warmup_cycles=2_000,
    measure_cycles=10_000,
    max_cycles=2_000_000,
)


@dataclass
class ExperimentResult:
    """Structured rows plus a printable table for one experiment."""

    experiment: str
    table: Table
    rows: List[Dict[str, object]] = field(default_factory=list)

    def series(self, key: str, value: str, **filters: object) -> List[tuple]:
        """(key, value) pairs of rows matching all ``filters``."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append((row[key], row[value]))
        return out

    def value(self, value: str, **filters: object) -> Optional[object]:
        """The single matching row's value, or ``None``."""
        matches = self.series(value, value, **filters)
        if len(matches) != 1:
            return None
        return matches[0][1]

    def render(self) -> str:
        """The printable table."""
        return self.table.render()

    def chart(
        self,
        x_key: str,
        y_key: str,
        series_key: str,
        title: str = "",
    ) -> str:
        """An ASCII chart of ``y_key`` over ``x_key``, one mark per
        distinct ``series_key`` value.  Rows with non-numeric values are
        skipped."""
        from repro.metrics.ascii_chart import render_chart

        series: Dict[str, list] = {}
        for row in self.rows:
            x, y = row.get(x_key), row.get(y_key)
            name = row.get(series_key) or "series"
            if not isinstance(x, (int, float)) or not isinstance(
                y, (int, float)
            ):
                continue
            series.setdefault(str(name), []).append((float(x), float(y)))
        return render_chart(
            series, title=title or self.experiment,
            x_label=x_key, y_label=y_key,
        )


def mean(values: List[float]) -> float:
    """Arithmetic mean; 0.0 for an empty list."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def base_config(num_hosts: int = 64, **overrides) -> SimulationConfig:
    """The paper's default system, with experiment overrides applied."""
    return SimulationConfig(num_hosts=num_hosts, **overrides)


def simulate_summary(
    config: SimulationConfig,
    workload_cls: Type[Workload],
    workload_kwargs: Dict[str, object],
    max_cycles: int,
) -> RunSummary:
    """The shared pool worker behind most experiment grids.

    Builds the workload from its class and kwargs *inside* the worker
    process (workload instances need not be picklable — only their
    constructor arguments), runs the simulation, and ships back the
    picklable :class:`~repro.network.simulation.RunSummary`.
    """
    workload = workload_cls(**workload_kwargs)
    result = run_simulation(config, workload, max_cycles=max_cycles)
    return result.to_summary()
