"""Parallel experiment execution: plans of independent runs plus a pool.

Every experiment in this suite is an embarrassingly parallel grid — a
(seed x sweep-point x scheme) cross product of simulations that share no
state.  This module gives that structure a name:

* an experiment *declares* its grid as a list of :class:`RunSpec`\\ s —
  each a picklable, module-level worker function plus keyword arguments
  and a unique sortable ``key``;
* :func:`execute_plan` runs the specs, either serially (``jobs=1``) or
  on a ``multiprocessing`` pool, and returns ``{key: value}``;
* the experiment's *reduce* step folds the per-run values into table
  rows by looking results up **by key** in its own declared grid order —
  never by iterating the result mapping — so the output is identical no
  matter how workers were scheduled.

Determinism contract: a run's value depends only on its spec (all
simulator randomness flows from the config seed), and reduction order is
fixed by the plan, so ``jobs=N`` is bit-identical to ``jobs=1``.
``tests/experiments/test_parallel.py`` enforces this.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
)

#: a spec's identity inside its plan: a tuple of primitives, unique and
#: sortable so outcomes can be ordered without reference to wall time
Key = Tuple[Hashable, ...]

#: called after each finished run with (outcome, done_count, total)
ProgressFn = Callable[["RunOutcome", int, int], None]


def default_jobs() -> int:
    """The default worker count: one per available CPU."""
    return os.cpu_count() or 1


class Stopwatch:
    """Monotonic wall-clock timer for process accounting.

    This module and :mod:`repro.obs` are the only places allowed to
    read the wall clock (enforced by reprolint rule REP002): everything
    that wants to report elapsed *process* time — the CLI runner, the
    benchmarks — measures through a :class:`Stopwatch` instead of
    calling :func:`time.time` directly, keeping wall-clock reads out of
    code that could ever leak them into simulation results.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._started

    def restart(self) -> None:
        """Reset the timer to zero."""
        self._started = time.perf_counter()


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run of an experiment grid.

    ``fn`` must be a module-level function (so it pickles by reference)
    and ``kwargs`` must contain only picklable values; the spec may then
    execute in any worker process.

    ``result_version`` salts the spec's content address in the result
    store (see :mod:`repro.store.hashing`): bump it in the experiment
    when the *meaning* of ``fn``'s output changes without its signature
    changing, and previously journaled results stop matching.
    """

    key: Key
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    result_version: int = 1

    def execute(self) -> Any:
        """Run the spec in the current process."""
        return self.fn(**self.kwargs)


#: how a :class:`RunOutcome`'s value was obtained
SOURCE_EXECUTED = "executed"
SOURCE_HIT = "hit"
SOURCE_COALESCED = "coalesced"


@dataclass(frozen=True)
class RunOutcome:
    """A finished run: its key, its value, and how long it took.

    ``source`` records how the value was obtained: ``"executed"`` (the
    simulation ran), ``"hit"`` (answered from the result store), or
    ``"coalesced"`` (a duplicate spec fanned out from another spec's
    execution in the same plan).  ``saved_seconds`` is the execution
    time a hit or coalesced outcome avoided, as journaled/measured for
    the run that did execute.  ``worker`` names the farm worker that
    executed (or whose execution resolved) the run — empty on the
    plain pool path and for store hits, where no farm worker is
    involved.
    """

    key: Key
    value: Any
    wall_seconds: float
    source: str = SOURCE_EXECUTED
    saved_seconds: float = 0.0
    worker: str = ""


@dataclass
class ExecutionPlan:
    """A named list of independent runs plus grid metadata for reduce."""

    name: str
    specs: List[RunSpec]
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            if spec.key in seen:
                raise ValueError(
                    f"plan {self.name!r}: duplicate run key {spec.key!r}"
                )
            seen.add(spec.key)

    def __len__(self) -> int:
        return len(self.specs)


def _execute_spec(spec: RunSpec) -> RunOutcome:
    """Pool worker: run one spec and time it."""
    started = time.perf_counter()
    value = spec.execute()
    return RunOutcome(
        key=spec.key,
        value=value,
        wall_seconds=time.perf_counter() - started,
    )


def run_outcomes(
    plan: ExecutionPlan,
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    store: Optional[Any] = None,
) -> List[RunOutcome]:
    """Execute every spec in ``plan``; outcomes are in completion order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a one-spec
    plan) runs serially in this process.  If the pool cannot be set up —
    some sandboxes forbid the semaphores ``multiprocessing`` needs — the
    plan silently falls back to the serial path, which computes the same
    values.

    ``store`` routes the plan through the result store's memoizing
    layer (:mod:`repro.store.memo`): cached specs are answered without
    executing, duplicate specs are coalesced into one execution, and
    fresh results are journaled.  ``store=None`` consults the
    process-wide session configured by :mod:`repro.store.runtime` (the
    ``--store-dir`` / ``REPRO_STORE_DIR`` plumbing); when that is also
    absent the plan executes plainly.  Either way the returned values
    are bit-identical — the reduce step cannot tell a warm campaign
    from a cold one.

    When a farm session is active (:mod:`repro.farm.runtime`, the
    ``--farm``/``--shards`` plumbing), the plan runs as a sharded
    campaign instead of through the pool below; the farm layer resolves
    the store exactly as this function would, and its values are — by
    the same determinism contract — bit-identical to the serial path.
    """
    from repro.farm import runtime as farm_runtime

    farm = farm_runtime.active_farm()
    if farm is not None:
        return farm.run(plan, progress=progress, store=store)
    if store is not None:
        from repro.store.memo import memoized_outcomes

        return memoized_outcomes(
            plan, store, jobs=jobs, progress=progress
        )
    from repro.store import runtime

    session = runtime.active_session()
    if session is not None:
        return session.run(plan, jobs=jobs, progress=progress)
    return _plain_outcomes(plan, jobs=jobs, progress=progress)


def _plain_outcomes(
    plan: ExecutionPlan,
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[RunOutcome]:
    """The store-free execution path (pool with serial fallback)."""
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    workers = min(jobs, len(plan.specs))
    if workers > 1:
        try:
            return _run_pool(plan, workers, progress)
        except (OSError, ImportError):
            pass
    return _run_serial(plan, progress)


def _run_serial(
    plan: ExecutionPlan, progress: Optional[ProgressFn]
) -> List[RunOutcome]:
    outcomes = []
    for spec in plan.specs:
        outcomes.append(_execute_spec(spec))
        if progress is not None:
            progress(outcomes[-1], len(outcomes), len(plan.specs))
    return outcomes


def _run_pool(
    plan: ExecutionPlan, workers: int, progress: Optional[ProgressFn]
) -> List[RunOutcome]:
    outcomes: List[RunOutcome] = []
    with multiprocessing.Pool(processes=workers) as pool:
        for outcome in pool.imap_unordered(
            _execute_spec, plan.specs, chunksize=1
        ):
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome, len(outcomes), len(plan.specs))
    return outcomes


def resolve(outcomes: List[RunOutcome]) -> Dict[Key, Any]:
    """Outcomes as a ``{key: value}`` mapping for order-free lookup."""
    return {outcome.key: outcome.value for outcome in outcomes}


def execute_plan(
    plan: ExecutionPlan,
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[Key, Any]:
    """Run the plan and return ``{key: value}`` for the reduce step."""
    return resolve(run_outcomes(plan, jobs=jobs, progress=progress))


@dataclass(frozen=True)
class TimingSummary:
    """Where the wall-time of one executed plan went.

    ``work_seconds`` is the sum of per-run wall times; with a pool the
    plan's own ``wall_seconds`` should be roughly ``work / jobs``, and
    ``utilisation`` (work / (wall x jobs)) says how close the pool got.
    Low utilisation usually means *stragglers*: runs much longer than
    the rest that leave workers idle at the tail of the plan.

    When a plan ran through the result store, ``hits``/``coalesced``
    say how many runs were answered without executing and
    ``saved_seconds`` how much execution time that avoided; the per-run
    timing statistics (mean/median/max/stragglers) are computed over
    the **executed** runs only, so a warm campaign full of instant hits
    does not collapse the median to zero and flag every real run as a
    straggler.
    """

    runs: int
    jobs: int
    work_seconds: float
    wall_seconds: float
    mean_seconds: float
    median_seconds: float
    max_seconds: float
    #: ``(label, seconds)`` of runs slower than 2x the median
    stragglers: Tuple[Tuple[str, float], ...]
    #: runs answered from the result store without executing
    hits: int = 0
    #: duplicate specs fanned out from another spec's execution
    coalesced: int = 0
    #: runs that actually executed (``runs`` counts all outcomes)
    executed: int = 0
    #: execution time avoided by hits and coalesced runs
    saved_seconds: float = 0.0
    #: per-farm-worker ``(label, executed runs, work seconds)``, busiest
    #: first; empty unless the plan ran on a farm backend
    workers: Tuple[Tuple[str, int, float], ...] = ()

    @property
    def utilisation(self) -> float:
        """Fraction of pool capacity spent doing work (0..1)."""
        capacity = self.wall_seconds * self.jobs
        if capacity <= 0:
            return 0.0
        return min(1.0, self.work_seconds / capacity)

    def render(self) -> str:
        """A short multi-line report for ``--progress`` output."""
        lines = [
            f"{self.runs} run(s): {self.work_seconds:.2f}s work in "
            f"{self.wall_seconds:.2f}s wall on {self.jobs} job(s) "
            f"(pool utilisation {self.utilisation:.0%})",
            f"per-run wall: mean {self.mean_seconds:.2f}s, "
            f"median {self.median_seconds:.2f}s, "
            f"max {self.max_seconds:.2f}s",
        ]
        if self.hits or self.coalesced:
            lines.append(
                f"result store: {self.hits} hit(s), "
                f"{self.coalesced} coalesced, {self.executed} "
                f"executed; ~{self.saved_seconds:.2f}s of execution "
                "avoided"
            )
        if self.workers:
            spread = ", ".join(
                f"{label} {runs} run(s)/{seconds:.2f}s"
                for label, runs, seconds in self.workers
            )
            lines.append(f"farm workers: {spread}")
        if self.stragglers:
            worst = ", ".join(
                f"{label} ({seconds:.2f}s)"
                for label, seconds in self.stragglers
            )
            lines.append(f"stragglers (>2x median): {worst}")
        return "\n".join(lines)


def _key_label(key: Key) -> str:
    return "/".join(str(part) for part in key)


def summarize_timing(
    outcomes: List[RunOutcome], jobs: int, wall_seconds: float
) -> TimingSummary:
    """Fold per-run wall times into a :class:`TimingSummary`.

    Timing statistics cover executed outcomes only; store hits and
    coalesced duplicates are counted separately (see the class docs).
    """
    ran = [o for o in outcomes if o.source == SOURCE_EXECUTED]
    hits = sum(1 for o in outcomes if o.source == SOURCE_HIT)
    coalesced = sum(
        1 for o in outcomes if o.source == SOURCE_COALESCED
    )
    saved = sum(o.saved_seconds for o in outcomes)
    per_worker: Dict[str, List[float]] = {}
    for outcome in ran:
        if outcome.worker:
            per_worker.setdefault(outcome.worker, []).append(
                outcome.wall_seconds
            )
    workers = tuple(
        sorted(
            (
                (label, len(times), sum(times))
                for label, times in per_worker.items()
            ),
            key=lambda entry: (-entry[2], entry[0]),
        )
    )
    times = sorted(outcome.wall_seconds for outcome in ran)
    if not times:
        return TimingSummary(
            runs=len(outcomes), jobs=max(1, jobs), work_seconds=0.0,
            wall_seconds=wall_seconds, mean_seconds=0.0,
            median_seconds=0.0, max_seconds=0.0, stragglers=(),
            hits=hits, coalesced=coalesced, executed=0,
            saved_seconds=saved, workers=workers,
        )
    half = len(times) // 2
    median = (
        times[half]
        if len(times) % 2
        else (times[half - 1] + times[half]) / 2
    )
    threshold = 2 * median
    stragglers = tuple(
        sorted(
            (
                (_key_label(o.key), o.wall_seconds)
                for o in ran
                if o.wall_seconds > threshold
            ),
            key=lambda pair: -pair[1],
        )
    )
    return TimingSummary(
        runs=len(outcomes),
        jobs=max(1, jobs),
        work_seconds=sum(times),
        wall_seconds=wall_seconds,
        mean_seconds=sum(times) / len(times),
        median_seconds=median,
        max_seconds=times[-1],
        stragglers=stragglers,
        hits=hits,
        coalesced=coalesced,
        executed=len(times),
        saved_seconds=saved,
        workers=workers,
    )


class StderrProgress:
    """A progress printer for CLI use (stderr, one line per run).

    Instances are valid :data:`ProgressFn` callbacks that additionally
    accumulate every outcome, so after ``execute_plan`` returns the
    caller can ask for a :meth:`summary` of where the wall-time went.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.outcomes: List[RunOutcome] = []
        self._started = time.perf_counter()

    def __call__(self, outcome: RunOutcome, done: int, total: int) -> None:
        self.outcomes.append(outcome)
        if outcome.source == SOURCE_HIT:
            detail = f"store hit, ~{outcome.saved_seconds:.2f}s saved"
        elif outcome.source == SOURCE_COALESCED:
            detail = (
                f"coalesced, ~{outcome.saved_seconds:.2f}s saved"
            )
        elif outcome.worker:
            detail = f"{outcome.wall_seconds:.2f}s on {outcome.worker}"
        else:
            detail = f"{outcome.wall_seconds:.2f}s"
        print(
            f"[{self.name} {done}/{total}] {_key_label(outcome.key)} "
            f"({detail})",
            file=sys.stderr,
            flush=True,
        )

    def summary(self, jobs: Optional[int] = None) -> TimingSummary:
        """Timing summary over everything reported so far."""
        return summarize_timing(
            self.outcomes,
            jobs=default_jobs() if jobs is None else max(1, int(jobs)),
            wall_seconds=time.perf_counter() - self._started,
        )


def stderr_progress(name: str) -> StderrProgress:
    """Back-compat factory for :class:`StderrProgress`."""
    return StderrProgress(name)
