"""Extension experiments beyond the paper's evaluation section.

The paper's conclusion names barrier synchronization (their follow-up,
ref [34]) and hot-spot traffic as the work in progress; these
experiments carry the reproduction into that territory with the
machinery already built:

X1 — barrier latency and release skew vs. system size, comparing a
     multidestination-worm release against a software broadcast release;
X2 — hot-spot unicast traffic, central vs. input buffer organisation;
X3 — central-buffer occupancy by switch level under bimodal traffic,
     hardware vs. software multicast (how much buffering each scheme
     actually consumes).
"""

from __future__ import annotations

from typing import Sequence

from repro.collectives.barrier import BarrierEngine, ReleaseScheme
from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.metrics.probe import central_buffer_occupancy_by_level
from repro.metrics.report import Table
from repro.network.builder import build_network
from repro.network.simulation import run_workload
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.hotspot import HotspotTraffic


def run_barrier_scaling(
    scale: Scale = QUICK,
    sizes: Sequence[int] = (16, 64, 256),
) -> ExperimentResult:
    """X1: full-system barrier latency/skew vs. N for both releases."""
    table = Table(
        "X1: barrier synchronization — latency and release skew [cycles]",
        ["N", "lat@hw-release", "skew@hw-release",
         "lat@sw-release", "skew@sw-release"],
    )
    result = ExperimentResult("x1_barrier", table)
    for num_hosts in sizes:
        measured = {}
        for release in ReleaseScheme:
            latencies, skews = [], []
            for seed in scale.seeds():
                network = build_network(base_config(num_hosts, seed=seed))
                engine = BarrierEngine(network.nodes)
                operation = engine.create(
                    list(range(num_hosts)), release_scheme=release
                )

                def enter_all(op=operation, eng=engine, n=num_hosts):
                    for host in range(n):
                        eng.enter(op, host)

                network.sim.schedule_at(0, enter_all)
                network.sim.run_until(
                    lambda op=operation: op.complete,
                    max_cycles=scale.max_cycles,
                    stall_limit=30_000,
                )
                latencies.append(operation.last_latency)
                skews.append(operation.skew)
            measured[release] = (mean(latencies), mean(skews))
            result.rows.append(
                {
                    "num_hosts": num_hosts,
                    "release": release.value,
                    "latency": mean(latencies),
                    "skew": mean(skews),
                }
            )
        hw = measured[ReleaseScheme.HARDWARE_MULTICAST]
        sw = measured[ReleaseScheme.SOFTWARE_BROADCAST]
        table.add_row(num_hosts, hw[0], hw[1], sw[0], sw[1])
    return result


def run_hotspot(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    load: float = 0.3,
    fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    payload_flits: int = 32,
) -> ExperimentResult:
    """X2: hot-spot unicast — latency vs. hot fraction, CB vs. IB."""
    schemes = [Scheme.CB_HW, Scheme.IB_HW]
    table = Table(
        f"X2: hot-spot traffic (N={num_hosts}, load={load}) — "
        "unicast latency [cycles]",
        ["hot fraction"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("x2_hotspot", table)
    for fraction in fractions:
        cells = [fraction]
        for scheme in schemes:
            latencies = []
            for seed in scale.seeds():
                config = scheme.apply(base_config(num_hosts, seed=seed))
                workload = HotspotTraffic(
                    load=load,
                    hotspot_fraction=fraction,
                    hotspot_host=0,
                    payload_flits=payload_flits,
                    warmup_cycles=scale.warmup_cycles,
                    measure_cycles=scale.measure_cycles,
                )
                network = build_network(config)
                run = run_workload(
                    network, workload, max_cycles=scale.max_cycles
                )
                if run.unicast_latency.count:
                    latencies.append(run.unicast_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {
                    "fraction": fraction,
                    "scheme": scheme.value,
                    "latency": latency,
                }
            )
        table.add_row(*cells)
    return result


def run_buffer_occupancy(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    load: float = 0.3,
    degree: int = 8,
) -> ExperimentResult:
    """X3: central-buffer occupancy by level under bimodal traffic."""
    schemes = [Scheme.CB_HW, Scheme.SW]
    table = Table(
        f"X3: mean central-buffer occupancy by level "
        f"(N={num_hosts}, load={load}, d={degree}) [chunks]",
        ["level"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("x3_occupancy", table)
    per_scheme = {}
    for scheme in schemes:
        occupancy_sums: dict = {}
        for seed in scale.seeds():
            config = scheme.apply(base_config(num_hosts, seed=seed))
            workload = BimodalTraffic(
                load=load,
                multicast_fraction=1.0 / 16.0,
                degree=degree,
                payload_flits=32,
                scheme=scheme.multicast_scheme,
                warmup_cycles=scale.warmup_cycles,
                measure_cycles=scale.measure_cycles,
            )
            network = build_network(config)
            run_workload(network, workload, max_cycles=scale.max_cycles)
            for level, value in central_buffer_occupancy_by_level(
                network
            ).items():
                occupancy_sums.setdefault(level, []).append(value)
        per_scheme[scheme] = {
            level: mean(values) for level, values in occupancy_sums.items()
        }
    levels = sorted(per_scheme[schemes[0]])
    for level in levels:
        cells = [level]
        for scheme in schemes:
            value = per_scheme[scheme][level]
            cells.append(round(value, 2))
            result.rows.append(
                {
                    "level": level,
                    "scheme": scheme.value,
                    "occupancy": value,
                }
            )
        table.add_row(*cells)
    return result
