"""Extension experiments beyond the paper's evaluation section.

The paper's conclusion names barrier synchronization (their follow-up,
ref [34]) and hot-spot traffic as the work in progress; these
experiments carry the reproduction into that territory with the
machinery already built:

X1 — barrier latency and release skew vs. system size, comparing a
     multidestination-worm release against a software broadcast release;
X2 — hot-spot unicast traffic, central vs. input buffer organisation;
X3 — central-buffer occupancy by switch level under bimodal traffic,
     hardware vs. software multicast (how much buffering each scheme
     actually consumes).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.collectives.barrier import BarrierEngine, ReleaseScheme
from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.probe import central_buffer_occupancy_by_level
from repro.metrics.report import Table
from repro.network.builder import build_network
from repro.network.simulation import run_workload
from repro.traffic.bimodal import BimodalTraffic
from repro.traffic.hotspot import HotspotTraffic


# ----------------------------------------------------------------------
# X1: barrier scaling
# ----------------------------------------------------------------------
def _run_barrier(
    num_hosts: int,
    seed: int,
    release: ReleaseScheme,
    max_cycles: int,
) -> Dict[str, float]:
    """Worker: one full-system barrier; returns latency and skew."""
    network = build_network(base_config(num_hosts, seed=seed))
    engine = BarrierEngine(network.nodes)
    operation = engine.create(
        list(range(num_hosts)), release_scheme=release
    )

    def enter_all(op=operation, eng=engine, n=num_hosts):
        for host in range(n):
            eng.enter(op, host)

    network.sim.schedule_at(0, enter_all)
    network.sim.run_until(
        lambda op=operation: op.complete,
        max_cycles=max_cycles,
        stall_limit=30_000,
    )
    return {"latency": operation.last_latency, "skew": operation.skew}


def plan_barrier_scaling(
    scale: Scale = QUICK,
    sizes: Sequence[int] = (16, 64, 256),
) -> ExecutionPlan:
    """Declare X1's (size x release x seed) grid."""
    seeds = scale.seeds()
    specs = []
    for num_hosts in sizes:
        for release in ReleaseScheme:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(num_hosts, release.value, seed),
                        fn=_run_barrier,
                        kwargs=dict(
                            num_hosts=num_hosts,
                            seed=seed,
                            release=release,
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(sizes=tuple(sizes), seeds=seeds)
    return ExecutionPlan("x1", specs, meta)


def reduce_barrier_scaling(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run barrier measurements into X1's table."""
    meta = plan.meta
    table = Table(
        "X1: barrier synchronization — latency and release skew [cycles]",
        ["N", "lat@hw-release", "skew@hw-release",
         "lat@sw-release", "skew@sw-release"],
    )
    result = ExperimentResult("x1_barrier", table)
    for num_hosts in meta["sizes"]:
        measured = {}
        for release in ReleaseScheme:
            runs = [
                results[(num_hosts, release.value, seed)]
                for seed in meta["seeds"]
            ]
            latency = mean([run["latency"] for run in runs])
            skew = mean([run["skew"] for run in runs])
            measured[release] = (latency, skew)
            result.rows.append(
                {
                    "num_hosts": num_hosts,
                    "release": release.value,
                    "latency": latency,
                    "skew": skew,
                }
            )
        hw = measured[ReleaseScheme.HARDWARE_MULTICAST]
        sw = measured[ReleaseScheme.SOFTWARE_BROADCAST]
        table.add_row(num_hosts, hw[0], hw[1], sw[0], sw[1])
    return result


def run_barrier_scaling(
    scale: Scale = QUICK,
    sizes: Sequence[int] = (16, 64, 256),
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """X1: full-system barrier latency/skew vs. N for both releases."""
    plan = plan_barrier_scaling(scale, sizes)
    return reduce_barrier_scaling(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


# ----------------------------------------------------------------------
# X2: hot-spot traffic
# ----------------------------------------------------------------------
def plan_hotspot(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    load: float = 0.3,
    fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    payload_flits: int = 32,
) -> ExecutionPlan:
    """Declare X2's (fraction x scheme x seed) grid."""
    schemes = [Scheme.CB_HW, Scheme.IB_HW]
    seeds = scale.seeds()
    specs = []
    for fraction in fractions:
        for scheme in schemes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(fraction, scheme.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=scheme.apply(
                                base_config(num_hosts, seed=seed)
                            ),
                            workload_cls=HotspotTraffic,
                            workload_kwargs=dict(
                                load=load,
                                hotspot_fraction=fraction,
                                hotspot_host=0,
                                payload_flits=payload_flits,
                                warmup_cycles=scale.warmup_cycles,
                                measure_cycles=scale.measure_cycles,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        load=load,
        fractions=tuple(fractions),
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("x2", specs, meta)


def reduce_hotspot(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into X2's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    table = Table(
        f"X2: hot-spot traffic (N={meta['num_hosts']}, "
        f"load={meta['load']}) — unicast latency [cycles]",
        ["hot fraction"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("x2_hotspot", table)
    for fraction in meta["fractions"]:
        cells = [fraction]
        for scheme in schemes:
            latencies = []
            for seed in meta["seeds"]:
                summary = results[(fraction, scheme.value, seed)]
                if summary.unicast_latency.count:
                    latencies.append(summary.unicast_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {
                    "fraction": fraction,
                    "scheme": scheme.value,
                    "latency": latency,
                }
            )
        table.add_row(*cells)
    return result


def run_hotspot(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    load: float = 0.3,
    fractions: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    payload_flits: int = 32,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """X2: hot-spot unicast — latency vs. hot fraction, CB vs. IB."""
    plan = plan_hotspot(scale, num_hosts, load, fractions, payload_flits)
    return reduce_hotspot(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


# ----------------------------------------------------------------------
# X3: buffer occupancy
# ----------------------------------------------------------------------
def _run_occupancy(
    config, workload_kwargs: Dict[str, object], max_cycles: int
) -> Dict[int, float]:
    """Worker: one bimodal run; returns occupancy by switch level."""
    network = build_network(config)
    workload = BimodalTraffic(**workload_kwargs)
    run_workload(network, workload, max_cycles=max_cycles)
    return central_buffer_occupancy_by_level(network)


def plan_buffer_occupancy(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    load: float = 0.3,
    degree: int = 8,
) -> ExecutionPlan:
    """Declare X3's (scheme x seed) grid."""
    schemes = [Scheme.CB_HW, Scheme.SW]
    seeds = scale.seeds()
    specs = []
    for scheme in schemes:
        for seed in seeds:
            specs.append(
                RunSpec(
                    key=(scheme.value, seed),
                    fn=_run_occupancy,
                    kwargs=dict(
                        config=scheme.apply(base_config(num_hosts, seed=seed)),
                        workload_kwargs=dict(
                            load=load,
                            multicast_fraction=1.0 / 16.0,
                            degree=degree,
                            payload_flits=32,
                            scheme=scheme.multicast_scheme,
                            warmup_cycles=scale.warmup_cycles,
                            measure_cycles=scale.measure_cycles,
                        ),
                        max_cycles=scale.max_cycles,
                    ),
                )
            )
    meta = dict(
        num_hosts=num_hosts,
        load=load,
        degree=degree,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("x3", specs, meta)


def reduce_buffer_occupancy(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run occupancy maps into X3's per-level table."""
    meta = plan.meta
    schemes = meta["schemes"]
    table = Table(
        f"X3: mean central-buffer occupancy by level "
        f"(N={meta['num_hosts']}, load={meta['load']}, "
        f"d={meta['degree']}) [chunks]",
        ["level"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("x3_occupancy", table)
    per_scheme = {}
    for scheme in schemes:
        occupancy_sums: dict = {}
        for seed in meta["seeds"]:
            for level, value in results[(scheme.value, seed)].items():
                occupancy_sums.setdefault(level, []).append(value)
        per_scheme[scheme] = {
            level: mean(values) for level, values in occupancy_sums.items()
        }
    levels = sorted(per_scheme[schemes[0]])
    for level in levels:
        cells = [level]
        for scheme in schemes:
            value = per_scheme[scheme][level]
            cells.append(round(value, 2))
            result.rows.append(
                {
                    "level": level,
                    "scheme": scheme.value,
                    "occupancy": value,
                }
            )
        table.add_row(*cells)
    return result


def run_buffer_occupancy(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    load: float = 0.3,
    degree: int = 8,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """X3: central-buffer occupancy by level under bimodal traffic."""
    plan = plan_buffer_occupancy(scale, num_hosts, load, degree)
    return reduce_buffer_occupancy(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
