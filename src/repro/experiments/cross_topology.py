"""X4: scheme generality across topology families.

The paper argues its designs apply to "all categories of switch-based
parallel systems" — bidirectional MINs (evaluated), unidirectional MINs,
and irregular networks of workstations — while restricting its own
performance study to BMINs.  This experiment runs the E2-style degree
sweep on all three families and reports the HW/SW latency ratio, showing
the multidestination advantage is a property of the mechanism, not of
the fat-tree.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.metrics.report import Table
from repro.network.config import TopologyKind
from repro.network.simulation import run_simulation
from repro.traffic.multicast import SingleMulticast


def _config_for(topology: TopologyKind, num_hosts: int, seed: int):
    config = base_config(num_hosts, seed=seed, topology=topology)
    if topology is TopologyKind.IRREGULAR:
        config = config.derived(
            irregular_switches=max(4, num_hosts // 2),
            irregular_extra_links=3,
        )
    return config


def run_cross_topology(
    scale: Scale = QUICK,
    num_hosts: int = 16,
    degrees: Sequence[int] = (4, 8, 12),
) -> ExperimentResult:
    """Run X4: HW vs SW multicast latency on BMIN, UMIN and irregular."""
    topologies = list(TopologyKind)
    columns = ["degree"]
    for topology in topologies:
        columns.append(f"hw@{topology.value}")
        columns.append(f"sw@{topology.value}")
    table = Table(
        f"X4: multicast latency across topology families (N={num_hosts}) "
        "[cycles]",
        columns,
    )
    result = ExperimentResult("x4_cross_topology", table)
    for degree in degrees:
        if degree >= num_hosts:
            continue
        cells = [degree]
        for topology in topologies:
            for scheme in (Scheme.CB_HW, Scheme.SW):
                latencies = []
                for seed in scale.seeds():
                    config = scheme.apply(
                        _config_for(topology, num_hosts, seed)
                    )
                    workload = SingleMulticast(
                        source=seed % num_hosts,
                        degree=degree,
                        payload_flits=32,
                        scheme=scheme.multicast_scheme,
                    )
                    run = run_simulation(
                        config, workload, max_cycles=scale.max_cycles
                    )
                    latencies.append(run.op_last_latency.mean)
                latency = mean(latencies)
                cells.append(latency)
                result.rows.append(
                    {
                        "degree": degree,
                        "topology": topology.value,
                        "scheme": scheme.value,
                        "latency": latency,
                    }
                )
        table.add_row(*cells)
    return result
