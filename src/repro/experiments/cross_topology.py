"""X4: scheme generality across topology families.

The paper argues its designs apply to "all categories of switch-based
parallel systems" — bidirectional MINs (evaluated), unidirectional MINs,
and irregular networks of workstations — while restricting its own
performance study to BMINs.  This experiment runs the E2-style degree
sweep on all three families and reports the HW/SW latency ratio, showing
the multidestination advantage is a property of the mechanism, not of
the fat-tree.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.network.config import TopologyKind
from repro.traffic.multicast import SingleMulticast


def _config_for(topology: TopologyKind, num_hosts: int, seed: int):
    config = base_config(num_hosts, seed=seed, topology=topology)
    if topology is TopologyKind.IRREGULAR:
        config = config.derived(
            irregular_switches=max(4, num_hosts // 2),
            irregular_extra_links=3,
        )
    return config


def plan_cross_topology(
    scale: Scale = QUICK,
    num_hosts: int = 16,
    degrees: Sequence[int] = (4, 8, 12),
) -> ExecutionPlan:
    """Declare X4's (degree x topology x scheme x seed) grid."""
    topologies = list(TopologyKind)
    schemes = [Scheme.CB_HW, Scheme.SW]
    seeds = scale.seeds()
    usable = tuple(degree for degree in degrees if degree < num_hosts)
    specs = []
    for degree in usable:
        for topology in topologies:
            for scheme in schemes:
                for seed in seeds:
                    specs.append(
                        RunSpec(
                            key=(
                                degree, topology.value, scheme.value, seed
                            ),
                            fn=simulate_summary,
                            kwargs=dict(
                                config=scheme.apply(
                                    _config_for(topology, num_hosts, seed)
                                ),
                                workload_cls=SingleMulticast,
                                workload_kwargs=dict(
                                    source=seed % num_hosts,
                                    degree=degree,
                                    payload_flits=32,
                                    scheme=scheme.multicast_scheme,
                                ),
                                max_cycles=scale.max_cycles,
                            ),
                        )
                    )
    meta = dict(
        num_hosts=num_hosts,
        degrees=usable,
        topologies=topologies,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("x4", specs, meta)


def reduce_cross_topology(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into X4's table, in declared grid order."""
    meta = plan.meta
    topologies = meta["topologies"]
    columns = ["degree"]
    for topology in topologies:
        columns.append(f"hw@{topology.value}")
        columns.append(f"sw@{topology.value}")
    table = Table(
        f"X4: multicast latency across topology families "
        f"(N={meta['num_hosts']}) [cycles]",
        columns,
    )
    result = ExperimentResult("x4_cross_topology", table)
    for degree in meta["degrees"]:
        cells = [degree]
        for topology in topologies:
            for scheme in meta["schemes"]:
                latency = mean(
                    [
                        results[
                            (degree, topology.value, scheme.value, seed)
                        ].op_last_latency.mean
                        for seed in meta["seeds"]
                    ]
                )
                cells.append(latency)
                result.rows.append(
                    {
                        "degree": degree,
                        "topology": topology.value,
                        "scheme": scheme.value,
                        "latency": latency,
                    }
                )
        table.add_row(*cells)
    return result


def run_cross_topology(
    scale: Scale = QUICK,
    num_hosts: int = 16,
    degrees: Sequence[int] = (4, 8, 12),
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run X4: HW vs SW multicast latency on BMIN, UMIN and irregular."""
    plan = plan_cross_topology(scale, num_hosts, degrees)
    return reduce_cross_topology(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
