"""E2: multicast latency vs. number of destinations.

One multicast on an idle network, degree swept from 2 to N-1, averaged
over random destination sets.  Hardware multicast latency is nearly flat
in the degree (one worm, replicated in the switches), while the software
scheme grows with ceil(log2(d+1)) serialized phases — the paper's
up-to-4x gap.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.multicast import SingleMulticast

DEFAULT_DEGREES = (2, 4, 8, 16, 32, 63)


def run_degree_sweep(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    degrees: Sequence[int] = DEFAULT_DEGREES,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExperimentResult:
    """Run E2 and return per-(degree, scheme) last-arrival latencies."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    table = Table(
        f"E2: single multicast latency vs. degree (N={num_hosts}, "
        f"{payload_flits}-flit payload) [cycles]",
        ["degree"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("e2_degree_sweep", table)
    for degree in degrees:
        if degree >= num_hosts:
            continue
        cells = [degree]
        for scheme in schemes:
            latencies = []
            for seed in scale.seeds():
                config = scheme.apply(base_config(num_hosts, seed=seed))
                workload = SingleMulticast(
                    source=seed % num_hosts,
                    degree=degree,
                    payload_flits=payload_flits,
                    scheme=scheme.multicast_scheme,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                latencies.append(run.op_last_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"degree": degree, "scheme": scheme.value, "latency": latency}
            )
        table.add_row(*cells)
    return result
