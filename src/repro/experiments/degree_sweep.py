"""E2: multicast latency vs. number of destinations.

One multicast on an idle network, degree swept from 2 to N-1, averaged
over random destination sets.  Hardware multicast latency is nearly flat
in the degree (one worm, replicated in the switches), while the software
scheme grows with ceil(log2(d+1)) serialized phases — the paper's
up-to-4x gap.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.traffic.multicast import SingleMulticast

DEFAULT_DEGREES = (2, 4, 8, 16, 32, 63)


def plan_degree_sweep(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    degrees: Sequence[int] = DEFAULT_DEGREES,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExecutionPlan:
    """Declare E2's (degree x scheme x seed) grid of independent runs."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    seeds = scale.seeds()
    usable = tuple(degree for degree in degrees if degree < num_hosts)
    specs = []
    for degree in usable:
        for scheme in schemes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(degree, scheme.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=scheme.apply(
                                base_config(num_hosts, seed=seed)
                            ),
                            workload_cls=SingleMulticast,
                            workload_kwargs=dict(
                                source=seed % num_hosts,
                                degree=degree,
                                payload_flits=payload_flits,
                                scheme=scheme.multicast_scheme,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        degrees=usable,
        payload_flits=payload_flits,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("e2", specs, meta)


def reduce_degree_sweep(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into E2's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    table = Table(
        f"E2: single multicast latency vs. degree (N={meta['num_hosts']}, "
        f"{meta['payload_flits']}-flit payload) [cycles]",
        ["degree"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("e2_degree_sweep", table)
    for degree in meta["degrees"]:
        cells = [degree]
        for scheme in schemes:
            latency = mean(
                [
                    results[(degree, scheme.value, seed)].op_last_latency.mean
                    for seed in meta["seeds"]
                ]
            )
            cells.append(latency)
            result.rows.append(
                {"degree": degree, "scheme": scheme.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_degree_sweep(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    degrees: Sequence[int] = DEFAULT_DEGREES,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run E2 and return per-(degree, scheme) last-arrival latencies."""
    plan = plan_degree_sweep(scale, num_hosts, degrees, payload_flits, schemes)
    return reduce_degree_sweep(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
