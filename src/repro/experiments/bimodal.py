"""E4: bimodal traffic — how a multicast scheme hurts background unicast.

Hosts generate a Poisson stream in which 1/16 of messages are multicasts
of degree 8 and the rest are unicasts, at a swept offered load.  We
report the mean latency of the *background unicast* traffic and of the
multicast operations under hardware (CB) and software multicast.

The paper's key finding: the software scheme injects ~d unicasts with
fresh start-ups per operation, so at equal nominal load it both saturates
the network earlier (background unicast latency blows up) and delivers
far worse multicast latency — hardware multicast is gentler on everyone
else's traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.traffic.bimodal import BimodalTraffic

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5)


def plan_bimodal(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = DEFAULT_LOADS,
    multicast_fraction: float = 1.0 / 16.0,
    degree: int = 8,
    payload_flits: int = 32,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExecutionPlan:
    """Declare E4's (load x scheme x seed) grid of independent runs."""
    schemes = (
        list(schemes) if schemes is not None else [Scheme.CB_HW, Scheme.SW]
    )
    seeds = scale.seeds()
    specs = []
    for load in loads:
        for scheme in schemes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(load, scheme.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=scheme.apply(
                                base_config(num_hosts, seed=seed)
                            ),
                            workload_cls=BimodalTraffic,
                            workload_kwargs=dict(
                                load=load,
                                multicast_fraction=multicast_fraction,
                                degree=degree,
                                payload_flits=payload_flits,
                                scheme=scheme.multicast_scheme,
                                warmup_cycles=scale.warmup_cycles,
                                measure_cycles=scale.measure_cycles,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        loads=tuple(loads),
        multicast_fraction=multicast_fraction,
        degree=degree,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("e4", specs, meta)


def reduce_bimodal(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into E4's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    columns = ["load"]
    for scheme in schemes:
        columns.append(f"uni@{scheme.value}")
        columns.append(f"mc@{scheme.value}")
    table = Table(
        f"E4: bimodal traffic (N={meta['num_hosts']}, "
        f"f={meta['multicast_fraction']:.3f}, d={meta['degree']}) "
        "— unicast and multicast latency [cycles]",
        columns,
    )
    result = ExperimentResult("e4_bimodal", table)
    for load in meta["loads"]:
        cells = [load]
        for scheme in schemes:
            unicast, ops = [], []
            for seed in meta["seeds"]:
                summary = results[(load, scheme.value, seed)]
                if summary.unicast_latency.count:
                    unicast.append(summary.unicast_latency.mean)
                if summary.op_last_latency.count:
                    ops.append(summary.op_last_latency.mean)
            uni_latency = mean(unicast)
            op_latency = mean(ops)
            cells.extend([uni_latency, op_latency])
            result.rows.append(
                {
                    "load": load,
                    "scheme": scheme.value,
                    "unicast_latency": uni_latency,
                    "op_latency": op_latency,
                }
            )
        table.add_row(*cells)
    return result


def run_bimodal(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = DEFAULT_LOADS,
    multicast_fraction: float = 1.0 / 16.0,
    degree: int = 8,
    payload_flits: int = 32,
    schemes: Optional[Sequence[Scheme]] = None,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run E4; rows carry unicast and op latency per (load, scheme)."""
    plan = plan_bimodal(
        scale, num_hosts, loads, multicast_fraction, degree, payload_flits,
        schemes,
    )
    return reduce_bimodal(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
