"""E4: bimodal traffic — how a multicast scheme hurts background unicast.

Hosts generate a Poisson stream in which 1/16 of messages are multicasts
of degree 8 and the rest are unicasts, at a swept offered load.  We
report the mean latency of the *background unicast* traffic and of the
multicast operations under hardware (CB) and software multicast.

The paper's key finding: the software scheme injects ~d unicasts with
fresh start-ups per operation, so at equal nominal load it both saturates
the network earlier (background unicast latency blows up) and delivers
far worse multicast latency — hardware multicast is gentler on everyone
else's traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)

from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.bimodal import BimodalTraffic

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5)


def run_bimodal(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = DEFAULT_LOADS,
    multicast_fraction: float = 1.0 / 16.0,
    degree: int = 8,
    payload_flits: int = 32,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExperimentResult:
    """Run E4; rows carry unicast and op latency per (load, scheme)."""
    schemes = (
        list(schemes) if schemes is not None else [Scheme.CB_HW, Scheme.SW]
    )
    columns = ["load"]
    for scheme in schemes:
        columns.append(f"uni@{scheme.value}")
        columns.append(f"mc@{scheme.value}")
    table = Table(
        f"E4: bimodal traffic (N={num_hosts}, f={multicast_fraction:.3f}, "
        f"d={degree}) — unicast and multicast latency [cycles]",
        columns,
    )
    result = ExperimentResult("e4_bimodal", table)
    for load in loads:
        cells = [load]
        for scheme in schemes:
            unicast, ops = [], []
            for seed in scale.seeds():
                config = scheme.apply(base_config(num_hosts, seed=seed))
                workload = BimodalTraffic(
                    load=load,
                    multicast_fraction=multicast_fraction,
                    degree=degree,
                    payload_flits=payload_flits,
                    scheme=scheme.multicast_scheme,
                    warmup_cycles=scale.warmup_cycles,
                    measure_cycles=scale.measure_cycles,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                if run.unicast_latency.count:
                    unicast.append(run.unicast_latency.mean)
                if run.op_last_latency.count:
                    ops.append(run.op_last_latency.mean)
            uni_latency = mean(unicast)
            op_latency = mean(ops)
            cells.extend([uni_latency, op_latency])
            result.rows.append(
                {
                    "load": load,
                    "scheme": scheme.value,
                    "unicast_latency": uni_latency,
                    "op_latency": op_latency,
                }
            )
        table.add_row(*cells)
    return result
