"""Ablations of the design choices DESIGN.md calls out.

A1 — central-buffer bandwidth: the paper (via ref [33]) argues flit-wide
RAMs and register pipelines perform as well as a chunk-wide crossbar; we
sweep the per-cycle read/write caps to show where bandwidth starts to
matter.

A2 — LCA routing mode: turnaround (replicate only on the way down) vs.
branch-on-up (replicate toward in-subtree destinations while ascending).

A3 — header encodings: bit-string (single phase, O(N) header) vs.
multiport (tiny header, multiple phases for non-product sets) as system
size grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schemes import SwitchArchitecture
from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.flits.destset import DestinationSet
from repro.metrics.report import Table
from repro.network.config import EncodingKind
from repro.network.simulation import run_simulation
from repro.routing.base import MulticastRoutingMode
from repro.switches.base import ReplicationMode
from repro.traffic.multicast import MultipleMulticastBurst, SingleMulticast


def run_cb_bandwidth_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    bandwidths: Sequence[int] = (1, 2, 4, 8),
    num_multicasts: int = 8,
    degree: int = 8,
    payload_flits: int = 64,
) -> ExperimentResult:
    """A1: E1's workload under reduced central-buffer port bandwidth."""
    table = Table(
        f"A1: central-buffer bandwidth (N={num_hosts}, m={num_multicasts}, "
        f"d={degree}) — mean last-arrival latency [cycles]",
        ["flits/cycle", "cb-hw"],
    )
    result = ExperimentResult("a1_cb_bandwidth", table)
    for bandwidth in bandwidths:
        latencies = []
        for seed in scale.seeds():
            config = base_config(
                num_hosts,
                seed=seed,
                cb_write_bandwidth=bandwidth,
                cb_read_bandwidth=bandwidth,
            )
            workload = MultipleMulticastBurst(
                num_multicasts=num_multicasts,
                degree=degree,
                payload_flits=payload_flits,
                scheme=Scheme.CB_HW.multicast_scheme,
            )
            run = run_simulation(config, workload, max_cycles=scale.max_cycles)
            latencies.append(run.op_last_latency.mean)
        latency = mean(latencies)
        table.add_row(bandwidth, latency)
        result.rows.append({"bandwidth": bandwidth, "latency": latency})
    return result


def run_routing_mode_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    degrees: Sequence[int] = (4, 8, 16, 32),
    payload_flits: int = 64,
) -> ExperimentResult:
    """A2: turnaround vs. branch-on-up LCA routing on E2's workload."""
    modes = list(MulticastRoutingMode)
    table = Table(
        f"A2: multicast routing mode (N={num_hosts}) — "
        "mean last-arrival latency [cycles]",
        ["degree"] + [mode.value for mode in modes],
    )
    result = ExperimentResult("a2_routing_mode", table)
    for degree in degrees:
        cells = [degree]
        for mode in modes:
            latencies = []
            for seed in scale.seeds():
                config = base_config(
                    num_hosts, seed=seed, multicast_mode=mode
                )
                workload = SingleMulticast(
                    source=seed % num_hosts,
                    degree=degree,
                    payload_flits=payload_flits,
                    scheme=Scheme.CB_HW.multicast_scheme,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                latencies.append(run.op_last_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"degree": degree, "mode": mode.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_encoding_ablation(
    scale: Scale = QUICK,
    sizes: Sequence[int] = (16, 64, 256),
    degree: int = 8,
    payload_flits: int = 64,
) -> ExperimentResult:
    """A3: bit-string vs. multiport encoding across system sizes.

    Reports the multicast header size each encoding needs and the measured
    operation latency (multiport pays extra phases for random —
    non-product — destination sets; bit-string pays a header that grows
    with N)."""
    kinds = [EncodingKind.BITSTRING, EncodingKind.MULTIPORT]
    table = Table(
        f"A3: header encodings (d={degree}) — header [flits] and "
        "latency [cycles]",
        ["N", "hdr@bitstring", "hdr@multiport", "lat@bitstring",
         "lat@multiport"],
    )
    result = ExperimentResult("a3_encoding", table)
    for num_hosts in sizes:
        if degree >= num_hosts:
            continue
        headers = {}
        latencies = {}
        for kind in kinds:
            config = base_config(num_hosts, encoding=kind)
            encoding = config.build_encoding()
            headers[kind] = encoding.header_flits(
                DestinationSet.full(num_hosts)
            )
            values = []
            for seed in scale.seeds():
                run = run_simulation(
                    config.derived(seed=seed),
                    SingleMulticast(
                        source=seed % num_hosts,
                        degree=degree,
                        payload_flits=payload_flits,
                        scheme=Scheme.CB_HW.multicast_scheme,
                    ),
                    max_cycles=scale.max_cycles,
                )
                values.append(run.op_last_latency.mean)
            latencies[kind] = mean(values)
        table.add_row(
            num_hosts,
            headers[EncodingKind.BITSTRING],
            headers[EncodingKind.MULTIPORT],
            latencies[EncodingKind.BITSTRING],
            latencies[EncodingKind.MULTIPORT],
        )
        result.rows.append(
            {
                "num_hosts": num_hosts,
                "header_bitstring": headers[EncodingKind.BITSTRING],
                "header_multiport": headers[EncodingKind.MULTIPORT],
                "latency_bitstring": latencies[EncodingKind.BITSTRING],
                "latency_multiport": latencies[EncodingKind.MULTIPORT],
            }
        )
    return result


def run_replication_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 16,
    concurrency: Sequence[int] = (2, 4, 8, 16),
    degree: int = 6,
    payload_flits: int = 48,
) -> ExperimentResult:
    """A4: asynchronous vs. synchronous replication (paper §3).

    Both run on the input-buffer switch (synchronous replication needs
    the per-switch arbitration of ref [6], which the IB design hosts
    naturally).  Under concurrent multicasts, lock-step forwarding lets
    any blocked branch stall its whole worm, and the single-worm-at-a-
    time port arbitration serializes replication at each switch — the
    performance argument for the paper's asynchronous choice.
    """
    modes = list(ReplicationMode)
    table = Table(
        f"A4: replication discipline on the IB switch (N={num_hosts}, "
        f"d={degree}) — mean last-arrival latency [cycles]",
        ["m"] + [mode.value for mode in modes],
    )
    result = ExperimentResult("a4_replication", table)
    for m in concurrency:
        cells = [m]
        for mode in modes:
            latencies = []
            for seed in scale.seeds():
                config = base_config(
                    num_hosts,
                    seed=seed,
                    switch_architecture=SwitchArchitecture.INPUT_BUFFER,
                    replication=mode,
                )
                workload = MultipleMulticastBurst(
                    num_multicasts=m,
                    degree=degree,
                    payload_flits=payload_flits,
                    scheme=Scheme.IB_HW.multicast_scheme,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                latencies.append(run.op_last_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"m": m, "replication": mode.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_equal_storage_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = (0.3, 0.45, 0.6),
    payload_flits: int = 32,
) -> ExperimentResult:
    """A5: is the central buffer's win just more silicon?

    Compares three switches with identical behaviourally relevant totals:
    the central-buffer switch (2048 shared flits), the input-buffer
    switch at its minimal legal size (one max packet per input), and the
    input-buffer switch given the same 2048 flits of storage as the
    central buffer (256 flits per input, ~1.9 packets each).  If sharing
    is what matters — the claim of refs [36, 37] the paper builds on —
    the equal-storage IB switch must still trail the CB switch.
    """
    from repro.traffic.unicast import UniformRandomUnicast

    variants = [
        ("cb-2048-shared", Scheme.CB_HW, None),
        ("ib-minimal", Scheme.IB_HW, None),
        ("ib-2048-split", Scheme.IB_HW, 256),
    ]
    table = Table(
        f"A5: equal-storage comparison (N={num_hosts}) — unicast latency "
        "[cycles]",
        ["load"] + [name for name, _, _ in variants],
    )
    result = ExperimentResult("a5_equal_storage", table)
    for load in loads:
        cells = [load]
        for name, scheme, buffer_flits in variants:
            latencies = []
            for seed in scale.seeds():
                config = scheme.apply(base_config(num_hosts, seed=seed))
                if buffer_flits is not None:
                    config = config.derived(input_buffer_flits=buffer_flits)
                workload = UniformRandomUnicast(
                    load=load,
                    payload_flits=payload_flits,
                    warmup_cycles=scale.warmup_cycles,
                    measure_cycles=scale.measure_cycles,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                if run.unicast_latency.count:
                    latencies.append(run.unicast_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"load": load, "variant": name, "latency": latency}
            )
        table.add_row(*cells)
    return result
