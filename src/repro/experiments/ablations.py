"""Ablations of the design choices DESIGN.md calls out.

A1 — central-buffer bandwidth: the paper (via ref [33]) argues flit-wide
RAMs and register pipelines perform as well as a chunk-wide crossbar; we
sweep the per-cycle read/write caps to show where bandwidth starts to
matter.

A2 — LCA routing mode: turnaround (replicate only on the way down) vs.
branch-on-up (replicate toward in-subtree destinations while ascending).

A3 — header encodings: bit-string (single phase, O(N) header) vs.
multiport (tiny header, multiple phases for non-product sets) as system
size grows.

A4 — asynchronous vs. synchronous replication on the IB switch.

A5 — equal-storage comparison: is the central buffer's win just silicon?
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.schemes import SwitchArchitecture
from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.flits.destset import DestinationSet
from repro.metrics.report import Table
from repro.network.config import EncodingKind
from repro.routing.base import MulticastRoutingMode
from repro.switches.base import ReplicationMode
from repro.traffic.multicast import MultipleMulticastBurst, SingleMulticast
from repro.traffic.unicast import UniformRandomUnicast


# ----------------------------------------------------------------------
# A1: central-buffer bandwidth
# ----------------------------------------------------------------------
def plan_cb_bandwidth_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    bandwidths: Sequence[int] = (1, 2, 4, 8),
    num_multicasts: int = 8,
    degree: int = 8,
    payload_flits: int = 64,
) -> ExecutionPlan:
    """Declare A1's (bandwidth x seed) grid."""
    seeds = scale.seeds()
    specs = []
    for bandwidth in bandwidths:
        for seed in seeds:
            specs.append(
                RunSpec(
                    key=(bandwidth, seed),
                    fn=simulate_summary,
                    kwargs=dict(
                        config=base_config(
                            num_hosts,
                            seed=seed,
                            cb_write_bandwidth=bandwidth,
                            cb_read_bandwidth=bandwidth,
                        ),
                        workload_cls=MultipleMulticastBurst,
                        workload_kwargs=dict(
                            num_multicasts=num_multicasts,
                            degree=degree,
                            payload_flits=payload_flits,
                            scheme=Scheme.CB_HW.multicast_scheme,
                        ),
                        max_cycles=scale.max_cycles,
                    ),
                )
            )
    meta = dict(
        num_hosts=num_hosts,
        bandwidths=tuple(bandwidths),
        num_multicasts=num_multicasts,
        degree=degree,
        seeds=seeds,
    )
    return ExecutionPlan("a1", specs, meta)


def reduce_cb_bandwidth_ablation(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into A1's table, in declared grid order."""
    meta = plan.meta
    table = Table(
        f"A1: central-buffer bandwidth (N={meta['num_hosts']}, "
        f"m={meta['num_multicasts']}, d={meta['degree']}) "
        "— mean last-arrival latency [cycles]",
        ["flits/cycle", "cb-hw"],
    )
    result = ExperimentResult("a1_cb_bandwidth", table)
    for bandwidth in meta["bandwidths"]:
        latency = mean(
            [
                results[(bandwidth, seed)].op_last_latency.mean
                for seed in meta["seeds"]
            ]
        )
        table.add_row(bandwidth, latency)
        result.rows.append({"bandwidth": bandwidth, "latency": latency})
    return result


def run_cb_bandwidth_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    bandwidths: Sequence[int] = (1, 2, 4, 8),
    num_multicasts: int = 8,
    degree: int = 8,
    payload_flits: int = 64,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """A1: E1's workload under reduced central-buffer port bandwidth."""
    plan = plan_cb_bandwidth_ablation(
        scale, num_hosts, bandwidths, num_multicasts, degree, payload_flits
    )
    return reduce_cb_bandwidth_ablation(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


# ----------------------------------------------------------------------
# A2: LCA routing mode
# ----------------------------------------------------------------------
def plan_routing_mode_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    degrees: Sequence[int] = (4, 8, 16, 32),
    payload_flits: int = 64,
) -> ExecutionPlan:
    """Declare A2's (degree x mode x seed) grid."""
    modes = list(MulticastRoutingMode)
    seeds = scale.seeds()
    specs = []
    for degree in degrees:
        for mode in modes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(degree, mode.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=base_config(
                                num_hosts, seed=seed, multicast_mode=mode
                            ),
                            workload_cls=SingleMulticast,
                            workload_kwargs=dict(
                                source=seed % num_hosts,
                                degree=degree,
                                payload_flits=payload_flits,
                                scheme=Scheme.CB_HW.multicast_scheme,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        degrees=tuple(degrees),
        modes=modes,
        seeds=seeds,
    )
    return ExecutionPlan("a2", specs, meta)


def reduce_routing_mode_ablation(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into A2's table, in declared grid order."""
    meta = plan.meta
    modes = meta["modes"]
    table = Table(
        f"A2: multicast routing mode (N={meta['num_hosts']}) — "
        "mean last-arrival latency [cycles]",
        ["degree"] + [mode.value for mode in modes],
    )
    result = ExperimentResult("a2_routing_mode", table)
    for degree in meta["degrees"]:
        cells = [degree]
        for mode in modes:
            latency = mean(
                [
                    results[(degree, mode.value, seed)].op_last_latency.mean
                    for seed in meta["seeds"]
                ]
            )
            cells.append(latency)
            result.rows.append(
                {"degree": degree, "mode": mode.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_routing_mode_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    degrees: Sequence[int] = (4, 8, 16, 32),
    payload_flits: int = 64,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """A2: turnaround vs. branch-on-up LCA routing on E2's workload."""
    plan = plan_routing_mode_ablation(scale, num_hosts, degrees, payload_flits)
    return reduce_routing_mode_ablation(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


# ----------------------------------------------------------------------
# A3: header encodings
# ----------------------------------------------------------------------
def plan_encoding_ablation(
    scale: Scale = QUICK,
    sizes: Sequence[int] = (16, 64, 256),
    degree: int = 8,
    payload_flits: int = 64,
) -> ExecutionPlan:
    """Declare A3's (size x encoding x seed) grid."""
    kinds = [EncodingKind.BITSTRING, EncodingKind.MULTIPORT]
    seeds = scale.seeds()
    usable = tuple(size for size in sizes if degree < size)
    specs = []
    for num_hosts in usable:
        for kind in kinds:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(num_hosts, kind.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=base_config(
                                num_hosts, seed=seed, encoding=kind
                            ),
                            workload_cls=SingleMulticast,
                            workload_kwargs=dict(
                                source=seed % num_hosts,
                                degree=degree,
                                payload_flits=payload_flits,
                                scheme=Scheme.CB_HW.multicast_scheme,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        sizes=usable,
        kinds=kinds,
        degree=degree,
        seeds=seeds,
    )
    return ExecutionPlan("a3", specs, meta)


def reduce_encoding_ablation(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into A3's table; headers are closed-form."""
    meta = plan.meta
    kinds = meta["kinds"]
    table = Table(
        f"A3: header encodings (d={meta['degree']}) — header [flits] and "
        "latency [cycles]",
        ["N", "hdr@bitstring", "hdr@multiport", "lat@bitstring",
         "lat@multiport"],
    )
    result = ExperimentResult("a3_encoding", table)
    for num_hosts in meta["sizes"]:
        headers = {}
        latencies = {}
        for kind in kinds:
            config = base_config(num_hosts, encoding=kind)
            encoding = config.build_encoding()
            headers[kind] = encoding.header_flits(
                DestinationSet.full(num_hosts)
            )
            latencies[kind] = mean(
                [
                    results[
                        (num_hosts, kind.value, seed)
                    ].op_last_latency.mean
                    for seed in meta["seeds"]
                ]
            )
        table.add_row(
            num_hosts,
            headers[EncodingKind.BITSTRING],
            headers[EncodingKind.MULTIPORT],
            latencies[EncodingKind.BITSTRING],
            latencies[EncodingKind.MULTIPORT],
        )
        result.rows.append(
            {
                "num_hosts": num_hosts,
                "header_bitstring": headers[EncodingKind.BITSTRING],
                "header_multiport": headers[EncodingKind.MULTIPORT],
                "latency_bitstring": latencies[EncodingKind.BITSTRING],
                "latency_multiport": latencies[EncodingKind.MULTIPORT],
            }
        )
    return result


def run_encoding_ablation(
    scale: Scale = QUICK,
    sizes: Sequence[int] = (16, 64, 256),
    degree: int = 8,
    payload_flits: int = 64,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """A3: bit-string vs. multiport encoding across system sizes.

    Reports the multicast header size each encoding needs and the measured
    operation latency (multiport pays extra phases for random —
    non-product — destination sets; bit-string pays a header that grows
    with N)."""
    plan = plan_encoding_ablation(scale, sizes, degree, payload_flits)
    return reduce_encoding_ablation(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


# ----------------------------------------------------------------------
# A4: replication discipline
# ----------------------------------------------------------------------
def plan_replication_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 16,
    concurrency: Sequence[int] = (2, 4, 8, 16),
    degree: int = 6,
    payload_flits: int = 48,
) -> ExecutionPlan:
    """Declare A4's (m x mode x seed) grid."""
    modes = list(ReplicationMode)
    seeds = scale.seeds()
    specs = []
    for m in concurrency:
        for mode in modes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(m, mode.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=base_config(
                                num_hosts,
                                seed=seed,
                                switch_architecture=(
                                    SwitchArchitecture.INPUT_BUFFER
                                ),
                                replication=mode,
                            ),
                            workload_cls=MultipleMulticastBurst,
                            workload_kwargs=dict(
                                num_multicasts=m,
                                degree=degree,
                                payload_flits=payload_flits,
                                scheme=Scheme.IB_HW.multicast_scheme,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        concurrency=tuple(concurrency),
        degree=degree,
        modes=modes,
        seeds=seeds,
    )
    return ExecutionPlan("a4", specs, meta)


def reduce_replication_ablation(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into A4's table, in declared grid order."""
    meta = plan.meta
    modes = meta["modes"]
    table = Table(
        f"A4: replication discipline on the IB switch "
        f"(N={meta['num_hosts']}, d={meta['degree']}) "
        "— mean last-arrival latency [cycles]",
        ["m"] + [mode.value for mode in modes],
    )
    result = ExperimentResult("a4_replication", table)
    for m in meta["concurrency"]:
        cells = [m]
        for mode in modes:
            latency = mean(
                [
                    results[(m, mode.value, seed)].op_last_latency.mean
                    for seed in meta["seeds"]
                ]
            )
            cells.append(latency)
            result.rows.append(
                {"m": m, "replication": mode.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_replication_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 16,
    concurrency: Sequence[int] = (2, 4, 8, 16),
    degree: int = 6,
    payload_flits: int = 48,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """A4: asynchronous vs. synchronous replication (paper §3).

    Both run on the input-buffer switch (synchronous replication needs
    the per-switch arbitration of ref [6], which the IB design hosts
    naturally).  Under concurrent multicasts, lock-step forwarding lets
    any blocked branch stall its whole worm, and the single-worm-at-a-
    time port arbitration serializes replication at each switch — the
    performance argument for the paper's asynchronous choice.
    """
    plan = plan_replication_ablation(
        scale, num_hosts, concurrency, degree, payload_flits
    )
    return reduce_replication_ablation(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )


# ----------------------------------------------------------------------
# A5: equal-storage comparison
# ----------------------------------------------------------------------

#: (variant name, scheme, per-input buffer override)
EQUAL_STORAGE_VARIANTS = (
    ("cb-2048-shared", Scheme.CB_HW, None),
    ("ib-minimal", Scheme.IB_HW, None),
    ("ib-2048-split", Scheme.IB_HW, 256),
)


def plan_equal_storage_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = (0.3, 0.45, 0.6),
    payload_flits: int = 32,
) -> ExecutionPlan:
    """Declare A5's (load x variant x seed) grid."""
    seeds = scale.seeds()
    specs = []
    for load in loads:
        for name, scheme, buffer_flits in EQUAL_STORAGE_VARIANTS:
            for seed in seeds:
                config = scheme.apply(base_config(num_hosts, seed=seed))
                if buffer_flits is not None:
                    config = config.derived(input_buffer_flits=buffer_flits)
                specs.append(
                    RunSpec(
                        key=(load, name, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=config,
                            workload_cls=UniformRandomUnicast,
                            workload_kwargs=dict(
                                load=load,
                                payload_flits=payload_flits,
                                warmup_cycles=scale.warmup_cycles,
                                measure_cycles=scale.measure_cycles,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        loads=tuple(loads),
        seeds=seeds,
    )
    return ExecutionPlan("a5", specs, meta)


def reduce_equal_storage_ablation(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into A5's table, in declared grid order."""
    meta = plan.meta
    table = Table(
        f"A5: equal-storage comparison (N={meta['num_hosts']}) — "
        "unicast latency [cycles]",
        ["load"] + [name for name, _, _ in EQUAL_STORAGE_VARIANTS],
    )
    result = ExperimentResult("a5_equal_storage", table)
    for load in meta["loads"]:
        cells = [load]
        for name, _, _ in EQUAL_STORAGE_VARIANTS:
            latencies = []
            for seed in meta["seeds"]:
                summary = results[(load, name, seed)]
                if summary.unicast_latency.count:
                    latencies.append(summary.unicast_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"load": load, "variant": name, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_equal_storage_ablation(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = (0.3, 0.45, 0.6),
    payload_flits: int = 32,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """A5: is the central buffer's win just more silicon?

    Compares three switches with identical behaviourally relevant totals:
    the central-buffer switch (2048 shared flits), the input-buffer
    switch at its minimal legal size (one max packet per input), and the
    input-buffer switch given the same 2048 flits of storage as the
    central buffer (256 flits per input, ~1.9 packets each).  If sharing
    is what matters — the claim of refs [36, 37] the paper builds on —
    the equal-storage IB switch must still trail the CB switch.
    """
    plan = plan_equal_storage_ablation(scale, num_hosts, loads, payload_flits)
    return reduce_equal_storage_ablation(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
