"""Command-line experiment runner.

Run one experiment (or all of them) and print the paper-style tables::

    python -m repro.experiments.runner --experiment e1 --scale quick
    python -m repro.experiments.runner --all --scale paper --jobs 8

``quick`` scale finishes in seconds per experiment; ``paper`` scale runs
the full sweeps recorded in EXPERIMENTS.md (minutes to hours).

``--jobs N`` fans the (seed x sweep-point x scheme) grid of each
experiment out over N worker processes (default: one per CPU).  Results
are bit-identical to ``--jobs 1``: per-run values depend only on the
config seed, and each experiment's reduce step folds them in declared
grid order, never in completion order.  Progress lines go to stderr so
table output stays clean.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict

from repro.experiments.ablations import (
    run_cb_bandwidth_ablation,
    run_encoding_ablation,
    run_equal_storage_ablation,
    run_replication_ablation,
    run_routing_mode_ablation,
)
from repro.experiments.bimodal import run_bimodal
from repro.experiments.common import PAPER, QUICK, ExperimentResult
from repro.experiments.cross_topology import run_cross_topology
from repro.experiments.degree_sweep import run_degree_sweep
from repro.experiments.extensions import (
    run_barrier_scaling,
    run_buffer_occupancy,
    run_hotspot,
)
from repro.experiments.length_sweep import run_length_sweep
from repro.experiments.multiple_multicast import run_multiple_multicast
from repro.experiments.parallel import (
    Stopwatch,
    default_jobs,
    stderr_progress,
)
from repro.experiments.parameters import run_parameters
from repro.experiments.system_size import run_system_size
from repro.experiments.unicast_baseline import run_unicast_baseline
from repro.farm import runtime as farm_runtime
from repro.obs import runtime as obs_runtime
from repro.obs.manifest import RunManifest
from repro.obs.runtime import ObsOptions
from repro.store import runtime as store_runtime

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "e1": run_multiple_multicast,
    "e2": run_degree_sweep,
    "e3": run_length_sweep,
    "e4": run_bimodal,
    "e5": run_system_size,
    "e6": run_unicast_baseline,
    "e7": run_parameters,
    "a1": run_cb_bandwidth_ablation,
    "a2": run_routing_mode_ablation,
    "a3": run_encoding_ablation,
    "a4": run_replication_ablation,
    "a5": run_equal_storage_ablation,
    "x1": run_barrier_scaling,
    "x2": run_hotspot,
    "x3": run_buffer_occupancy,
    "x4": run_cross_topology,
}

#: (x key, y key, series key) for experiments with chartable sweeps
CHARTS: Dict[str, tuple] = {
    "e1": ("m", "latency", "scheme"),
    "e2": ("degree", "latency", "scheme"),
    "e3": ("length", "latency", "scheme"),
    "e4": ("load", "unicast_latency", "scheme"),
    "e6": ("load", "latency", "scheme"),
    "a1": ("bandwidth", "latency", "scheme"),
    "a4": ("m", "latency", "replication"),
    "a5": ("load", "latency", "variant"),
    "x2": ("fraction", "latency", "scheme"),
}


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments.runner``."""
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS),
        help="one experiment id (see DESIGN.md)",
    )
    group.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="quick: seconds per experiment; paper: full sweeps",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per experiment grid (default: CPU count; "
        "1 = serial; output is identical either way)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a per-run progress line to stderr",
    )
    parser.add_argument(
        "--csv", action="store_true", help="also print CSV after each table"
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also print an ASCII chart for sweep experiments",
    )
    obs_group = parser.add_argument_group(
        "observability (off by default; tables are identical either way)"
    )
    obs_group.add_argument(
        "--metrics-out", metavar="FILE",
        help="append sampled metrics and run headers as JSONL; a run "
        "manifest is written next to it",
    )
    obs_group.add_argument(
        "--trace-out", metavar="FILE",
        help="stream per-flit trace events as JSONL (large!)",
    )
    obs_group.add_argument(
        "--sample-every", type=int, default=0, metavar="CYCLES",
        help="gauge sampling period in cycles "
        f"(default {obs_runtime.DEFAULT_SAMPLE_EVERY} when recording)",
    )
    obs_group.add_argument(
        "--profile-out", metavar="FILE",
        help="append per-run profiling digests (kernel attribution, "
        "worm phase latencies, link heatmap) as JSONL",
    )
    store_group = parser.add_argument_group(
        "result store (tables are bit-identical warm or cold)"
    )
    store_group.add_argument(
        "--store-dir", metavar="DIR",
        help="journal run results under DIR and answer repeated specs "
        f"from it (default: ${store_runtime.ENV_STORE_DIR} when set)",
    )
    store_group.add_argument(
        "--no-store", action="store_true",
        help=f"ignore ${store_runtime.ENV_STORE_DIR} and run without "
        "the result store",
    )
    store_group.add_argument(
        "--store-refresh", action="store_true",
        help="re-execute every spec and journal fresh results, "
        "shadowing stale entries",
    )
    farm_group = parser.add_argument_group(
        "run farm (tables are bit-identical on any backend)"
    )
    farm_group.add_argument(
        "--farm",
        choices=farm_runtime.FARM_KINDS,
        help="execute each experiment grid as a sharded campaign: "
        "'local' (multiprocessing workers), 'fleet' (independent "
        "worker subprocesses), 'serial' (one in-process worker)",
    )
    farm_group.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker/shard count for --farm (default: CPU count, "
        "capped at the grid size)",
    )
    farm_group.add_argument(
        "--farm-manifest", metavar="FILE",
        help="write the last campaign's merged manifest (per-worker "
        "provenance included) as JSON",
    )
    args = parser.parse_args(argv)

    scale = QUICK if args.scale == "quick" else PAPER
    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    names = sorted(EXPERIMENTS) if args.all else [args.experiment]

    recording = bool(
        args.metrics_out or args.trace_out or args.profile_out
    )
    if args.sample_every and not recording:
        parser.error(
            "--sample-every needs --metrics-out, --trace-out or "
            "--profile-out"
        )
    if recording:
        obs_runtime.configure(
            ObsOptions(
                metrics_out=args.metrics_out,
                trace_out=args.trace_out,
                sample_every=max(0, args.sample_every),
                profile_out=args.profile_out,
            )
        )

    if args.no_store and (args.store_dir or args.store_refresh):
        parser.error(
            "--no-store conflicts with --store-dir/--store-refresh"
        )
    store_dir = None
    if not args.no_store:
        store_dir = (
            Path(args.store_dir)
            if args.store_dir
            else store_runtime.store_dir_from_env()
        )
    if args.store_refresh and store_dir is None:
        parser.error(
            "--store-refresh needs --store-dir or "
            f"${store_runtime.ENV_STORE_DIR}"
        )
    if store_dir is not None:
        store_runtime.configure(
            store_runtime.open_session(
                store_dir, refresh=args.store_refresh
            )
        )

    if args.farm is None and (
        args.shards is not None or args.farm_manifest
    ):
        parser.error("--shards/--farm-manifest need --farm")
    if args.farm is not None:
        farm_runtime.configure(
            farm_runtime.open_farm(
                args.farm,
                shards=None if args.shards is None else max(1, args.shards),
            )
        )

    overall = Stopwatch()
    try:
        for name in names:
            progress = stderr_progress(name) if args.progress else None
            watch = Stopwatch()
            result = EXPERIMENTS[name](scale, jobs=jobs, progress=progress)
            elapsed = watch.elapsed()
            print(result.render())
            farm = farm_runtime.active_farm()
            if farm is not None:
                detail = f"farm={farm.kind}, shards={farm.shards or jobs}"
            else:
                detail = f"jobs={jobs}"
            print(
                f"[{name} finished in {elapsed:.1f}s at scale={scale.name}, "
                f"{detail}]"
            )
            if progress is not None and progress.outcomes:
                lanes = jobs if farm is None else (farm.shards or jobs)
                print(progress.summary(lanes).render(), file=sys.stderr)
            if args.chart and name in CHARTS:
                x_key, y_key, series_key = CHARTS[name]
                print()
                print(result.chart(x_key, y_key, series_key))
            if args.csv:
                print(result.table.to_csv())
            print()
        farm = farm_runtime.active_farm()
        if (
            args.farm_manifest
            and farm is not None
            and farm.last_result is not None
        ):
            farm.last_result.manifest(
                experiments=names, scale=scale.name
            ).write(args.farm_manifest)
            print(
                f"[campaign manifest: {args.farm_manifest}]",
                file=sys.stderr,
            )
    finally:
        obs_runtime.reset()
        store_runtime.reset()
        farm_runtime.reset()

    if recording:
        anchor = args.metrics_out or args.trace_out
        manifest_path = str(Path(anchor).with_suffix(".manifest.json"))
        RunManifest.collect(
            wall_seconds=round(overall.elapsed(), 3),
            jobs=jobs,
            experiments=names,
            scale=scale.name,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            sample_every=args.sample_every,
        ).write(manifest_path)
        print(f"[run manifest: {manifest_path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
