"""E7: the methodology / simulation-parameter table.

Prints the default parameter set (the paper's Table of simulation
parameters, reconstructed around the SP Switch) and cross-checks the
simulator's zero-load behaviour against the closed-form latency models —
the calibration step a simulation-methodology section reports.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.latency_model import unicast_zero_load
from repro.core.schemes import MulticastScheme
from repro.experiments.common import QUICK, ExperimentResult, Scale, base_config
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.network.builder import build_network
from repro.network.simulation import run_workload
from repro.traffic.multicast import SingleMulticast


def _run_calibration(num_hosts: int, max_cycles: int) -> Dict[str, float]:
    """Worker: one far multicast at zero load, simulator vs. model."""
    config = base_config(num_hosts)
    network = build_network(config.derived(seed=11))
    dests = [num_hosts - 1]
    workload = SingleMulticast(
        source=0, destinations=dests, payload_flits=32,
        scheme=MulticastScheme.HARDWARE,
    )
    run = run_workload(network, workload, max_cycles=max_cycles)
    (op,) = run.collector.completed_operations()
    bmin = network.topology_object
    hops = bmin.min_switch_hops(0, num_hosts - 1)
    model = unicast_zero_load(
        hops=hops,
        size_flits=network.unicast_header_flits() + 32,
        link_latency=config.link_latency,
        routing_delay=config.routing_delay,
        header_flits=network.unicast_header_flits(),
        send_overhead=config.sw_send_overhead,
    )
    return {"simulated": op.last_latency, "model": model}


def plan_parameters(
    scale: Scale = QUICK, num_hosts: int = 64
) -> ExecutionPlan:
    """Declare E7's single calibration run (the table itself is free)."""
    specs = [
        RunSpec(
            key=("calibration",),
            fn=_run_calibration,
            kwargs=dict(num_hosts=num_hosts, max_cycles=scale.max_cycles),
        )
    ]
    return ExecutionPlan("e7", specs, dict(num_hosts=num_hosts))


def reduce_parameters(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Emit the parameter table plus the zero-load calibration rows."""
    num_hosts = plan.meta["num_hosts"]
    config = base_config(num_hosts)
    table = Table(
        "E7: simulation parameters and zero-load calibration",
        ["parameter", "value"],
    )
    result = ExperimentResult("e7_parameters", table)

    rows = [
        ("hosts (N)", config.num_hosts),
        ("switch radix", 2 * config.arity),
        ("topology", f"{config.arity}-ary tree, "
                     f"{config._bmin_levels()} levels"),
        ("link latency [cycles]", config.link_latency),
        ("flit width [bits]", config.flit_payload_bits),
        ("central buffer [flits]", config.central_buffer_flits),
        ("chunk size [flits]", config.chunk_flits),
        ("per-input quota [chunks]",
         -(-config.max_packet_flits() // config.chunk_flits)),
        ("input FIFO depth [flits]", config.effective_input_fifo_depth()),
        ("input buffer (IB switch) [flits]",
         config.effective_input_buffer_flits()),
        ("routing delay [cycles]", config.routing_delay),
        ("max packet payload [flits]", config.max_packet_payload_flits),
        ("unicast header [flits]", 1),
        ("multicast header [flits]", config.max_header_flits()),
        ("software send overhead [cycles]", config.sw_send_overhead),
        ("software recv overhead [cycles]", config.sw_recv_overhead),
    ]
    for name, value in rows:
        table.add_row(name, str(value))
        result.rows.append({"parameter": name, "value": value})

    calibration = results[("calibration",)]
    table.add_row("zero-load far unicast, simulated [cycles]",
                  str(calibration["simulated"]))
    table.add_row("zero-load far unicast, model [cycles]",
                  str(calibration["model"]))
    result.rows.append(
        {"parameter": "zero_load_simulated", "value": calibration["simulated"]}
    )
    result.rows.append(
        {"parameter": "zero_load_model", "value": calibration["model"]}
    )
    return result


def run_parameters(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Emit the parameter table plus zero-load model-vs-simulator checks."""
    plan = plan_parameters(scale, num_hosts)
    return reduce_parameters(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
