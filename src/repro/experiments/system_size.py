"""E5: system-size scaling (16 / 64 / 256 hosts).

For each system size we run a broadcast and a quarter-system multicast.
Hardware multicast scales with the tree depth (log_a N extra switch
hops), while software multicast pays log2(d+1) phases — which grows with
the *destination count*, so the gap widens sharply with system size.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.traffic.multicast import SingleMulticast

DEFAULT_SIZES = (16, 64, 256)

#: (label, degree_fn) pairs defining the two workloads per system size
WORKLOADS = (
    ("broadcast", lambda n: n - 1),
    ("quarter", lambda n: max(2, n // 4)),
)


def plan_system_size(
    scale: Scale = QUICK,
    sizes: Sequence[int] = DEFAULT_SIZES,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExecutionPlan:
    """Declare E5's (size x workload x scheme x seed) grid."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    seeds = scale.seeds()
    specs = []
    for num_hosts in sizes:
        for label, degree_fn in WORKLOADS:
            degree = degree_fn(num_hosts)
            for scheme in schemes:
                for seed in seeds:
                    specs.append(
                        RunSpec(
                            key=(num_hosts, label, scheme.value, seed),
                            fn=simulate_summary,
                            kwargs=dict(
                                config=scheme.apply(
                                    base_config(num_hosts, seed=seed)
                                ),
                                workload_cls=SingleMulticast,
                                workload_kwargs=dict(
                                    source=seed % num_hosts,
                                    degree=degree,
                                    payload_flits=payload_flits,
                                    scheme=scheme.multicast_scheme,
                                ),
                                max_cycles=scale.max_cycles,
                            ),
                        )
                    )
    meta = dict(
        sizes=tuple(sizes),
        payload_flits=payload_flits,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("e5", specs, meta)


def reduce_system_size(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into E5's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    columns = ["N", "workload"]
    columns.extend(scheme.value for scheme in schemes)
    table = Table(
        f"E5: multicast latency vs. system size "
        f"({meta['payload_flits']}-flit payload) [cycles]",
        columns,
    )
    result = ExperimentResult("e5_system_size", table)
    for num_hosts in meta["sizes"]:
        for label, _ in WORKLOADS:
            cells = [num_hosts, label]
            for scheme in schemes:
                latency = mean(
                    [
                        results[
                            (num_hosts, label, scheme.value, seed)
                        ].op_last_latency.mean
                        for seed in meta["seeds"]
                    ]
                )
                cells.append(latency)
                result.rows.append(
                    {
                        "num_hosts": num_hosts,
                        "workload": label,
                        "scheme": scheme.value,
                        "latency": latency,
                    }
                )
            table.add_row(*cells)
    return result


def run_system_size(
    scale: Scale = QUICK,
    sizes: Sequence[int] = DEFAULT_SIZES,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run E5: broadcast and N/4-degree multicast at each system size."""
    plan = plan_system_size(scale, sizes, payload_flits, schemes)
    return reduce_system_size(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
