"""E5: system-size scaling (16 / 64 / 256 hosts).

For each system size we run a broadcast and a quarter-system multicast.
Hardware multicast scales with the tree depth (log_a N extra switch
hops), while software multicast pays log2(d+1) phases — which grows with
the *destination count*, so the gap widens sharply with system size.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.multicast import SingleMulticast

DEFAULT_SIZES = (16, 64, 256)


def run_system_size(
    scale: Scale = QUICK,
    sizes: Sequence[int] = DEFAULT_SIZES,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExperimentResult:
    """Run E5: broadcast and N/4-degree multicast at each system size."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    columns = ["N", "workload"]
    columns.extend(scheme.value for scheme in schemes)
    table = Table(
        f"E5: multicast latency vs. system size "
        f"({payload_flits}-flit payload) [cycles]",
        columns,
    )
    result = ExperimentResult("e5_system_size", table)
    for num_hosts in sizes:
        for label, degree in (
            ("broadcast", num_hosts - 1),
            ("quarter", max(2, num_hosts // 4)),
        ):
            cells = [num_hosts, label]
            for scheme in schemes:
                latencies = []
                for seed in scale.seeds():
                    config = scheme.apply(base_config(num_hosts, seed=seed))
                    workload = SingleMulticast(
                        source=seed % num_hosts,
                        degree=degree,
                        payload_flits=payload_flits,
                        scheme=scheme.multicast_scheme,
                    )
                    run = run_simulation(
                        config, workload, max_cycles=scale.max_cycles
                    )
                    latencies.append(run.op_last_latency.mean)
                latency = mean(latencies)
                cells.append(latency)
                result.rows.append(
                    {
                        "num_hosts": num_hosts,
                        "workload": label,
                        "scheme": scheme.value,
                        "latency": latency,
                    }
                )
            table.add_row(*cells)
    return result
