"""E6: pure-unicast comparison of the two buffer organisations.

Uniform random unicast traffic at a swept offered load.  This validates
the premise the paper inherits from refs [36, 37]: a dynamically shared
central buffer outperforms statically partitioned input buffers for
ordinary traffic too (input buffers suffer head-of-line blocking), which
is why enhancing the central-buffer switch — the more complex design —
is worth the trouble.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.flits.packet import TrafficClass
from repro.metrics.report import Table
from repro.traffic.unicast import UniformRandomUnicast

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def plan_unicast_baseline(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = DEFAULT_LOADS,
    payload_flits: int = 32,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExecutionPlan:
    """Declare E6's (load x scheme x seed) grid of independent runs."""
    schemes = (
        list(schemes)
        if schemes is not None
        else [Scheme.CB_HW, Scheme.IB_HW]
    )
    seeds = scale.seeds()
    specs = []
    for load in loads:
        for scheme in schemes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(load, scheme.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=scheme.apply(
                                base_config(num_hosts, seed=seed)
                            ),
                            workload_cls=UniformRandomUnicast,
                            workload_kwargs=dict(
                                load=load,
                                payload_flits=payload_flits,
                                warmup_cycles=scale.warmup_cycles,
                                measure_cycles=scale.measure_cycles,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        loads=tuple(loads),
        payload_flits=payload_flits,
        schemes=schemes,
        seeds=seeds,
        measure_cycles=scale.measure_cycles,
    )
    return ExecutionPlan("e6", specs, meta)


def reduce_unicast_baseline(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into E6's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    columns = ["load"]
    for scheme in schemes:
        columns.append(f"lat@{scheme.value}")
        columns.append(f"thr@{scheme.value}")
    table = Table(
        f"E6: uniform unicast (N={meta['num_hosts']}, "
        f"{meta['payload_flits']}-flit payload)"
        " — latency [cycles] and accepted throughput [flits/cycle/host]",
        columns,
    )
    result = ExperimentResult("e6_unicast_baseline", table)
    for load in meta["loads"]:
        cells = [load]
        for scheme in schemes:
            latencies, throughputs = [], []
            for seed in meta["seeds"]:
                summary = results[(load, scheme.value, seed)]
                if summary.unicast_latency.count:
                    latencies.append(summary.unicast_latency.mean)
                throughputs.append(
                    summary.throughput(
                        TrafficClass.UNICAST, meta["measure_cycles"]
                    )
                )
            latency = mean(latencies)
            throughput = mean(throughputs)
            cells.extend([latency, throughput])
            result.rows.append(
                {
                    "load": load,
                    "scheme": scheme.value,
                    "latency": latency,
                    "throughput": throughput,
                }
            )
        table.add_row(*cells)
    return result


def run_unicast_baseline(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = DEFAULT_LOADS,
    payload_flits: int = 32,
    schemes: Optional[Sequence[Scheme]] = None,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run E6; rows carry latency and throughput per (load, architecture)."""
    plan = plan_unicast_baseline(
        scale, num_hosts, loads, payload_flits, schemes
    )
    return reduce_unicast_baseline(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
