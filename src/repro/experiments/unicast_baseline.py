"""E6: pure-unicast comparison of the two buffer organisations.

Uniform random unicast traffic at a swept offered load.  This validates
the premise the paper inherits from refs [36, 37]: a dynamically shared
central buffer outperforms statically partitioned input buffers for
ordinary traffic too (input buffers suffer head-of-line blocking), which
is why enhancing the central-buffer switch — the more complex design —
is worth the trouble.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.flits.packet import TrafficClass
from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.unicast import UniformRandomUnicast

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def run_unicast_baseline(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    loads: Sequence[float] = DEFAULT_LOADS,
    payload_flits: int = 32,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExperimentResult:
    """Run E6; rows carry latency and throughput per (load, architecture)."""
    schemes = (
        list(schemes)
        if schemes is not None
        else [Scheme.CB_HW, Scheme.IB_HW]
    )
    columns = ["load"]
    for scheme in schemes:
        columns.append(f"lat@{scheme.value}")
        columns.append(f"thr@{scheme.value}")
    table = Table(
        f"E6: uniform unicast (N={num_hosts}, {payload_flits}-flit payload)"
        " — latency [cycles] and accepted throughput [flits/cycle/host]",
        columns,
    )
    result = ExperimentResult("e6_unicast_baseline", table)
    for load in loads:
        cells = [load]
        for scheme in schemes:
            latencies, throughputs = [], []
            for seed in scale.seeds():
                config = scheme.apply(base_config(num_hosts, seed=seed))
                workload = UniformRandomUnicast(
                    load=load,
                    payload_flits=payload_flits,
                    warmup_cycles=scale.warmup_cycles,
                    measure_cycles=scale.measure_cycles,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                if run.unicast_latency.count:
                    latencies.append(run.unicast_latency.mean)
                throughputs.append(
                    run.throughput(TrafficClass.UNICAST, scale.measure_cycles)
                )
            latency = mean(latencies)
            throughput = mean(throughputs)
            cells.extend([latency, throughput])
            result.rows.append(
                {
                    "load": load,
                    "scheme": scheme.value,
                    "latency": latency,
                    "throughput": throughput,
                }
            )
        table.add_row(*cells)
    return result
