"""Saturation-throughput measurement.

The classic summary number for an interconnect: the offered load beyond
which the network is effectively saturated.  Two criteria are combined,
as in the literature:

* **throughput** — the accepted rate falls clearly below the offered
  rate (or the run cannot drain within a generous budget);
* **latency knee** — mean latency exceeds a multiple (default 4x) of the
  low-load reference latency.  A full-bisection fat tree under uniform
  traffic can carry nearly 100% offered load, so the knee criterion is
  what distinguishes the organisations in practice.

:func:`find_saturation_load` bisects on offered load using short
open-loop runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.flits.packet import TrafficClass
from repro.network.config import SimulationConfig
from repro.network.simulation import run_simulation
from repro.traffic.unicast import UniformRandomUnicast


@dataclass(frozen=True)
class SaturationProbe:
    """One load point of a saturation search."""

    load: float
    accepted: float
    offered: float
    completed: bool
    latency: float

    @property
    def throughput_saturated(self) -> bool:
        """True when the network failed to carry the offered load.

        A run that cannot drain within its generous budget is saturated;
        otherwise the accepted rate must reach 85% of the offered rate
        (the slack absorbs Poisson sampling noise in short windows).
        """
        if not self.completed:
            return True
        return self.accepted < 0.85 * self.offered

    def saturated(
        self,
        reference_latency: Optional[float] = None,
        latency_factor: float = 4.0,
    ) -> bool:
        """Combined criterion; pass a low-load ``reference_latency`` to
        enable the latency-knee test."""
        if self.throughput_saturated:
            return True
        if reference_latency is not None and reference_latency > 0:
            return self.latency > latency_factor * reference_latency
        return False


def probe_load(
    config: SimulationConfig,
    load: float,
    payload_flits: int = 32,
    warmup_cycles: int = 500,
    measure_cycles: int = 3_000,
) -> SaturationProbe:
    """Measure accepted vs. offered throughput and latency at one load."""
    workload = UniformRandomUnicast(
        load=load,
        payload_flits=payload_flits,
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
    )
    budget = (warmup_cycles + measure_cycles) * 4
    result = run_simulation(config, workload, max_cycles=budget)
    accepted = result.throughput(TrafficClass.UNICAST, measure_cycles)
    header = 1  # unicast control flit
    offered = load * payload_flits / (payload_flits + header)
    latency = (
        result.unicast_latency.mean if result.unicast_latency.count else 0.0
    )
    return SaturationProbe(
        load=load,
        accepted=accepted,
        offered=offered,
        completed=result.completed,
        latency=latency,
    )


def find_saturation_load(
    config: SimulationConfig,
    payload_flits: int = 32,
    low: float = 0.05,
    high: float = 1.0,
    tolerance: float = 0.05,
    latency_factor: float = 4.0,
    warmup_cycles: int = 500,
    measure_cycles: int = 3_000,
) -> Tuple[float, List[SaturationProbe]]:
    """Bisect for the saturation load; returns (estimate, probes).

    The probe at ``low`` establishes the latency reference for the knee
    criterion.  The estimate is the midpoint of the final bracket; if
    even ``high`` is unsaturated it is ``high``, and if even ``low``
    saturates (by throughput) it is ``low``.
    """
    if not 0 < low < high <= 1.0:
        raise ValueError("need 0 < low < high <= 1.0")
    probes: List[SaturationProbe] = []

    def measure(load: float) -> SaturationProbe:
        probe = probe_load(
            config, load, payload_flits, warmup_cycles, measure_cycles
        )
        probes.append(probe)
        return probe

    reference = measure(low)
    if reference.throughput_saturated:
        return low, probes
    reference_latency = reference.latency

    def saturated(probe: SaturationProbe) -> bool:
        return probe.saturated(reference_latency, latency_factor)

    if not saturated(measure(high)):
        return high, probes
    good, bad = low, high
    while bad - good > tolerance:
        mid = (good + bad) / 2
        if saturated(measure(mid)):
            bad = mid
        else:
            good = mid
    return (good + bad) / 2, probes
