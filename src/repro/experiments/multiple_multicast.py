"""E1: multiple simultaneous multicasts (the paper's headline workload).

*m* hosts multicast at once to *d* random destinations each; we report
the mean last-arrival latency per operation for the three schemes as *m*
grows.  The paper's result: CB-HW stays lowest, IB-HW degrades faster as
concurrent worms contend for statically partitioned buffers, and SW is
several times slower throughout because each operation is log2(d+1)
serialized unicast phases with software start-ups.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
    simulate_summary,
)
from repro.experiments.parallel import (
    ExecutionPlan,
    Key,
    RunSpec,
    execute_plan,
)
from repro.metrics.report import Table
from repro.traffic.multicast import MultipleMulticastBurst

DEFAULT_CONCURRENCY = (1, 2, 4, 8, 16)


def plan_multiple_multicast(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    concurrency: Sequence[int] = DEFAULT_CONCURRENCY,
    degree: int = 8,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExecutionPlan:
    """Declare E1's (m x scheme x seed) grid of independent runs."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    seeds = scale.seeds()
    specs = []
    for m in concurrency:
        for scheme in schemes:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        key=(m, scheme.value, seed),
                        fn=simulate_summary,
                        kwargs=dict(
                            config=scheme.apply(
                                base_config(num_hosts, seed=seed)
                            ),
                            workload_cls=MultipleMulticastBurst,
                            workload_kwargs=dict(
                                num_multicasts=m,
                                degree=degree,
                                payload_flits=payload_flits,
                                scheme=scheme.multicast_scheme,
                            ),
                            max_cycles=scale.max_cycles,
                        ),
                    )
                )
    meta = dict(
        num_hosts=num_hosts,
        concurrency=tuple(concurrency),
        degree=degree,
        payload_flits=payload_flits,
        schemes=schemes,
        seeds=seeds,
    )
    return ExecutionPlan("e1", specs, meta)


def reduce_multiple_multicast(
    plan: ExecutionPlan, results: Dict[Key, object]
) -> ExperimentResult:
    """Fold per-run summaries into E1's table, in declared grid order."""
    meta = plan.meta
    schemes = meta["schemes"]
    table = Table(
        f"E1: multiple multicast (N={meta['num_hosts']}, "
        f"d={meta['degree']}, {meta['payload_flits']}-flit payload) "
        "— mean last-arrival latency [cycles]",
        ["m"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("e1_multiple_multicast", table)
    for m in meta["concurrency"]:
        cells = [m]
        for scheme in schemes:
            latency = mean(
                [
                    results[(m, scheme.value, seed)].op_last_latency.mean
                    for seed in meta["seeds"]
                ]
            )
            cells.append(latency)
            result.rows.append(
                {"m": m, "scheme": scheme.value, "latency": latency}
            )
        table.add_row(*cells)
    return result


def run_multiple_multicast(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    concurrency: Sequence[int] = DEFAULT_CONCURRENCY,
    degree: int = 8,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
    jobs: Optional[int] = 1,
    progress=None,
) -> ExperimentResult:
    """Run E1 and return per-(m, scheme) mean last-arrival latencies."""
    plan = plan_multiple_multicast(
        scale, num_hosts, concurrency, degree, payload_flits, schemes
    )
    return reduce_multiple_multicast(
        plan, execute_plan(plan, jobs=jobs, progress=progress)
    )
