"""E1: multiple simultaneous multicasts (the paper's headline workload).

*m* hosts multicast at once to *d* random destinations each; we report
the mean last-arrival latency per operation for the three schemes as *m*
grows.  The paper's result: CB-HW stays lowest, IB-HW degrades faster as
concurrent worms contend for statically partitioned buffers, and SW is
several times slower throughout because each operation is log2(d+1)
serialized unicast phases with software start-ups.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    QUICK,
    ExperimentResult,
    Scale,
    Scheme,
    base_config,
    mean,
)
from repro.metrics.report import Table
from repro.network.simulation import run_simulation
from repro.traffic.multicast import MultipleMulticastBurst

DEFAULT_CONCURRENCY = (1, 2, 4, 8, 16)


def run_multiple_multicast(
    scale: Scale = QUICK,
    num_hosts: int = 64,
    concurrency: Sequence[int] = DEFAULT_CONCURRENCY,
    degree: int = 8,
    payload_flits: int = 64,
    schemes: Optional[Sequence[Scheme]] = None,
) -> ExperimentResult:
    """Run E1 and return per-(m, scheme) mean last-arrival latencies."""
    schemes = list(schemes) if schemes is not None else list(Scheme)
    table = Table(
        f"E1: multiple multicast (N={num_hosts}, d={degree}, "
        f"{payload_flits}-flit payload) — mean last-arrival latency [cycles]",
        ["m"] + [scheme.value for scheme in schemes],
    )
    result = ExperimentResult("e1_multiple_multicast", table)
    for m in concurrency:
        cells = [m]
        for scheme in schemes:
            latencies = []
            for seed in scale.seeds():
                config = scheme.apply(base_config(num_hosts, seed=seed))
                workload = MultipleMulticastBurst(
                    num_multicasts=m,
                    degree=degree,
                    payload_flits=payload_flits,
                    scheme=scheme.multicast_scheme,
                )
                run = run_simulation(
                    config, workload, max_cycles=scale.max_cycles
                )
                latencies.append(run.op_last_latency.mean)
            latency = mean(latencies)
            cells.append(latency)
            result.rows.append(
                {"m": m, "scheme": scheme.value, "latency": latency}
            )
        table.add_row(*cells)
    return result
