"""Pure-functional model of multidestination worm replication.

Given a topology and its routing tables, :func:`trace_worm` walks the
replication tree of a worm *without simulating time*: at every switch it
runs the same reachability decode the flit-level switches use and follows
each branch.  The result — reached hosts, traversed links, branch depth —
is the ground truth for:

* property tests (the simulator must deliver to exactly the traced set),
* analytic latency models (the deepest branch bounds zero-load latency),
* link-contention analysis of concurrent multicasts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, Packet, TrafficClass
from repro.flits.worm import Worm
from repro.routing.base import (
    MulticastRoutingMode,
    UpPortPolicy,
    UpSelector,
    make_up_selector,
)
from repro.routing.table import SwitchRoutingTable
from repro.topology.graph import Endpoint, NodeKind, Topology


@dataclass
class WormTraversal:
    """Everything a worm touches on its way to its destinations."""

    #: hosts the worm is delivered to
    delivered: DestinationSet
    #: every switch output port the worm crosses, in visit order
    links: List[Tuple[int, int]] = field(default_factory=list)
    #: switches visited (with multiplicity, in visit order)
    switches: List[int] = field(default_factory=list)
    #: switch count along the deepest branch (source NI to slowest host)
    max_depth: int = 0

    def link_load(self) -> Dict[Tuple[int, int], int]:
        """Traversal count per (switch, output port) link."""
        load: Dict[Tuple[int, int], int] = {}
        for link in self.links:
            load[link] = load.get(link, 0) + 1
        return load


def _phantom_worm(
    source: int, destinations: DestinationSet
) -> Worm:
    """A timeless worm carrying only routing-relevant state."""
    message = Message(
        message_id=-1,
        source=source,
        destinations=destinations,
        payload_flits=1,
        traffic_class=TrafficClass.MULTICAST,
        created_cycle=0,
    )
    packet = Packet(
        packet_id=-1,
        message=message,
        destinations=destinations,
        header_flits=1,
        payload_flits=1,
    )
    return Worm.root(packet)


def trace_worm(
    topology: Topology,
    tables: List[SwitchRoutingTable],
    source: int,
    destinations: DestinationSet,
    mode: MulticastRoutingMode = MulticastRoutingMode.TURNAROUND,
    up_selector: Optional[UpSelector] = None,
) -> WormTraversal:
    """Replicate a worm through the routing tables and report its tree.

    ``up_selector`` defaults to the deterministic policy, matching the
    simulator's default so traced paths and simulated paths coincide.
    """
    if up_selector is None:
        up_selector = make_up_selector(UpPortPolicy.DETERMINISTIC)
    result = WormTraversal(
        delivered=DestinationSet.empty(destinations.universe)
    )
    first_switch = topology.host_attachment(source).node
    root = _phantom_worm(source, destinations)
    stack: List[Tuple[int, Worm, int]] = [(first_switch, root, 1)]
    guard = 0
    limit = 16 * max(len(tables), 1) * max(len(destinations), 1) + 64
    while stack:
        guard += 1
        if guard > limit:
            raise RoutingError(
                "worm replication did not terminate; routing tables are "
                "likely cyclic"
            )
        switch, worm, depth = stack.pop()
        result.switches.append(switch)
        result.max_depth = max(result.max_depth, depth)
        table = tables[switch]
        for request in table.compute_requests(
            worm, mode=mode, up_selector=up_selector, self_check=True
        ):
            result.links.append((switch, request.port))
            branch = worm.branch(request.destinations, request.descending)
            host = table.delivers_to(request.port)
            if host is not None:
                if not branch.destinations.is_singleton():
                    raise RoutingError(
                        f"host port {request.port} of switch {switch} "
                        f"received a multi-destination branch"
                    )
                result.delivered = result.delivered | branch.destinations
                continue
            peer = topology.neighbor_of(Endpoint.switch(switch, request.port))
            if peer is None or peer.kind != NodeKind.SWITCH:
                raise RoutingError(
                    f"switch {switch} port {request.port} forwards into "
                    f"nothing routable"
                )
            stack.append((peer.node, branch, depth + 1))
    return result
