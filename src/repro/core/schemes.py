"""The architectural vocabulary of the paper's design space."""

from __future__ import annotations

import enum


class SwitchArchitecture(enum.Enum):
    """Which buffer organisation the switches use (paper sections 4-5)."""

    #: SP2-style shared central buffer with output queuing (section 4)
    CENTRAL_BUFFER = "central_buffer"
    #: statically partitioned whole-packet input buffers (section 5)
    INPUT_BUFFER = "input_buffer"


class MulticastScheme(enum.Enum):
    """How collective operations are implemented."""

    #: multidestination worms replicated inside the switches
    HARDWARE = "hardware"
    #: binomial-tree unicasts driven by host software (the baseline)
    SOFTWARE = "software"
