"""Closed-form zero-load latency models.

These reproduce the back-of-envelope arithmetic the paper's discussion
rests on: a hardware multicast pays the pipeline once (its deepest branch
behaves like one unicast), while a binomial software multicast pays
``ceil(log2(d+1))`` serialized phases, each with fresh software start-up
overhead.  The flit-level simulator should approach these numbers at zero
load; tests assert agreement within a small per-hop tolerance.

All times are in cycles; ``hops`` counts switches on the path.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.host.software_multicast import binomial_schedule


def unicast_zero_load(
    hops: int,
    size_flits: int,
    link_latency: int = 1,
    routing_delay: int = 2,
    header_flits: int = 1,
    send_overhead: int = 0,
) -> int:
    """Tail-arrival time of one unblocked unicast packet.

    The head crosses ``hops + 1`` links (NI to first switch, then between
    switches, then to the destination NI) and is held at each switch until
    its header has arrived and the routing decision is made; the tail
    follows the head by ``size_flits - 1`` cycles on a bubble-free path.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    head = (hops + 1) * link_latency + hops * (header_flits - 1 + routing_delay)
    return send_overhead + head + size_flits - 1


def hardware_multicast_zero_load(
    max_hops: int,
    size_flits: int,
    link_latency: int = 1,
    routing_delay: int = 2,
    header_flits: int = 1,
    send_overhead: int = 0,
) -> int:
    """Last-arrival latency of one unblocked multidestination worm.

    With asynchronous replication and no contention every branch
    progresses independently, so the operation finishes when the deepest
    branch (``max_hops`` switches) delivers — one unicast-shaped pipeline,
    regardless of the number of destinations.
    """
    return unicast_zero_load(
        max_hops, size_flits, link_latency, routing_delay, header_flits,
        send_overhead,
    )


def software_multicast_zero_load(
    source: int,
    destinations: Sequence[int],
    hops_between: Dict[tuple, int],
    size_flits: int,
    link_latency: int = 1,
    routing_delay: int = 2,
    header_flits: int = 1,
    send_overhead: int = 0,
    recv_overhead: int = 0,
) -> int:
    """Last-arrival latency of a binomial software multicast at zero load.

    Walks the same binomial schedule the runtime engine uses.  Each host
    serializes its sends (``send_overhead`` apart) and pays
    ``recv_overhead`` before its first forward; every hop then behaves as
    an unblocked unicast.

    ``hops_between`` maps ``(src, dst)`` to switch hops (e.g. from
    :meth:`repro.topology.bmin.BidirectionalMin.min_switch_hops`).
    """
    schedule = binomial_schedule(source, destinations)
    arrival: Dict[int, int] = {source: 0}
    # Children lists are in send order; process hosts in arrival order.
    frontier = [source]
    while frontier:
        frontier.sort(key=lambda h: arrival[h])
        host = frontier.pop(0)
        base = arrival[host]
        if host != source:
            base += recv_overhead
        for index, child in enumerate(schedule.get(host, [])):
            inject_ready = base + (index + 1) * send_overhead
            wire = unicast_zero_load(
                hops_between[(host, child)],
                size_flits,
                link_latency,
                routing_delay,
                header_flits,
                send_overhead=0,
            )
            arrival[child] = inject_ready + wire - 0
            frontier.append(child)
    return max(arrival[d] for d in destinations)


def software_multicast_phase_count(num_destinations: int) -> int:
    """Communication phases of the binomial scheme: ceil(log2(d + 1))."""
    if num_destinations < 0:
        raise ValueError("num_destinations must be non-negative")
    return math.ceil(math.log2(num_destinations + 1)) if num_destinations else 0
