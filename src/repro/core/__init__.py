"""The paper's primary contribution, as a topology-independent core.

This package holds the pieces that are *the idea* of the paper rather
than simulator plumbing:

* the scheme/architecture vocabulary (:class:`SwitchArchitecture`,
  :class:`MulticastScheme`),
* a pure-functional model of multidestination worm replication
  (:mod:`repro.core.path_model`) that predicts, without simulating time,
  exactly which links a worm traverses and which hosts it reaches —
  used both by analysis code and by property tests that cross-check the
  flit-level simulator, and
* closed-form zero-load latency models (:mod:`repro.core.latency_model`)
  for hardware and software multicast, used to sanity-check simulation
  results and to reason about the crossovers the paper reports.
"""

from repro.core.schemes import MulticastScheme, SwitchArchitecture
from repro.core.path_model import WormTraversal, trace_worm
from repro.core.latency_model import (
    hardware_multicast_zero_load,
    software_multicast_zero_load,
    unicast_zero_load,
)
from repro.core.contention import (
    binomial_phases,
    flow_link_load,
    multicast_link_load,
    phase_conflicts,
    unicast_links,
)

__all__ = [
    "MulticastScheme",
    "SwitchArchitecture",
    "WormTraversal",
    "binomial_phases",
    "flow_link_load",
    "hardware_multicast_zero_load",
    "multicast_link_load",
    "phase_conflicts",
    "software_multicast_zero_load",
    "trace_worm",
    "unicast_links",
    "unicast_zero_load",
]
