"""Static link-contention analysis of collective schedules.

The U-MIN software multicast (ref [38]) is defined by its claim: the
unicasts of one phase use disjoint links, so phases never self-contend.
This module checks such claims *analytically*: it reconstructs the phase
structure of a binomial schedule, traces each unicast's path with the
deterministic router, and counts per-phase traversals of every directed
link.  The same machinery measures the static footprint of concurrent
hardware multicasts (how many worm trees would cross each link).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.path_model import trace_worm
from repro.flits.destset import DestinationSet
from repro.host.software_multicast import binomial_schedule
from repro.routing.base import (
    MulticastRoutingMode,
    UpPortPolicy,
    UpSelector,
    make_up_selector,
)
from repro.routing.table import SwitchRoutingTable
from repro.topology.graph import Topology

Link = Tuple[int, int]
Flow = Tuple[int, int]


def binomial_phases(
    source: int, destinations: Sequence[int]
) -> List[List[Flow]]:
    """The (sender, receiver) pairs of each binomial phase, in order.

    Phase *k* contains every send a host issues as its *k*-th serialized
    action after being informed (the root counts from phase 1); order
    within a phase is traversal order, not significant.

    >>> [sorted(phase) for phase in binomial_phases(0, [1, 2, 3])]
    [[(0, 2)], [(0, 1), (2, 3)]]
    """
    schedule = binomial_schedule(source, destinations)
    phases: Dict[int, List[Flow]] = {}

    def walk(host: int, informed_phase: int) -> None:
        for index, child in enumerate(schedule.get(host, [])):
            phase = informed_phase + index + 1
            phases.setdefault(phase, []).append((host, child))
            walk(child, phase)

    walk(source, 0)
    return [phases[k] for k in sorted(phases)]


def unicast_links(
    topology: Topology,
    tables: List[SwitchRoutingTable],
    source: int,
    destination: int,
    up_selector: Optional[UpSelector] = None,
) -> List[Link]:
    """Every (switch, output port) a unicast crosses, deterministically."""
    if up_selector is None:
        up_selector = make_up_selector(UpPortPolicy.DETERMINISTIC)
    traversal = trace_worm(
        topology,
        tables,
        source,
        DestinationSet.single(tables[0].num_hosts, destination),
        mode=MulticastRoutingMode.TURNAROUND,
        up_selector=up_selector,
    )
    return traversal.links


def flow_link_load(
    topology: Topology,
    tables: List[SwitchRoutingTable],
    flows: Sequence[Flow],
    up_selector: Optional[UpSelector] = None,
) -> Dict[Link, int]:
    """Traversal count per directed link for simultaneous unicasts."""
    load: Dict[Link, int] = {}
    for source, destination in flows:
        for link in unicast_links(
            topology, tables, source, destination, up_selector
        ):
            load[link] = load.get(link, 0) + 1
    return load


def phase_conflicts(
    topology: Topology,
    tables: List[SwitchRoutingTable],
    source: int,
    destinations: Sequence[int],
    up_selector: Optional[UpSelector] = None,
) -> List[int]:
    """Maximum per-link traversal count of each binomial phase.

    A value of 1 everywhere means the schedule is self-contention-free
    (the U-MIN property); larger values count flows that would share a
    link within one phase.
    """
    out = []
    for flows in binomial_phases(source, destinations):
        load = flow_link_load(topology, tables, flows, up_selector)
        out.append(max(load.values()) if load else 0)
    return out


def multicast_link_load(
    topology: Topology,
    tables: List[SwitchRoutingTable],
    operations: Sequence[Tuple[int, Sequence[int]]],
    mode: MulticastRoutingMode = MulticastRoutingMode.TURNAROUND,
    up_selector: Optional[UpSelector] = None,
) -> Dict[Link, int]:
    """Static link footprint of concurrent hardware multicasts.

    ``operations`` is a list of (source, destination ids).  Each worm
    crosses every link of its replication tree exactly once, so the
    returned counts are the number of worms over each link — a proxy for
    where concurrent multicasts will queue.
    """
    if up_selector is None:
        up_selector = make_up_selector(UpPortPolicy.DETERMINISTIC)
    universe = tables[0].num_hosts
    load: Dict[Link, int] = {}
    for source, ids in operations:
        traversal = trace_worm(
            topology,
            tables,
            source,
            DestinationSet.from_ids(universe, ids),
            mode=mode,
            up_selector=up_selector,
        )
        for link in traversal.links:
            load[link] = load.get(link, 0) + 1
    return load
