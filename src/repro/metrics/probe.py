"""Post-run network probes: buffer occupancy and link utilisation.

The switches already keep continuous, time-weighted occupancy accounts
(the central-buffer pool) and per-link flit counters, so these probes
aggregate after a run rather than sampling during it.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.switches.central_buffer import CentralBufferSwitch
from repro.topology.bmin import BidirectionalMin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.builder import Network


def central_buffer_occupancy(network: "Network") -> Dict[str, float]:
    """Mean and peak central-buffer occupancy, averaged over switches.

    Values are in chunks; only meaningful for central-buffer networks.
    """
    now = network.sim.now
    switches = [
        s for s in network.switches if isinstance(s, CentralBufferSwitch)
    ]
    if not switches:
        return {"mean_chunks": 0.0, "peak_chunks": 0.0}
    means = [s.pool.occupancy.average(now) for s in switches]
    peaks = [s.pool.occupancy.peak for s in switches]
    return {
        "mean_chunks": sum(means) / len(means),
        "peak_chunks": max(peaks),
    }


def central_buffer_occupancy_by_level(
    network: "Network",
) -> Dict[int, float]:
    """Mean central-buffer occupancy per BMIN level (chunks).

    Requires a BMIN topology; the leaf level is 0.
    """
    bmin = network.topology_object
    if not isinstance(bmin, BidirectionalMin):
        raise TypeError("per-level occupancy needs a BMIN topology")
    now = network.sim.now
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for switch_id, switch in enumerate(network.switches):
        if not isinstance(switch, CentralBufferSwitch):
            raise TypeError("per-level occupancy needs central-buffer switches")
        level = bmin.switch_level(switch_id)
        sums[level] = sums.get(level, 0.0) + switch.pool.occupancy.average(now)
        counts[level] = counts.get(level, 0) + 1
    return {level: sums[level] / counts[level] for level in sorted(sums)}


def link_utilisation(network: "Network", elapsed_cycles: int) -> Dict[str, float]:
    """Mean and peak utilisation over all switch-side links.

    Utilisation is flits sent divided by elapsed cycles (1.0 = a link
    busy every cycle).  Counts include warm-up traffic; use long runs or
    treat these as relative indicators.
    """
    if elapsed_cycles <= 0 or not network.links:
        return {"mean": 0.0, "peak": 0.0}
    rates = [
        link.flits_sent / elapsed_cycles for link in network.links
    ]
    return {
        "mean": sum(rates) / len(rates),
        "peak": max(rates),
    }
