"""Plain-text tables for experiment and benchmark output.

The benchmark harness prints the same rows the paper's figures plot;
these helpers keep that output aligned and CSV-exportable without any
plotting dependency.
"""

from __future__ import annotations

from typing import IO, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


class Table:
    """A titled table of formatted rows."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        """Append one row; numbers are formatted compactly."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        """The table as aligned plain text."""
        return format_table(self.title, self.columns, self.rows)

    def to_csv(self) -> str:
        """The table as CSV (no quoting; cells contain no commas)."""
        lines = [",".join(self.columns)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def write(self, stream: Optional[IO[str]] = None) -> None:
        """Print the rendered table (to stdout by default)."""
        text = self.render()
        if stream is None:
            print(text)
        else:
            stream.write(text + "\n")


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e12:
            return str(int(cell))
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render aligned plain text with a title rule."""
    widths = [len(col) for col in columns]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
