"""Metric collection and report formatting."""

from repro.metrics.collectors import (
    ClassStats,
    MetricsCollector,
    Operation,
)
from repro.metrics.report import Table, format_table

__all__ = [
    "ClassStats",
    "MetricsCollector",
    "Operation",
    "Table",
    "format_table",
]
