"""Latency, throughput and collective-operation metrics.

Latency definitions follow the paper (and Nupairoj/Ni, ref [24]):

* *message latency* is measured per delivery, from the cycle the workload
  generated the message (host queueing and software overheads included)
  to the cycle the tail flit reaches the destination NI;
* *multicast latency* of an operation is primarily the latency of the
  **last** received copy (metric (a) of ref [24], the one the paper
  argues matters), with the average over destinations (metric (b)) also
  recorded.

Sampling is windowed: only messages/operations *created* inside
``[sample_start, sample_end)`` contribute, so warm-up and drain
transients can be excluded in steady-state experiments.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, Packet, TrafficClass
from repro.sim.stats import Histogram, RunningStats


class ClassStats:
    """Per-traffic-class delivery statistics."""

    def __init__(self) -> None:
        self.latency = RunningStats()
        self.latency_histogram = Histogram(bin_width=8.0)
        self.deliveries = 0
        self.payload_flits = 0

    def record(self, latency: float, payload_flits: int) -> None:
        """Record one in-window delivery."""
        self.latency.add(latency)
        self.latency_histogram.add(latency)
        self.deliveries += 1
        self.payload_flits += payload_flits


class Operation:
    """One collective operation (multicast), however implemented."""

    def __init__(
        self,
        op_id: int,
        source: int,
        destinations: DestinationSet,
        payload_flits: int,
        scheme: str,
        created_cycle: int,
    ) -> None:
        self.op_id = op_id
        self.source = source
        self.destinations = destinations
        self.payload_flits = payload_flits
        self.scheme = scheme
        self.created_cycle = created_cycle
        self.arrival_cycles: Dict[int, int] = {}
        self.completed_cycle: Optional[int] = None

    def record_arrival(self, host: int, now: int) -> bool:
        """Note delivery of the operation's payload at ``host``.

        Returns True when this arrival completed the operation.
        """
        if host not in self.destinations:
            raise ProtocolError(
                f"operation {self.op_id}: arrival at non-member host {host}"
            )
        if host in self.arrival_cycles:
            raise ProtocolError(
                f"operation {self.op_id}: duplicate arrival at host {host}"
            )
        self.arrival_cycles[host] = now
        if len(self.arrival_cycles) == len(self.destinations):
            self.completed_cycle = now
            return True
        return False

    @property
    def last_latency(self) -> Optional[int]:
        """Latency of the last received copy (the paper's metric)."""
        if self.completed_cycle is None:
            return None
        return self.completed_cycle - self.created_cycle

    @property
    def average_latency(self) -> Optional[float]:
        """Mean per-destination latency (metric (b) of ref [24])."""
        if self.completed_cycle is None:
            return None
        total = sum(self.arrival_cycles.values())
        return total / len(self.arrival_cycles) - self.created_cycle

    @property
    def arrival_skew(self) -> Optional[int]:
        """Spread between the first and last arrival.

        A hardware worm's branches arrive nearly together; a software
        multicast's phases stagger arrivals — this is the fairness
        dimension barrier-style uses care about."""
        if self.completed_cycle is None:
            return None
        return self.completed_cycle - min(self.arrival_cycles.values())


class _MessageProgress:
    """Per-destination packet counting for one message."""

    __slots__ = ("message", "expected_packets", "remaining")

    def __init__(self, message: Message, expected_packets: int) -> None:
        self.message = message
        self.expected_packets = expected_packets
        self.remaining = {
            host: expected_packets for host in message.destinations
        }


class MetricsCollector:
    """Central id allocation, delivery accounting and statistics."""

    def __init__(self, num_hosts: int) -> None:
        self.num_hosts = num_hosts
        self._message_ids = itertools.count()
        self._packet_ids = itertools.count()
        self._op_ids = itertools.count()
        self._progress: Dict[int, _MessageProgress] = {}
        self._operations: Dict[int, Operation] = {}
        self.classes: Dict[TrafficClass, ClassStats] = {
            tc: ClassStats() for tc in TrafficClass
        }
        self.op_last_latency = RunningStats()
        self.op_average_latency = RunningStats()
        self.sample_start = 0
        self.sample_end = math.inf
        self.messages_created = 0
        self.operations_created = 0

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------
    def new_message_id(self) -> int:
        """Allocate the next message id."""
        return next(self._message_ids)

    def new_packet_id(self) -> int:
        """Allocate the next packet id."""
        return next(self._packet_ids)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def set_sample_window(self, start: int, end: float = math.inf) -> None:
        """Only messages/operations created in [start, end) are sampled."""
        self.sample_start = start
        self.sample_end = end

    def _in_window(self, created_cycle: int) -> bool:
        return self.sample_start <= created_cycle < self.sample_end

    def register_message(self, message: Message, expected_packets: int) -> None:
        """Track a message until it is delivered at every destination."""
        if message.message_id in self._progress:
            raise ProtocolError(
                f"message {message.message_id} registered twice"
            )
        self._progress[message.message_id] = _MessageProgress(
            message, expected_packets
        )
        self.messages_created += 1

    def register_operation(
        self,
        source: int,
        destinations: DestinationSet,
        payload_flits: int,
        scheme: str,
        created_cycle: int,
    ) -> Operation:
        """Create and track a multicast operation."""
        operation = Operation(
            op_id=next(self._op_ids),
            source=source,
            destinations=destinations,
            payload_flits=payload_flits,
            scheme=scheme,
            created_cycle=created_cycle,
        )
        self._operations[operation.op_id] = operation
        self.operations_created += 1
        return operation

    def operation(self, op_id: int) -> Optional[Operation]:
        """Look up a tracked operation."""
        return self._operations.get(op_id)

    # ------------------------------------------------------------------
    # delivery accounting (called by host nodes)
    # ------------------------------------------------------------------
    def packet_delivered(self, packet: Packet, host: int, now: int) -> bool:
        """Record a packet's arrival; True when its message completed at
        ``host`` (all packets of the message received there)."""
        progress = self._progress.get(packet.message.message_id)
        if progress is None:
            raise ProtocolError(
                f"packet {packet.packet_id} of unregistered message "
                f"{packet.message.message_id}"
            )
        remaining = progress.remaining.get(host)
        if remaining is None or remaining <= 0:
            raise ProtocolError(
                f"message {packet.message.message_id}: unexpected packet "
                f"at host {host}"
            )
        progress.remaining[host] = remaining - 1
        if remaining - 1 > 0:
            return False
        self._message_delivered(progress, host, now)
        return True

    def _message_delivered(
        self, progress: _MessageProgress, host: int, now: int
    ) -> None:
        message = progress.message
        if self._in_window(message.created_cycle):
            self.classes[message.traffic_class].record(
                now - message.created_cycle, message.payload_flits
            )
        if message.op_id is not None:
            operation = self._operations.get(message.op_id)
            if operation is not None and host in operation.destinations:
                finished = operation.record_arrival(host, now)
                if finished and self._in_window(operation.created_cycle):
                    self.op_last_latency.add(operation.last_latency)
                    self.op_average_latency.add(operation.average_latency)
        if all(count == 0 for count in progress.remaining.values()):
            del self._progress[message.message_id]

    # ------------------------------------------------------------------
    # completion queries (used as run predicates)
    # ------------------------------------------------------------------
    @property
    def outstanding_messages(self) -> int:
        """Messages not yet delivered at every destination."""
        return len(self._progress)

    @property
    def outstanding_operations(self) -> int:
        """Operations not yet completed."""
        return sum(
            1 for op in self._operations.values()
            if op.completed_cycle is None
        )

    def completed_operations(self) -> List[Operation]:
        """Every finished operation, in id order."""
        return [
            op for op in sorted(self._operations.values(),
                                key=lambda o: o.op_id)
            if op.completed_cycle is not None
        ]

    def throughput_flits_per_cycle(
        self, traffic_class: TrafficClass, elapsed_cycles: int
    ) -> float:
        """Delivered payload flits per cycle for one class (network-wide)."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.classes[traffic_class].payload_flits / elapsed_cycles
