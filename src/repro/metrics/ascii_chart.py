"""Plain-text charts for experiment output.

The benchmark harness prints tables; for latency-vs-load style series a
small ASCII chart makes the knee visible at a glance without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

_MARKS = "*o+x#@%&"


def render_chart(
    series: Dict[str, Series],
    width: int = 56,
    height: int = 14,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Each named series gets its own mark; axes are scaled to the joint
    data range and annotated with min/max.  Intended for monotone
    experiment sweeps (a handful of points per series), not dense data.
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("need at least one non-empty series")
    if width < 10 or height < 4:
        raise ValueError("chart too small to draw")

    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for index, (name, points) in enumerate(sorted(series.items())):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in points:
            column = round((x - x_low) / x_span * (width - 1))
            row = round((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(pad)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * pad} +{'-' * width}"
    lines.append(axis)
    x_line = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(f"{' ' * pad}  {x_line}")
    if x_label:
        lines.append(f"{' ' * pad}  {x_label.center(width)}")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(f"{' ' * pad}  [{legend}]")
    return "\n".join(lines)
