"""Reliable multicast: ACKs, timeouts, and straggler retransmission.

The authors' follow-up (ref [34], "A Reliable Hardware Barrier
Synchronization Scheme") adds end-to-end reliability on top of
multidestination worms.  This module implements the host-level half of
that idea for data multicast:

* the source multicasts the payload and starts a timer;
* every destination acknowledges with a small unicast;
* on timeout, the source retransmits — as **one multidestination worm
  addressed to exactly the unacknowledged subset**, the key economy the
  mechanism enables (a unicast-based protocol would re-send per
  straggler).

Losses are injected at the receiving host (a configurable drop
probability models corrupted receipt, e.g. CRC failure at the adapter),
so the network invariants stay intact while the protocol faces real
loss.  With the drop probability at zero the protocol completes in one
round and adds only the ACK traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, TrafficClass
from repro.host.node import HostNode


class ReliableMulticastOperation:
    """One reliable multicast with its delivery state."""

    def __init__(
        self,
        op_id: int,
        source: int,
        destinations: Sequence[int],
        payload_flits: int,
    ) -> None:
        if not destinations:
            raise ConfigurationError("need at least one destination")
        self.op_id = op_id
        self.source = source
        self.destinations = sorted(destinations)
        self.payload_flits = payload_flits
        self.started_cycle: Optional[int] = None
        self.acked: Dict[int, int] = {}
        self.delivered: Dict[int, int] = {}
        self.rounds = 0
        self.drops = 0
        self.completed_cycle: Optional[int] = None

    @property
    def complete(self) -> bool:
        """True when every destination has acknowledged."""
        return self.completed_cycle is not None

    @property
    def missing(self) -> Sequence[int]:
        """Destinations that have not acknowledged yet."""
        return [d for d in self.destinations if d not in self.acked]

    @property
    def last_latency(self) -> Optional[int]:
        """Start to the last acknowledgement at the source."""
        if self.completed_cycle is None or self.started_cycle is None:
            return None
        return self.completed_cycle - self.started_cycle


class ReliableMulticastEngine:
    """Drives ACK/retransmit multicast over a network's host nodes.

    Parameters
    ----------
    nodes:
        The network's host nodes.
    drop_probability:
        Per-delivery probability that a destination's copy is discarded
        (models receive-side corruption); drawn from the network's seeded
        RNG, so runs replay exactly.
    timeout_cycles:
        How long the source waits for ACKs before retransmitting to the
        missing subset.
    max_rounds:
        Give-up bound; exceeded only if loss is persistent.
    """

    DATA = "rmc_data"
    ACK = "rmc_ack"

    def __init__(
        self,
        nodes: Sequence[HostNode],
        drop_probability: float = 0.0,
        timeout_cycles: int = 600,
        max_rounds: int = 20,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError("drop_probability must be in [0, 1)")
        if timeout_cycles < 1:
            raise ConfigurationError("timeout_cycles must be >= 1")
        self.nodes = list(nodes)
        self.drop_probability = drop_probability
        self.timeout_cycles = timeout_cycles
        self.max_rounds = max_rounds
        self._operations: Dict[int, ReliableMulticastOperation] = {}
        self._next_id = 0
        self._rng = self.nodes[0].sim.rng.stream("reliable_multicast.loss")
        for node in self.nodes:
            node.add_delivery_listener(self._on_delivery)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def send(
        self,
        source: int,
        destinations: Sequence[int],
        payload_flits: int,
    ) -> ReliableMulticastOperation:
        """Start one reliable multicast from ``source`` now."""
        operation = ReliableMulticastOperation(
            self._next_id, source, destinations, payload_flits
        )
        self._operations[operation.op_id] = operation
        self._next_id += 1
        operation.started_cycle = self.nodes[source].sim.now
        self._transmit(operation)
        return operation

    def operation(self, op_id: int) -> Optional[ReliableMulticastOperation]:
        """Look up an operation."""
        return self._operations.get(op_id)

    # ------------------------------------------------------------------
    # protocol machinery
    # ------------------------------------------------------------------
    def _transmit(self, operation: ReliableMulticastOperation) -> None:
        missing = operation.missing
        if not missing:
            return
        operation.rounds += 1
        if operation.rounds > self.max_rounds:
            raise ProtocolError(
                f"reliable multicast {operation.op_id} exceeded "
                f"{self.max_rounds} rounds; loss too persistent"
            )
        node = self.nodes[operation.source]
        node.post_multicast(
            DestinationSet.from_ids(node.universe, missing),
            operation.payload_flits,
            MulticastScheme.HARDWARE,
            tag=(self.DATA, operation.op_id),
        )
        round_number = operation.rounds
        node.sim.schedule(
            self.timeout_cycles,
            lambda: self._on_timeout(operation, round_number),
        )

    def _on_timeout(
        self, operation: ReliableMulticastOperation, round_number: int
    ) -> None:
        if operation.complete or operation.rounds != round_number:
            return
        self._transmit(operation)

    def _on_delivery(self, node: HostNode, message: Message, now: int) -> None:
        tag = message.tag
        if not isinstance(tag, tuple) or len(tag) != 2:
            return
        kind, op_id = tag
        operation = self._operations.get(op_id)
        if operation is None:
            return
        if kind == self.DATA:
            if node.host_id in operation.delivered:
                return  # late duplicate; the source already has our ACK
            if self._rng.random() < self.drop_probability:
                operation.drops += 1
                return  # corrupted receipt: stay silent, await retransmit
            operation.delivered.setdefault(node.host_id, now)
            node.post_message(
                destinations=DestinationSet.single(
                    node.universe, operation.source
                ),
                payload_flits=1,
                traffic_class=TrafficClass.CONTROL,
                tag=(self.ACK, op_id),
            )
        elif kind == self.ACK:
            if node.host_id != operation.source:
                raise ProtocolError("ACK delivered to a non-source host")
            sender = message.source
            if sender not in operation.acked:
                operation.acked[sender] = now
                if not operation.missing:
                    operation.completed_cycle = now
