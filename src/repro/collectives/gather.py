"""Gather, scatter and all-gather over the simulated network.

These complete the collective set the paper's introduction motivates
(broadcast/multicast "are used in several other operations"):

* **gather** — every participant sends its block to a root.  There is no
  hardware assist to exploit (the traffic is inherently many-to-one),
  but the binomial *combining* tree halves the root's serialized
  receives: children concatenate their subtree's blocks and forward one
  larger message upward.
* **scatter** — the root sends a *different* block to every participant.
  Multidestination worms carry one payload to many destinations, so
  personalized traffic cannot ride a single worm; the root either sends
  d serialized unicasts (direct) or delegates halves of the block down a
  binomial tree (tree), trading total bytes moved for start-up count.
* **all-gather** — gather followed by a broadcast of the concatenation,
  where the broadcast *does* benefit from hardware multicast.

Block sizes are in flits; a message that carries ``k`` blocks is simply
``k * block_flits`` long, so wire serialization of the growing
concatenations is modelled exactly.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, TrafficClass
from repro.host.node import HostNode
from repro.host.software_multicast import binomial_schedule


class ScatterStrategy(enum.Enum):
    """How the root distributes personalized blocks."""

    #: the root sends every block itself (d serialized start-ups)
    DIRECT = "direct"
    #: halves of the block set are delegated down a binomial tree
    TREE = "tree"


class GatherOperation:
    """One gather (or the gather half of an all-gather)."""

    def __init__(
        self,
        gather_id: int,
        participants: Sequence[int],
        block_flits: int,
        broadcast_result: Optional[MulticastScheme],
    ) -> None:
        if len(participants) < 2:
            raise ConfigurationError("a gather needs at least 2 participants")
        self.gather_id = gather_id
        self.participants = sorted(participants)
        self.block_flits = block_flits
        self.broadcast_result = broadcast_result
        self.root = self.participants[0]
        children = binomial_schedule(self.root, self.participants[1:])
        self.children: Dict[int, List[int]] = {
            host: list(kids) for host, kids in children.items()
        }
        self.parent: Dict[int, Optional[int]] = {self.root: None}
        for host, kids in self.children.items():
            for kid in kids:
                self.parent[kid] = host
        #: blocks currently held per host (own + received subtrees)
        self.blocks_held: Dict[int, int] = {}
        self.pending_children: Dict[int, int] = {
            host: len(self.children.get(host, []))
            for host in self.participants
        }
        self.started_cycle: Optional[int] = None
        self.gathered_cycle: Optional[int] = None
        self.result_cycles: Dict[int, int] = {}
        self.completed_cycle: Optional[int] = None

    def subtree_size(self, host: int) -> int:
        """Participants in ``host``'s gather subtree (inclusive)."""
        total = 1
        for kid in self.children.get(host, []):
            total += self.subtree_size(kid)
        return total

    @property
    def complete(self) -> bool:
        """True when the operation (including any broadcast) finished."""
        return self.completed_cycle is not None

    @property
    def last_latency(self) -> Optional[int]:
        """First contribution to final completion."""
        if self.completed_cycle is None or self.started_cycle is None:
            return None
        return self.completed_cycle - self.started_cycle


class GatherEngine:
    """Drives gather / all-gather protocols over a network's nodes."""

    BLOCKS = "gather_blocks"
    RESULT = "gather_result"

    def __init__(self, nodes: Sequence[HostNode]) -> None:
        self.nodes = list(nodes)
        self._operations: Dict[int, GatherOperation] = {}
        self._block_counts: Dict[tuple, int] = {}
        self._next_id = 0
        for node in self.nodes:
            node.add_delivery_listener(self._on_delivery)

    def create(
        self,
        participants: Sequence[int],
        block_flits: int = 8,
        broadcast_result: Optional[MulticastScheme] = None,
    ) -> GatherOperation:
        """Register a gather; pass ``broadcast_result`` for all-gather."""
        operation = GatherOperation(
            self._next_id, participants, block_flits, broadcast_result
        )
        self._operations[operation.gather_id] = operation
        self._next_id += 1
        return operation

    def contribute(self, operation: GatherOperation, host: int) -> None:
        """Participant ``host`` makes its block available now."""
        if host not in operation.parent:
            raise ProtocolError(
                f"host {host} is not a participant of gather "
                f"{operation.gather_id}"
            )
        if host in operation.blocks_held:
            raise ProtocolError(
                f"host {host} contributed twice to gather "
                f"{operation.gather_id}"
            )
        node = self.nodes[host]
        if operation.started_cycle is None:
            operation.started_cycle = node.sim.now
        operation.blocks_held[host] = 1
        self._maybe_forward(operation, host)

    def operation(self, gather_id: int) -> Optional[GatherOperation]:
        """Look up a gather instance."""
        return self._operations.get(gather_id)

    # ------------------------------------------------------------------
    # protocol machinery
    # ------------------------------------------------------------------
    def _maybe_forward(self, operation: GatherOperation, host: int) -> None:
        if host not in operation.blocks_held:
            return
        if operation.pending_children[host] > 0:
            return
        node = self.nodes[host]
        parent = operation.parent[host]
        if parent is None:
            self._finish_gather(operation, node)
            return
        blocks = operation.blocks_held[host]
        message = node.post_message(
            destinations=DestinationSet.single(node.universe, parent),
            payload_flits=blocks * operation.block_flits,
            traffic_class=TrafficClass.CONTROL,
            tag=(self.BLOCKS, operation.gather_id),
        )
        self._block_counts[
            (operation.gather_id, message.message_id)
        ] = blocks

    def _finish_gather(self, operation: GatherOperation, root_node) -> None:
        now = root_node.sim.now
        operation.gathered_cycle = now
        if operation.broadcast_result is None:
            operation.completed_cycle = now
            return
        operation.result_cycles[operation.root] = now
        others = DestinationSet.from_ids(
            root_node.universe,
            [h for h in operation.participants if h != operation.root],
        )
        total = len(operation.participants) * operation.block_flits
        root_node.post_multicast(
            others,
            payload_flits=total,
            scheme=operation.broadcast_result,
            tag=(self.RESULT, operation.gather_id),
        )

    def _on_delivery(self, node: HostNode, message: Message, now: int) -> None:
        tag = message.tag
        if not isinstance(tag, tuple) or len(tag) != 2:
            return
        kind, gather_id = tag
        operation = self._operations.get(gather_id)
        if operation is None:
            return
        if kind == self.BLOCKS:
            key = (gather_id, message.message_id)
            blocks = self._block_counts.pop(key)
            host = node.host_id
            operation.blocks_held[host] = (
                operation.blocks_held.get(host, 0) + blocks
            )
            operation.pending_children[host] -= 1
            self._maybe_forward(operation, host)
        elif kind == self.RESULT:
            operation.result_cycles[node.host_id] = now
            if len(operation.result_cycles) == len(operation.participants):
                operation.completed_cycle = max(
                    operation.result_cycles.values()
                )


class ScatterOperation:
    """One scatter: a personalized block from the root to everyone."""

    def __init__(
        self,
        scatter_id: int,
        root: int,
        participants: Sequence[int],
        block_flits: int,
        strategy: ScatterStrategy,
    ) -> None:
        if len(participants) < 2:
            raise ConfigurationError("a scatter needs at least 2 participants")
        if root not in participants:
            raise ConfigurationError("the scatter root must participate")
        self.scatter_id = scatter_id
        self.root = root
        self.participants = sorted(participants)
        self.block_flits = block_flits
        self.strategy = strategy
        others = [h for h in self.participants if h != root]
        children = binomial_schedule(root, others)
        self.children: Dict[int, List[int]] = {
            host: list(kids) for host, kids in children.items()
        }
        self.started_cycle: Optional[int] = None
        self.block_cycles: Dict[int, int] = {}
        self.completed_cycle: Optional[int] = None

    def subtree(self, host: int) -> List[int]:
        """Hosts in ``host``'s delegation subtree (inclusive)."""
        out = [host]
        for kid in self.children.get(host, []):
            out.extend(self.subtree(kid))
        return out

    @property
    def complete(self) -> bool:
        """True when every non-root participant has its block."""
        return self.completed_cycle is not None

    @property
    def last_latency(self) -> Optional[int]:
        """Start to the last block delivery."""
        if self.completed_cycle is None or self.started_cycle is None:
            return None
        return self.completed_cycle - self.started_cycle


class ScatterEngine:
    """Drives scatter protocols over a network's nodes."""

    BUNDLE = "scatter_bundle"

    def __init__(self, nodes: Sequence[HostNode]) -> None:
        self.nodes = list(nodes)
        self._operations: Dict[int, ScatterOperation] = {}
        self._next_id = 0
        for node in self.nodes:
            node.add_delivery_listener(self._on_delivery)

    def create(
        self,
        root: int,
        participants: Sequence[int],
        block_flits: int = 8,
        strategy: ScatterStrategy = ScatterStrategy.TREE,
    ) -> ScatterOperation:
        """Register a scatter instance (no messages yet)."""
        operation = ScatterOperation(
            self._next_id, root, participants, block_flits, strategy
        )
        self._operations[operation.scatter_id] = operation
        self._next_id += 1
        return operation

    def start(self, operation: ScatterOperation) -> None:
        """The root begins distributing now."""
        root_node = self.nodes[operation.root]
        operation.started_cycle = root_node.sim.now
        operation.block_cycles[operation.root] = root_node.sim.now
        if operation.strategy is ScatterStrategy.DIRECT:
            for host in operation.participants:
                if host == operation.root:
                    continue
                root_node.post_message(
                    destinations=DestinationSet.single(
                        root_node.universe, host
                    ),
                    payload_flits=operation.block_flits,
                    traffic_class=TrafficClass.CONTROL,
                    tag=(self.BUNDLE, operation.scatter_id, (host,)),
                )
        else:
            self._delegate(operation, operation.root)
        self._maybe_complete(operation)

    def operation(self, scatter_id: int) -> Optional[ScatterOperation]:
        """Look up a scatter instance."""
        return self._operations.get(scatter_id)

    # ------------------------------------------------------------------
    # protocol machinery
    # ------------------------------------------------------------------
    def _delegate(self, operation: ScatterOperation, host: int) -> None:
        """Send each child its whole subtree's blocks in one message."""
        node = self.nodes[host]
        for child in operation.children.get(host, []):
            bundle = tuple(operation.subtree(child))
            node.post_message(
                destinations=DestinationSet.single(node.universe, child),
                payload_flits=len(bundle) * operation.block_flits,
                traffic_class=TrafficClass.CONTROL,
                tag=(self.BUNDLE, operation.scatter_id, bundle),
            )

    def _on_delivery(self, node: HostNode, message: Message, now: int) -> None:
        tag = message.tag
        if not isinstance(tag, tuple) or len(tag) != 3:
            return
        kind, scatter_id, bundle = tag
        if kind != self.BUNDLE:
            return
        operation = self._operations.get(scatter_id)
        if operation is None:
            return
        host = node.host_id
        if host in operation.block_cycles:
            raise ProtocolError(
                f"host {host} received its scatter block twice"
            )
        operation.block_cycles[host] = now
        if operation.strategy is ScatterStrategy.TREE and len(bundle) > 1:
            # forward the children's sub-bundles after the recv overhead
            self._delegate_later(operation, node)
        self._maybe_complete(operation)

    def _delegate_later(self, operation: ScatterOperation, node) -> None:
        ready = node.sim.now + node.params.sw_recv_overhead
        for child in operation.children.get(node.host_id, []):
            bundle = tuple(operation.subtree(child))
            node.post_message(
                destinations=DestinationSet.single(node.universe, child),
                payload_flits=len(bundle) * operation.block_flits,
                traffic_class=TrafficClass.CONTROL,
                tag=(self.BUNDLE, operation.scatter_id, bundle),
                not_before=ready,
            )

    def _maybe_complete(self, operation: ScatterOperation) -> None:
        if len(operation.block_cycles) == len(operation.participants):
            operation.completed_cycle = max(operation.block_cycles.values())
