"""Barrier synchronization over the simulated network.

A barrier has two halves:

* **gather** — every participant reports "ready"; ready messages combine
  up a binomial tree (a child's ready implies its whole subtree is
  ready), so the root learns of global arrival after ceil(log2(P))
  serialized message hops;
* **release** — the root tells everyone to proceed.  The release is
  where hardware multicast shines: one multidestination worm replaces a
  second log-depth software broadcast, cutting barrier latency roughly
  in half and removing the intermediate hosts' forwarding overheads from
  the critical path (the direction of the authors' follow-up work,
  ref [34]).

Barrier latency is measured per participant (enter to release) and for
the operation (first enter to last release) — the collective analogue of
the paper's last-arrival metric.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, TrafficClass
from repro.host.node import HostNode
from repro.host.software_multicast import binomial_schedule


class ReleaseScheme(enum.Enum):
    """How the barrier release travels back to the participants."""

    #: one multidestination worm from the root
    HARDWARE_MULTICAST = "hardware_multicast"
    #: binomial software broadcast (unicast forwards)
    SOFTWARE_BROADCAST = "software_broadcast"


class BarrierOperation:
    """One barrier instance across a participant set."""

    def __init__(
        self,
        barrier_id: int,
        participants: Sequence[int],
        release_scheme: ReleaseScheme,
    ) -> None:
        if len(participants) < 2:
            raise ConfigurationError("a barrier needs at least 2 participants")
        if len(set(participants)) != len(participants):
            raise ConfigurationError("duplicate barrier participants")
        self.barrier_id = barrier_id
        self.participants = sorted(participants)
        self.release_scheme = release_scheme
        #: the gather tree: parent of each participant (root maps to None)
        self.root = self.participants[0]
        children = binomial_schedule(self.root, self.participants[1:])
        self.children: Dict[int, List[int]] = {
            host: list(kids) for host, kids in children.items()
        }
        self.parent: Dict[int, Optional[int]] = {self.root: None}
        for host, kids in self.children.items():
            for kid in kids:
                self.parent[kid] = host
        self.enter_cycles: Dict[int, int] = {}
        self.release_cycles: Dict[int, int] = {}
        self._subtree_ready: Dict[int, int] = {
            host: 0 for host in self.participants
        }
        self.released_cycle: Optional[int] = None
        self.completed_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def ready_to_report(self, host: int) -> bool:
        """True when ``host`` has entered and heard from all children."""
        return (
            host in self.enter_cycles
            and self._subtree_ready[host] == len(self.children.get(host, []))
        )

    @property
    def complete(self) -> bool:
        """True when every participant has been released."""
        return self.completed_cycle is not None

    @property
    def last_latency(self) -> Optional[int]:
        """First-enter to last-release (the barrier's full span)."""
        if self.completed_cycle is None:
            return None
        return self.completed_cycle - min(self.enter_cycles.values())

    @property
    def skew(self) -> Optional[int]:
        """Release spread: how unsimultaneously participants resume."""
        if self.completed_cycle is None:
            return None
        return max(self.release_cycles.values()) - min(
            self.release_cycles.values()
        )


class BarrierEngine:
    """Drives barrier protocols over a built network's host nodes."""

    READY = "barrier_ready"
    RELEASE = "barrier_release"

    def __init__(self, nodes: Sequence[HostNode]) -> None:
        self.nodes = list(nodes)
        self._operations: Dict[int, BarrierOperation] = {}
        self._next_id = 0
        for node in self.nodes:
            node.add_delivery_listener(self._on_delivery)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def create(
        self,
        participants: Sequence[int],
        release_scheme: ReleaseScheme = ReleaseScheme.HARDWARE_MULTICAST,
    ) -> BarrierOperation:
        """Register a new barrier instance (no messages yet)."""
        operation = BarrierOperation(self._next_id, participants, release_scheme)
        self._operations[operation.barrier_id] = operation
        self._next_id += 1
        return operation

    def enter(self, operation: BarrierOperation, host: int) -> None:
        """Participant ``host`` arrives at the barrier now."""
        if host not in operation.parent:
            raise ProtocolError(
                f"host {host} is not a participant of barrier "
                f"{operation.barrier_id}"
            )
        if host in operation.enter_cycles:
            raise ProtocolError(
                f"host {host} entered barrier {operation.barrier_id} twice"
            )
        node = self.nodes[host]
        operation.enter_cycles[host] = node.sim.now
        self._maybe_report(operation, host)

    def operation(self, barrier_id: int) -> Optional[BarrierOperation]:
        """Look up a barrier instance."""
        return self._operations.get(barrier_id)

    # ------------------------------------------------------------------
    # protocol machinery
    # ------------------------------------------------------------------
    def _maybe_report(self, operation: BarrierOperation, host: int) -> None:
        if not operation.ready_to_report(host):
            return
        parent = operation.parent[host]
        node = self.nodes[host]
        if parent is None:
            self._release(operation)
            return
        node.post_message(
            destinations=DestinationSet.single(node.universe, parent),
            payload_flits=1,
            traffic_class=TrafficClass.CONTROL,
            tag=(self.READY, operation.barrier_id),
        )

    def _release(self, operation: BarrierOperation) -> None:
        root_node = self.nodes[operation.root]
        now = root_node.sim.now
        operation.released_cycle = now
        operation.release_cycles[operation.root] = now
        others = DestinationSet.from_ids(
            root_node.universe,
            [h for h in operation.participants if h != operation.root],
        )
        scheme = (
            MulticastScheme.HARDWARE
            if operation.release_scheme is ReleaseScheme.HARDWARE_MULTICAST
            else MulticastScheme.SOFTWARE
        )
        root_node.post_multicast(
            others,
            payload_flits=1,
            scheme=scheme,
            tag=(self.RELEASE, operation.barrier_id),
        )
        self._maybe_complete(operation)

    def _on_delivery(self, node: HostNode, message: Message, now: int) -> None:
        tag = message.tag
        if not isinstance(tag, tuple) or len(tag) != 2:
            return
        kind, barrier_id = tag
        operation = self._operations.get(barrier_id)
        if operation is None:
            return
        if kind == self.READY:
            operation._subtree_ready[node.host_id] += 1
            self._maybe_report(operation, node.host_id)
        elif kind == self.RELEASE:
            if node.host_id in operation.release_cycles:
                raise ProtocolError(
                    f"host {node.host_id} released twice in barrier "
                    f"{operation.barrier_id}"
                )
            operation.release_cycles[node.host_id] = now
            self._maybe_complete(operation)

    def _maybe_complete(self, operation: BarrierOperation) -> None:
        if len(operation.release_cycles) == len(operation.participants):
            operation.completed_cycle = max(operation.release_cycles.values())
