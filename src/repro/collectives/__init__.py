"""Collective operations built on the multicast substrate.

The paper closes by pointing at switch-supported **barrier
synchronization** (their follow-up, ref [34]) and other collectives as
the next step for multidestination message passing.  This package
implements those collectives at the host-protocol level:

* :mod:`repro.collectives.barrier` — barrier synchronization: a binomial
  *gather* of ready messages to a root, then a *release* broadcast that
  is either a single multidestination worm (the hardware-accelerated
  variant) or a binomial software broadcast (the pure-software baseline).
* :mod:`repro.collectives.reduction` — global reduction (e.g. MPI
  Allreduce-style sum/max): values combine pairwise up the binomial
  tree, and the result is broadcast back by either scheme.
* :mod:`repro.collectives.gather` — gather, all-gather (whose broadcast
  half rides hardware multicast) and personalized scatter (direct vs.
  tree delegation).
* :mod:`repro.collectives.reliable` — ACK/timeout reliable multicast
  with loss injection; retransmissions go out as one worm addressed to
  exactly the unacknowledged subset (the reliability direction of
  ref [34]).

Both engines drive real messages through the flit-level network, so
collective latency includes every contention and overhead effect the
rest of the library models.
"""

from repro.collectives.barrier import (
    BarrierEngine,
    BarrierOperation,
    ReleaseScheme,
)
from repro.collectives.gather import (
    GatherEngine,
    GatherOperation,
    ScatterEngine,
    ScatterOperation,
    ScatterStrategy,
)
from repro.collectives.reduction import (
    ReductionEngine,
    ReductionOperation,
)
from repro.collectives.reliable import (
    ReliableMulticastEngine,
    ReliableMulticastOperation,
)

__all__ = [
    "BarrierEngine",
    "BarrierOperation",
    "GatherEngine",
    "GatherOperation",
    "ReductionEngine",
    "ReductionOperation",
    "ReleaseScheme",
    "ReliableMulticastEngine",
    "ReliableMulticastOperation",
    "ScatterEngine",
    "ScatterOperation",
    "ScatterStrategy",
]
