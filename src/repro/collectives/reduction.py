"""Global reductions (sum/min/max) over the simulated network.

Values combine pairwise up the same binomial tree the software multicast
uses (a child sends its subtree's partial result to its parent), and the
root broadcasts the final value with either multicast scheme.  The
payload carries the reduction vector, so longer vectors serialize on the
wire exactly as data messages do.

This is the "reduction" the paper's introduction lists among the
collective operations that broadcast/multicast underlie.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.schemes import MulticastScheme
from repro.errors import ConfigurationError, ProtocolError
from repro.flits.destset import DestinationSet
from repro.flits.packet import Message, TrafficClass
from repro.host.node import HostNode
from repro.host.software_multicast import binomial_schedule

Combine = Callable[[int, int], int]


class ReductionOperation:
    """One all-reduce instance across a participant set."""

    def __init__(
        self,
        reduction_id: int,
        participants: Sequence[int],
        combine: Combine,
        payload_flits: int,
        result_scheme: MulticastScheme,
    ) -> None:
        if len(participants) < 2:
            raise ConfigurationError(
                "a reduction needs at least 2 participants"
            )
        self.reduction_id = reduction_id
        self.participants = sorted(participants)
        self.combine = combine
        self.payload_flits = payload_flits
        self.result_scheme = result_scheme
        self.root = self.participants[0]
        children = binomial_schedule(self.root, self.participants[1:])
        self.children: Dict[int, List[int]] = {
            host: list(kids) for host, kids in children.items()
        }
        self.parent: Dict[int, Optional[int]] = {self.root: None}
        for host, kids in self.children.items():
            for kid in kids:
                self.parent[kid] = host
        self.contributions: Dict[int, int] = {}
        self.partials: Dict[int, int] = {}
        self.pending_children: Dict[int, int] = {
            host: len(self.children.get(host, []))
            for host in self.participants
        }
        self.result: Optional[int] = None
        self.result_cycles: Dict[int, int] = {}
        self.started_cycle: Optional[int] = None
        self.completed_cycle: Optional[int] = None

    @property
    def complete(self) -> bool:
        """True when every participant holds the result."""
        return self.completed_cycle is not None

    @property
    def last_latency(self) -> Optional[int]:
        """First contribution to last result delivery."""
        if self.completed_cycle is None or self.started_cycle is None:
            return None
        return self.completed_cycle - self.started_cycle


class ReductionEngine:
    """Drives reduction protocols over a built network's host nodes."""

    PARTIAL = "reduce_partial"
    RESULT = "reduce_result"

    def __init__(self, nodes: Sequence[HostNode]) -> None:
        self.nodes = list(nodes)
        self._operations: Dict[int, ReductionOperation] = {}
        #: in-flight partial values keyed by (reduction, message id)
        self._values: Dict[tuple, int] = {}
        self._next_id = 0
        for node in self.nodes:
            node.add_delivery_listener(self._on_delivery)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def create(
        self,
        participants: Sequence[int],
        combine: Combine = lambda a, b: a + b,
        payload_flits: int = 4,
        result_scheme: MulticastScheme = MulticastScheme.HARDWARE,
    ) -> ReductionOperation:
        """Register a new reduction instance (no messages yet)."""
        operation = ReductionOperation(
            self._next_id, participants, combine, payload_flits,
            result_scheme,
        )
        self._operations[operation.reduction_id] = operation
        self._next_id += 1
        return operation

    def contribute(
        self, operation: ReductionOperation, host: int, value: int
    ) -> None:
        """Participant ``host`` contributes its local ``value`` now."""
        if host not in operation.parent:
            raise ProtocolError(
                f"host {host} is not a participant of reduction "
                f"{operation.reduction_id}"
            )
        if host in operation.contributions:
            raise ProtocolError(
                f"host {host} contributed twice to reduction "
                f"{operation.reduction_id}"
            )
        node = self.nodes[host]
        if operation.started_cycle is None:
            operation.started_cycle = node.sim.now
        operation.contributions[host] = value
        self._fold(operation, host, value)
        self._maybe_send_partial(operation, host)

    def operation(self, reduction_id: int) -> Optional[ReductionOperation]:
        """Look up a reduction instance."""
        return self._operations.get(reduction_id)

    # ------------------------------------------------------------------
    # protocol machinery
    # ------------------------------------------------------------------
    def _fold(
        self, operation: ReductionOperation, host: int, value: int
    ) -> None:
        """Combine one value (own contribution or a child's subtree
        partial) into the host's running partial."""
        if host in operation.partials:
            operation.partials[host] = operation.combine(
                operation.partials[host], value
            )
        else:
            operation.partials[host] = value

    def _maybe_send_partial(
        self, operation: ReductionOperation, host: int
    ) -> None:
        if host not in operation.contributions:
            return
        if operation.pending_children[host] > 0:
            return
        parent = operation.parent[host]
        node = self.nodes[host]
        if parent is None:
            self._broadcast_result(operation)
            return
        message = node.post_message(
            destinations=DestinationSet.single(node.universe, parent),
            payload_flits=operation.payload_flits,
            traffic_class=TrafficClass.CONTROL,
            tag=(self.PARTIAL, operation.reduction_id),
        )
        key = (operation.reduction_id, message.message_id)
        self._values[key] = operation.partials[host]

    def _broadcast_result(self, operation: ReductionOperation) -> None:
        root_node = self.nodes[operation.root]
        now = root_node.sim.now
        operation.result = operation.partials[operation.root]
        operation.result_cycles[operation.root] = now
        others = DestinationSet.from_ids(
            root_node.universe,
            [h for h in operation.participants if h != operation.root],
        )
        root_node.post_multicast(
            others,
            payload_flits=operation.payload_flits,
            scheme=operation.result_scheme,
            tag=(self.RESULT, operation.reduction_id),
        )
        self._maybe_complete(operation)

    def _on_delivery(self, node: HostNode, message: Message, now: int) -> None:
        tag = message.tag
        if not isinstance(tag, tuple) or len(tag) != 2:
            return
        kind, reduction_id = tag
        operation = self._operations.get(reduction_id)
        if operation is None:
            return
        if kind == self.PARTIAL:
            key = (reduction_id, message.message_id)
            value = self._values.pop(key)
            host = node.host_id
            self._fold(operation, host, value)
            operation.pending_children[host] -= 1
            self._maybe_send_partial(operation, host)
        elif kind == self.RESULT:
            operation.result_cycles[node.host_id] = now
            self._maybe_complete(operation)

    def _maybe_complete(self, operation: ReductionOperation) -> None:
        if len(operation.result_cycles) == len(operation.participants):
            operation.completed_cycle = max(operation.result_cycles.values())
