"""Discrete-time simulation substrate.

The kernel is cycle driven: every registered :class:`~repro.sim.component.Component`
is ticked once per cycle, and an event calendar handles work scheduled for
future cycles (message injection times, software overheads, ...).  All
communication between components crosses pipelined links with a latency of
at least one cycle, which makes results independent of the per-cycle tick
order and therefore deterministic for a given seed.
"""

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import Histogram, RateCounter, RunningStats

__all__ = [
    "Component",
    "Histogram",
    "RateCounter",
    "RngStreams",
    "RunningStats",
    "Simulator",
]
