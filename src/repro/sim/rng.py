"""Named, reproducible random-number streams.

Simulation components must never share a single :class:`random.Random`
instance: doing so couples their draws, so adding a statistics probe (or a
new traffic class) would perturb every other component's randomness and
change results.  :class:`RngStreams` derives an independent generator per
named stream from one root seed, so each consumer owns its sequence and the
whole simulation replays bit-identically from the root seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent, named :class:`random.Random` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RngStreams` built from the same seed hand
        out identical streams for identical names.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.stream("traffic")
    >>> b = streams.stream("arbiter.sw0")
    >>> a is streams.stream("traffic")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngStreams":
        """Return a child factory whose streams are disjoint from ours."""
        return RngStreams(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
