"""Optional event tracing for debugging simulations.

Tracing is off by default and costs one attribute check per call site when
disabled.  Enable it to capture a structured log of flit movements, buffer
operations and message lifecycles, which the tests use to assert detailed
pipeline behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    cycle: int
    source: str
    event: str
    details: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Return a detail value by key."""
        for name, value in self.details:
            if name == key:
                return value
        return default


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled.

    The tracer is a *ring buffer*: it retains at most ``limit`` records,
    and once full each new :meth:`emit` silently evicts the oldest
    retained record (drop-oldest, keep-newest — the most recent events
    are usually the ones a debugging session needs).  Evictions are
    counted in :attr:`dropped_count`, so a consumer can tell a complete
    trace from a truncated one.  For unbounded capture, stream to disk
    with :class:`repro.obs.sinks.JsonlTracer` instead.

    Parameters
    ----------
    enabled:
        When false (default), :meth:`emit` is a no-op.
    limit:
        Maximum records to retain; older records are dropped first.
    """

    def __init__(self, enabled: bool = False, limit: int = 1_000_000) -> None:
        self.enabled = enabled
        self.limit = limit
        self._records: List[TraceRecord] = []
        #: records evicted so far to honour ``limit`` (see class docs)
        self.dropped_count = 0

    def emit(self, cycle: int, source: str, event: str, **details: Any) -> None:
        """Record one event if tracing is enabled."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(cycle, source, event, tuple(sorted(details.items())))
        )
        if len(self._records) > self.limit:
            excess = len(self._records) - self.limit
            del self._records[:excess]
            self.dropped_count += excess

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records, oldest first."""
        return self._records

    def clear(self) -> None:
        """Drop all retained records and reset :attr:`dropped_count`."""
        self._records.clear()
        self.dropped_count = 0

    def select(
        self,
        event: Optional[str] = None,
        source: Optional[str] = None,
        where: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> Iterator[TraceRecord]:
        """Yield records matching the given filters."""
        for record in self._records:
            if event is not None and record.event != event:
                continue
            if source is not None and record.source != source:
                continue
            if where is not None and not where(record):
                continue
            yield record

    def counts(self) -> Dict[str, int]:
        """Histogram of event names across retained records."""
        result: Dict[str, int] = {}
        for record in self._records:
            result[record.event] = result.get(record.event, 0) + 1
        return result


NULL_TRACER = Tracer(enabled=False)
"""Shared disabled tracer for components created without one."""
