"""Base class for everything the kernel ticks once per cycle."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Component:
    """A named simulation component ticked once per cycle.

    Subclasses implement :meth:`tick`.  Because all inter-component traffic
    crosses links with latency >= 1, a component may only *send* state that
    becomes visible to peers next cycle, so tick order between components
    never changes behaviour.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._sim: "Simulator | None" = None

    @property
    def sim(self) -> "Simulator":
        """The simulator this component is registered with."""
        if self._sim is None:
            raise RuntimeError(
                f"component {self.name!r} is not attached to a simulator"
            )
        return self._sim

    def attach(self, sim: "Simulator") -> None:
        """Called by :meth:`Simulator.add_component`; do not call directly."""
        self._sim = sim

    def tick(self, now: int) -> None:
        """Advance this component by one cycle.  ``now`` is the cycle index."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
