"""Base class for everything the kernel can tick.

The active-set kernel (see :mod:`repro.sim.kernel`) only ticks a
component on cycles the component — or a peer, through a link wake
hook — asked for.  The wake contract for component authors is
documented in ``docs/performance.md``; in short:

* registration schedules one initial wake, so every component ticks at
  least once and can inspect pre-run state (e.g. worms enqueued before
  ``run`` was called);
* a component that still holds work at the end of ``tick`` must re-arm
  itself with ``self.wake_at(now + 1)``;
* a component may go fully dormant while idle — arrivals wake it again
  through the link-level wake hooks wired by ``connect_in``.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Component:
    """A named simulation component ticked by the kernel.

    Subclasses implement :meth:`tick`.  Because all inter-component traffic
    crosses links with latency >= 1, a component may only *send* state that
    becomes visible to peers next cycle, so tick order between components
    never changes behaviour.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._sim: "Simulator | None" = None
        # active-set bookkeeping, owned by the kernel: registration index
        # (tick order within a cycle), the set of far cycles this component
        # is already scheduled to wake at (heap-push dedupe), and the
        # next-cycle bucket marker (fast-path dedupe — see Simulator.wake;
        # Link's send/credit paths also read the marker to skip redundant
        # wake calls inline).
        self._index = -1
        self._wake_cycles: Set[int] = set()
        self._wake_marker = -1
        # cycle this component was last marked due (the kernel's
        # scan-based dedup for busy cycles — see Simulator.step)
        self._due_marker = -1

    @property
    def sim(self) -> "Simulator":
        """The simulator this component is registered with."""
        if self._sim is None:
            raise RuntimeError(
                f"component {self.name!r} is not attached to a simulator"
            )
        return self._sim

    def attach(self, sim: "Simulator") -> None:
        """Called by :meth:`Simulator.add_component`; do not call directly."""
        self._sim = sim

    # ------------------------------------------------------------------
    # wake API (the active-set contract)
    # ------------------------------------------------------------------
    def wake_at(self, cycle: int) -> None:
        """Request a tick at ``cycle`` (idempotent per cycle).

        Requests for a cycle already in the past are clamped to the
        current cycle.  Before attachment this is a no-op: attachment
        itself schedules an initial wake, so no pre-attach state is ever
        missed.

        This inlines :meth:`Simulator.wake` (kept in sync with it):
        every flit movement fires at least one wake through the link
        hooks, making this the single most-called function in a run.
        """
        sim = self._sim
        if sim is None or sim.dense:
            return
        if cycle < sim.now:
            cycle = sim.now
        if cycle == sim._bucket_cycle:
            if self._wake_marker != cycle:
                self._wake_marker = cycle
                sim._bucket.append(self._index)
            return
        if cycle in self._wake_cycles:
            return
        self._wake_cycles.add(cycle)
        heappush(sim._wakes, (cycle, self._index))

    def wake_now(self) -> None:
        """Request a tick in the current cycle (idempotent)."""
        if self._sim is not None:
            self._sim.wake(self, self._sim.now)

    def tick(self, now: int) -> None:
        """Advance this component by one cycle.  ``now`` is the cycle index."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
