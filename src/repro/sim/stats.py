"""Streaming statistics accumulators used by the metric collectors.

These avoid storing every sample: simulations record millions of flit and
message events, so collectors use Welford's online algorithm for moments
and fixed-width histograms for distributions.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple


class RunningStats:
    """Online mean/variance/min/max via Welford's algorithm.

    >>> s = RunningStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold every sample of ``values`` into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 with fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel-merge form)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        if self.count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.3f}, "
            f"sd={self.stddev:.3f}, min={self.min:.3f}, max={self.max:.3f})"
        )


class Histogram:
    """Fixed-bin-width histogram with overflow bin.

    Parameters
    ----------
    bin_width:
        Width of each bin; samples land in ``int(value // bin_width)``.
    max_bins:
        Samples beyond ``bin_width * max_bins`` accumulate in an overflow
        count rather than growing the bin list without bound.
    """

    def __init__(self, bin_width: float = 1.0, max_bins: int = 10_000) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if max_bins <= 0:
            raise ValueError("max_bins must be positive")
        self.bin_width = bin_width
        self.max_bins = max_bins
        self._bins: List[int] = []
        self.overflow = 0
        self.count = 0

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        index = int(value // self.bin_width)
        if index < 0:
            index = 0
        if index >= self.max_bins:
            self.overflow += 1
            return
        if index >= len(self._bins):
            self._bins.extend([0] * (index + 1 - len(self._bins)))
        self._bins[index] += 1

    def percentile(self, q: float) -> Optional[float]:
        """Return the approximate ``q``-quantile (0 <= q <= 1).

        Returns the upper edge of the bin containing the quantile, or
        ``None`` if the histogram is empty or the quantile falls in the
        overflow bin.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for index, n in enumerate(self._bins):
            seen += n
            if seen >= target:
                return (index + 1) * self.bin_width
        return None

    def nonzero_bins(self) -> List[Tuple[float, int]]:
        """Return ``(bin_upper_edge, count)`` for every non-empty bin."""
        return [
            ((i + 1) * self.bin_width, n)
            for i, n in enumerate(self._bins)
            if n
        ]


class RateCounter:
    """Counts events over a known time window to report a rate.

    >>> c = RateCounter()
    >>> c.add(3)
    >>> c.rate(elapsed=6)
    0.5
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, n: int = 1) -> None:
        """Record ``n`` events."""
        self.count += n

    def rate(self, elapsed: float) -> float:
        """Events per unit time over ``elapsed`` time units."""
        if elapsed <= 0:
            return 0.0
        return self.count / elapsed


class TimeWeightedAverage:
    """Average of a piecewise-constant signal, weighted by holding time.

    Used for buffer-occupancy statistics: call :meth:`update` whenever the
    level changes, then read :meth:`average`.
    """

    def __init__(self, initial: float = 0.0, start_time: int = 0) -> None:
        self._level = initial
        self._last_time = start_time
        self._area = 0.0
        self._start_time = start_time
        self.peak = initial

    def update(self, now: int, level: float) -> None:
        """Record that the signal changed to ``level`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time must be monotonically non-decreasing")
        self._area += self._level * (now - self._last_time)
        self._level = level
        self._last_time = now
        if level > self.peak:
            self.peak = level

    def average(self, now: int) -> float:
        """Time-weighted mean of the signal from start to ``now``."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return self._level
        area = self._area + self._level * (now - self._last_time)
        return area / elapsed
