"""The active-set simulation kernel.

One :class:`Simulator` owns the clock, an event calendar for future
callbacks, and the registry of components.  The kernel deliberately has
no knowledge of networks, flits, or switches — it only advances time.

Components are not ticked unconditionally every cycle: they register
*wake-ups* (:meth:`~repro.sim.component.Component.wake_at` /
:meth:`~repro.sim.component.Component.wake_now`) and the kernel keeps a
wake calendar keyed by ``(cycle, registration index)``, so ticks within
one cycle still run in registration order.  When nothing — no calendar
event, no wake — is due, :meth:`run` and :meth:`run_until` fast-forward
``now`` directly to the next scheduled activity instead of spinning
through idle cycles.  Stall detection counts those *simulated* idle
cycles exactly as if they had been stepped one by one, so results,
error cycles and messages are bit-identical to the dense reference
kernel (``Simulator(dense=True)``), which still ticks every component
every cycle and exists for differential testing (see
``tests/sim/test_active_set.py`` and ``docs/performance.md``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Protocol, Tuple

from repro.errors import SimulationError
from repro.sim.component import Component
from repro.sim.rng import RngStreams

Event = Callable[[], None]


class Probe(Protocol):
    """A read-only observer serviced at its own cadence.

    Unlike a component wake, a probe never keeps the kernel awake: the
    active-set kernel fast-forwards over idle spans at full stride and
    *replays* the probe's sample points inside the skipped gap (see
    :meth:`Simulator.add_probe`).  A probe must not mutate simulation
    state — no wakes, no events, no RNG draws.
    """

    #: next cycle this probe wants to sample; ``sample`` must advance it
    next_cycle: int

    def sample(self, cycle: int) -> None:
        """Observe the simulation at ``cycle`` (``sim.now == cycle``)."""
        ...


class ProfilerHook(Protocol):
    """Kernel-side profiling callbacks (see ``repro.obs.profile``).

    Installed with :meth:`Simulator.attach_profiler`; every call site in
    the kernel is behind a ``prof is not None`` test so a run without a
    profiler pays one local ``None`` check per step, nothing more.
    """

    def record_tick(self, component: Component) -> None:
        """One component tick is about to run."""
        ...

    def record_step(self, now: int, events: int, backlog: int) -> None:
        """A cycle was stepped: ``events`` calendar events fired and
        ``backlog`` wake-ups/events remain scheduled."""
        ...

    def record_fast_forward(self, start: int, skipped: int) -> None:
        """The clock jumped from ``start`` over ``skipped`` idle cycles."""
        ...


class Simulator:
    """Clock, calendar and component registry.

    Parameters
    ----------
    seed:
        Root seed for :attr:`rng`; all component randomness should be drawn
        from named streams of this factory.
    dense:
        When true, disable the active set entirely: every component is
        ticked every cycle and fast-forwarding never happens.  The dense
        kernel is the behavioural reference the active-set kernel is
        differentially tested against; results are bit-identical.

    Notes
    -----
    The kernel exposes a *progress marker* (:attr:`progress`) that
    components bump whenever they move a flit or deliver a message.
    Facades use it to detect a wedged simulation (see
    :class:`repro.errors.DeadlockSuspected`) without the kernel needing to
    understand what progress means.
    """

    def __init__(self, seed: int = 0, dense: bool = False) -> None:
        self.now = 0
        self.rng = RngStreams(seed)
        self.progress = 0
        self.dense = dense
        self._components: List[Component] = []
        self._calendar: List[Tuple[int, int, Event]] = []
        self._sequence = itertools.count()
        #: far pending wake-ups as ``(cycle, registration index)`` heap
        #: keys; per-component cycle sets make pushes idempotent
        self._wakes: List[Tuple[int, int]] = []
        #: fast path for the overwhelmingly common wake target (the next
        #: cycle — re-arms and latency-1 link hooks): a flat list of
        #: component indices due at ``_bucket_cycle``, deduplicated by a
        #: per-component marker instead of heap + set machinery
        self._bucket: List[int] = []
        self._bucket_cycle = 0
        #: cycles where a time-dependent ``run_until`` predicate may flip
        #: (see :meth:`mark_time`)
        self._time_marks: List[int] = []
        #: read-only observers serviced at their own cadence (samplers);
        #: they never cap a fast-forward jump — skipped sample points
        #: are replayed before the clock moves (see :meth:`add_probe`)
        self._probes: List[Probe] = []
        #: optional kernel profiler (see :meth:`attach_profiler`); every
        #: call site is behind a ``prof is not None`` test
        self._prof: Optional[ProfilerHook] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_component(self, component: Component) -> Component:
        """Register ``component`` with the kernel; returns it.

        Registration schedules one initial wake at the current cycle, so
        every component ticks at least once and can observe state queued
        before the run started.  After that it is ticked only on cycles
        it (or a link wake hook) asked for — unless the kernel is
        ``dense``, in which case it is ticked every cycle.
        """
        component._index = len(self._components)
        component.attach(self)
        self._components.append(component)
        self.wake(component, self.now)
        return component

    @property
    def components(self) -> List[Component]:
        """Registered components in tick order (read-only view by convention)."""
        return self._components

    def add_probe(self, probe: Probe) -> None:
        """Register a read-only observer serviced at its own cadence.

        A probe exposes ``next_cycle`` — the next cycle it wants to
        sample — and a ``sample(cycle)`` method that must advance
        ``next_cycle`` strictly past ``cycle``.  Probes are serviced at
        the end of every stepped cycle *and* inside fast-forwarded idle
        spans: before the clock jumps from ``A`` to ``B`` the kernel
        replays every due sample point in ``[A, B-1]`` with ``now``
        temporarily set to the sample cycle.  An idle span is idle
        precisely because no component state changes inside it, so the
        replayed observations are bit-identical to stepping the span on
        the dense kernel — without the probe ever capping a jump.

        Probes must be read-only: no wakes, no events, no RNG draws.
        ``next_cycle`` values in the past are clamped to ``now``.
        """
        if probe.next_cycle < self.now:
            probe.next_cycle = self.now
        self._probes.append(probe)

    def attach_profiler(self, profiler: Optional[ProfilerHook]) -> None:
        """Install (or, with ``None``, remove) the kernel profiler hook.

        With no profiler attached the kernel pays one local ``None``
        test per step — the zero-overhead contract shared with the
        telemetry layer (see ``docs/observability.md``).
        """
        self._prof = profiler

    # ------------------------------------------------------------------
    # wake calendar
    # ------------------------------------------------------------------
    def wake(self, component: Component, cycle: int) -> None:
        """Schedule a tick of ``component`` at ``cycle`` (idempotent).

        Cycles in the past are clamped to ``now`` (useful when a test
        drives ticks by hand).  In dense mode this is a no-op — every
        component is ticked every cycle anyway.

        :meth:`Component.wake_at` inlines this logic as its fast path;
        any change here must be mirrored there.
        """
        if self.dense:
            return
        if cycle < self.now:
            cycle = self.now
        if cycle == self._bucket_cycle:
            if component._wake_marker != cycle:
                component._wake_marker = cycle
                self._bucket.append(component._index)
            return
        if cycle in component._wake_cycles:
            return
        component._wake_cycles.add(cycle)
        heapq.heappush(self._wakes, (cycle, component._index))

    def next_wake_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending wake-up, or ``None``."""
        if self._bucket:
            if self._wakes:
                return min(self._bucket_cycle, self._wakes[0][0])
            return self._bucket_cycle
        if not self._wakes:
            return None
        return self._wakes[0][0]

    def mark_time(self, cycle: int) -> None:
        """Declare that a ``run_until`` predicate may flip at ``cycle``.

        Fast-forwarding assumes the predicate is constant across a gap
        with no events and no wakes — true for predicates that only read
        component state, but not for ones that also compare ``sim.now``
        against a threshold (e.g. "generation window over").  A time mark
        caps every fast-forward jump at ``cycle`` so the predicate is
        re-checked there.  Marks are *not* calendar events: they do not
        tick anything, reset stall accounting, or count as pending work.
        Workloads declare theirs via
        :meth:`repro.traffic.base.Workload.time_marks`.
        """
        if self.dense or cycle <= self.now:
            return
        heapq.heappush(self._time_marks, cycle)

    def _next_time_mark(self) -> Optional[int]:
        """Earliest future time mark, discarding stale ones."""
        marks = self._time_marks
        while marks and marks[0] <= self.now:
            heapq.heappop(marks)
        return marks[0] if marks else None

    # ------------------------------------------------------------------
    # event calendar
    # ------------------------------------------------------------------
    def schedule(self, delay: int, event: Event) -> None:
        """Run ``event`` ``delay`` cycles from now (``delay`` >= 0).

        Events scheduled for cycle *t* run at the start of cycle *t*,
        before any component ticks.  Events scheduled for the same cycle
        run in scheduling order.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self.now + delay, event)

    def schedule_at(self, cycle: int, event: Event) -> None:
        """Run ``event`` at the start of the given absolute ``cycle``."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule event in the past (now={self.now}, at={cycle})"
            )
        heapq.heappush(self._calendar, (cycle, next(self._sequence), event))

    @property
    def pending_events(self) -> int:
        """Number of calendar events not yet executed."""
        return len(self._calendar)

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending calendar event, or ``None``."""
        if not self._calendar:
            return None
        return self._calendar[0][0]

    # ------------------------------------------------------------------
    # progress accounting
    # ------------------------------------------------------------------
    def note_progress(self) -> None:
        """Record that observable work happened this cycle."""
        self.progress += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one cycle: calendar events for ``now``, then due ticks.

        In dense mode every component ticks; otherwise only components
        with a wake-up due this cycle tick, in registration order (the
        wake heap is keyed ``(cycle, registration index)``).  An event
        may wake a component for the current cycle — events run first,
        so the wake is honoured this very cycle.
        """
        now = self.now
        calendar = self._calendar
        prof = self._prof
        events = 0
        if prof is not None:
            while calendar and calendar[0][0] == now:
                heapq.heappop(calendar)[2]()
                events += 1
        else:
            while calendar and calendar[0][0] == now:
                heapq.heappop(calendar)[2]()
        if self.dense:
            if prof is not None:
                for component in self._components:
                    prof.record_tick(component)
                    component.tick(now)
            else:
                for component in self._components:
                    component.tick(now)
        else:
            components = self._components
            if self._bucket_cycle == now:
                due = self._bucket
                # fresh bucket for the re-arms the ticks below will issue
                self._bucket = []
                self._bucket_cycle = now + 1
            else:
                if self._bucket_cycle < now:
                    # stale empty bucket (fast-forward jumped past it);
                    # retarget so re-arms take the fast path again
                    self._bucket_cycle = now + 1
                due = []
            wakes = self._wakes
            while wakes and wakes[0][0] <= now:
                cycle, index = heapq.heappop(wakes)
                components[index]._wake_cycles.discard(cycle)
                due.append(index)
            if due:
                if 2 * len(due) >= len(components):
                    # busy cycle: most components are due, so mark and
                    # scan registration order instead of sorting — same
                    # ascending tick order, same at-most-once dedup
                    for index in due:
                        components[index]._due_marker = now
                    if prof is not None:
                        for component in components:
                            if component._due_marker == now:
                                prof.record_tick(component)
                                component.tick(now)
                    else:
                        for component in components:
                            if component._due_marker == now:
                                component.tick(now)
                elif prof is not None:
                    due.sort()
                    last = -1
                    for index in due:
                        if index == last:
                            continue  # at most one tick per component per cycle
                        last = index
                        prof.record_tick(components[index])
                        components[index].tick(now)
                else:
                    due.sort()
                    last = -1
                    for index in due:
                        if index == last:
                            continue  # at most one tick per component per cycle
                        last = index
                        components[index].tick(now)
        if prof is not None:
            prof.record_step(
                now,
                events,
                len(calendar) + len(self._wakes) + len(self._bucket),
            )
        if self._probes:
            self._fire_probes(now)
        self.now = now + 1

    def _fire_probes(self, limit: int) -> None:
        """Service every probe sample point at or before ``limit``.

        ``now`` is temporarily set to each due sample cycle so a probe
        that reads the clock (e.g. a windowed-rate gauge) observes the
        same value it would on the dense kernel, then restored.
        """
        saved = self.now
        probes = self._probes
        while True:
            due: Optional[int] = None
            for probe in probes:
                cycle = probe.next_cycle
                if cycle <= limit and (due is None or cycle < due):
                    due = cycle
            if due is None:
                break
            self.now = due
            for probe in probes:
                if probe.next_cycle == due:
                    probe.sample(due)
                    if probe.next_cycle <= due:
                        raise SimulationError(
                            f"probe {probe!r} did not advance next_cycle "
                            f"past {due}"
                        )
        self.now = saved

    def _skip_to(self, cycle: int) -> None:
        """Jump the clock to ``cycle`` without stepping the gap.

        Due probe sample points inside the gap are replayed first, and
        the skipped span is reported to the profiler if one is attached.
        """
        if self._probes:
            self._fire_probes(cycle - 1)
        prof = self._prof
        if prof is not None:
            prof.record_fast_forward(self.now, cycle - self.now)
        self.now = cycle

    def _next_activity_cycle(self) -> Optional[int]:
        """Earliest cycle with a calendar event or a wake-up, or ``None``."""
        best = self._calendar[0][0] if self._calendar else None
        if self._wakes and (best is None or self._wakes[0][0] < best):
            best = self._wakes[0][0]
        if self._bucket and (best is None or self._bucket_cycle < best):
            best = self._bucket_cycle
        return best

    def run(self, cycles: int) -> None:
        """Advance the clock by ``cycles`` cycles.

        The active-set kernel fast-forwards over spans with no scheduled
        activity; the clock still ends exactly ``cycles`` later.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if self.dense:
            for _ in range(cycles):
                self.step()
            return
        target = self.now + cycles
        while self.now < target:
            upcoming = self._next_activity_cycle()
            if upcoming is None or upcoming >= target:
                self._skip_to(target)
                return
            if upcoming > self.now:
                self._skip_to(upcoming)
            self.step()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        stall_limit: Optional[int] = None,
    ) -> int:
        """Step until ``predicate()`` is true; return cycles executed.

        Parameters
        ----------
        predicate:
            Checked before each cycle; the run stops as soon as it holds.
            Fast-forwarding re-checks it at every cycle with scheduled
            activity and at every :meth:`mark_time` cycle; a predicate
            that can flip on ``sim.now`` alone must have its threshold
            declared as a time mark.
        max_cycles:
            Hard bound on cycles to execute; exceeding it raises
            :class:`~repro.errors.SimulationError`.
        stall_limit:
            If given, raise :class:`~repro.errors.SimulationError` when no
            component reports progress *and* no calendar event fires for
            this many consecutive cycles while the predicate is false —
            the signature of a deadlocked network.  Idle cycles spent
            waiting for a *pending* calendar event are excused — they
            never trip the detector — but they no longer reset the
            counter either, so a far-future no-op event merely defers
            detection until ``stall_limit`` idle cycles after it fires.
            Skipped idle gaps count exactly as if they had been stepped.
        """
        executed = 0
        last_progress = self.progress
        stalled = 0
        while not predicate():
            if executed >= max_cycles:
                raise SimulationError(
                    f"predicate still false after {max_cycles} cycles"
                )
            if not self.dense:
                skipped = self._fast_forward(
                    max_cycles - executed, stalled, stall_limit
                )
                if skipped:
                    executed += skipped
                    stalled += skipped
                    continue
            event_this_cycle = (
                bool(self._calendar) and self._calendar[0][0] == self.now
            )
            self.step()
            executed += 1
            if self.progress != last_progress or event_this_cycle:
                last_progress = self.progress
                stalled = 0
                continue
            stalled += 1
            if stall_limit is not None and stalled >= stall_limit:
                if self.next_event_cycle() is not None:
                    # Idle gap before a scheduled event: not a deadlock —
                    # future work exists.  The counter keeps growing (it
                    # is *not* reset), so once the calendar drains the
                    # detector trips after at most stall_limit further
                    # idle cycles.
                    continue
                raise SimulationError(
                    f"no progress for {stalled} cycles at cycle "
                    f"{self.now}; suspected deadlock"
                )
        return executed

    def _fast_forward(
        self,
        budget_left: int,
        stalled: int,
        stall_limit: Optional[int],
    ) -> int:
        """Skip idle cycles; return how many were skipped (0: step instead).

        The jump is capped at the next calendar event or wake-up, the
        next time mark, the cycle budget, and — when the calendar is
        empty — the cycle where the stall detector would trip, which is
        raised here with the exact cycle and message the dense kernel
        would produce.
        """
        upcoming = self._next_activity_cycle()
        if upcoming is not None and upcoming <= self.now:
            return 0
        if upcoming is None:
            jump = budget_left
        else:
            jump = min(upcoming - self.now, budget_left)
        mark = self._next_time_mark()
        if mark is not None and mark - self.now < jump:
            jump = mark - self.now
        if stall_limit is not None and not self._calendar:
            trip = stall_limit - stalled
            if trip <= jump:
                self._skip_to(self.now + trip)
                raise SimulationError(
                    f"no progress for {stall_limit} cycles at cycle "
                    f"{self.now}; suspected deadlock"
                )
        self._skip_to(self.now + jump)
        return jump

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now}, components={len(self._components)}, "
            f"pending_events={self.pending_events})"
        )
