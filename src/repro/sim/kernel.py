"""The cycle-driven simulation kernel.

One :class:`Simulator` owns the clock, an event calendar for future
callbacks, and the ordered list of components to tick each cycle.  The
kernel deliberately has no knowledge of networks, flits, or switches — it
only advances time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.component import Component
from repro.sim.rng import RngStreams

Event = Callable[[], None]


class Simulator:
    """Clock, calendar and component registry.

    Parameters
    ----------
    seed:
        Root seed for :attr:`rng`; all component randomness should be drawn
        from named streams of this factory.

    Notes
    -----
    The kernel exposes a *progress marker* (:attr:`progress`) that
    components bump whenever they move a flit or deliver a message.
    Facades use it to detect a wedged simulation (see
    :class:`repro.errors.DeadlockSuspected`) without the kernel needing to
    understand what progress means.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now = 0
        self.rng = RngStreams(seed)
        self.progress = 0
        self._components: List[Component] = []
        self._calendar: List[Tuple[int, int, Event]] = []
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_component(self, component: Component) -> Component:
        """Register ``component`` to be ticked every cycle; returns it."""
        component.attach(self)
        self._components.append(component)
        return component

    @property
    def components(self) -> List[Component]:
        """Registered components in tick order (read-only view by convention)."""
        return self._components

    # ------------------------------------------------------------------
    # calendar
    # ------------------------------------------------------------------
    def schedule(self, delay: int, event: Event) -> None:
        """Run ``event`` ``delay`` cycles from now (``delay`` >= 0).

        Events scheduled for cycle *t* run at the start of cycle *t*,
        before any component ticks.  Events scheduled for the same cycle
        run in scheduling order.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self.now + delay, event)

    def schedule_at(self, cycle: int, event: Event) -> None:
        """Run ``event`` at the start of the given absolute ``cycle``."""
        if cycle < self.now:
            raise ValueError(
                f"cannot schedule event in the past (now={self.now}, at={cycle})"
            )
        heapq.heappush(self._calendar, (cycle, next(self._sequence), event))

    @property
    def pending_events(self) -> int:
        """Number of calendar events not yet executed."""
        return len(self._calendar)

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending calendar event, or ``None``."""
        if not self._calendar:
            return None
        return self._calendar[0][0]

    # ------------------------------------------------------------------
    # progress accounting
    # ------------------------------------------------------------------
    def note_progress(self) -> None:
        """Record that observable work happened this cycle."""
        self.progress += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one cycle: calendar events for ``now``, then all ticks."""
        while self._calendar and self._calendar[0][0] == self.now:
            _, _, event = heapq.heappop(self._calendar)
            event()
        now = self.now
        for component in self._components:
            component.tick(now)
        self.now = now + 1

    def run(self, cycles: int) -> None:
        """Advance the clock by ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            self.step()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        stall_limit: Optional[int] = None,
    ) -> int:
        """Step until ``predicate()`` is true; return cycles executed.

        Parameters
        ----------
        predicate:
            Checked before each cycle; the run stops as soon as it holds.
        max_cycles:
            Hard bound on cycles to execute; exceeding it raises
            :class:`~repro.errors.SimulationError`.
        stall_limit:
            If given, raise :class:`~repro.errors.SimulationError` when no
            component reports progress *and* no calendar event fires for
            this many consecutive cycles while the predicate is false —
            the signature of a deadlocked network.
        """
        executed = 0
        last_progress = self.progress
        stalled = 0
        while not predicate():
            if executed >= max_cycles:
                raise SimulationError(
                    f"predicate still false after {max_cycles} cycles"
                )
            event_this_cycle = (
                self._calendar and self._calendar[0][0] == self.now
            )
            self.step()
            executed += 1
            if self.progress != last_progress or event_this_cycle:
                last_progress = self.progress
                stalled = 0
            else:
                stalled += 1
                if stall_limit is not None and stalled >= stall_limit:
                    next_cycle = self.next_event_cycle()
                    if next_cycle is not None:
                        # Idle gap before a scheduled event: fast-forward
                        # is unnecessary (we still step), but it is not a
                        # deadlock because future work exists.
                        stalled = 0
                        continue
                    raise SimulationError(
                        f"no progress for {stalled} cycles at cycle "
                        f"{self.now}; suspected deadlock"
                    )
        return executed

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now}, components={len(self._components)}, "
            f"pending_events={self.pending_events})"
        )
