"""The checked-in baseline of grandfathered findings.

A baseline lets the lint gate be adopted on a tree that is not yet
clean: known findings are recorded by fingerprint (line-number
independent, see :class:`repro.analysis.findings.Finding.fingerprint`)
and stop failing the gate, while anything *new* still does.  The
intended workflow is to shrink the baseline over time — fix a finding
and re-run ``python -m repro lint --write-baseline`` — never to grow it
as a suppression dump; new code should use inline suppressions with a
reason instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set

from repro.analysis.findings import Finding

#: schema tag stamped on the baseline file (REP006 applies to us too)
BASELINE_SCHEMA = "repro.lint-baseline/1"

#: default baseline location, relative to the lint working directory
DEFAULT_BASELINE = ".reprolint-baseline.json"


class BaselineError(ValueError):
    """A baseline file that exists but cannot be used."""


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints recorded in ``path`` (empty set if absent)."""
    if not path.exists():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"{path}: unreadable baseline ({error})")
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: not a {BASELINE_SCHEMA} baseline "
            f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
        )
    fingerprints = data.get("fingerprints")
    if not isinstance(fingerprints, list) or not all(
        isinstance(fp, str) for fp in fingerprints
    ):
        raise BaselineError(f"{path}: 'fingerprints' must be a string list")
    return set(fingerprints)


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the count.

    Fingerprints are stored sorted and de-duplicated so the file diffs
    cleanly in review.
    """
    fingerprints: List[str] = sorted(
        {finding.fingerprint for finding in findings}
    )
    payload = {
        "schema": BASELINE_SCHEMA,
        "comment": (
            "grandfathered reprolint findings; regenerate with "
            "`python -m repro lint --write-baseline`"
        ),
        "fingerprints": fingerprints,
    }
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return len(fingerprints)
