"""Findings, fingerprints and per-line suppressions.

A :class:`Finding` is one rule violation at one source location.  Two
pieces of identity matter beyond the location itself:

* the *fingerprint* — a line-number-independent hash used by the
  baseline file (:mod:`repro.analysis.baseline`), so grandfathered
  findings survive unrelated edits that shift line numbers;
* the *suppression* — an inline ``# reprolint: ignore[REP00x] reason``
  comment on the offending line, for the rare site where a rule's
  invariant is deliberately waived.  Suppressions must name the code
  they waive; a blanket ``ignore`` is not honoured.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Set, Tuple

#: matches ``# reprolint: ignore[REP001]`` and
#: ``# reprolint: ignore[REP001,REP003] reason text``
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the path as given to the engine (normally relative to
    the repository root), ``line``/``col`` are 1- and 0-based as in
    :mod:`ast`, and ``line_text`` is the stripped source line, kept for
    fingerprinting and text output.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    line_text: str = ""
    #: disambiguates identical findings on identical line text (0-based)
    occurrence: int = 0
    #: call chain for reachability findings (entry point first); part of
    #: the fingerprint, so a baselined chain survives line-number churn
    #: but re-surfaces when the path through the program changes
    chain: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity for the baseline file."""
        parts = [self.code, self.path, self.line_text,
                 str(self.occurrence)]
        if self.chain:
            parts.append("->".join(self.chain))
        payload = "|".join(parts)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """One-line text format: ``path:line:col: CODE message``."""
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly mapping for ``--format json`` output."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
            "chain": list(self.chain),
        }


def assign_occurrences(findings: Sequence[Finding]) -> List[Finding]:
    """Number findings that share (code, path, line text) 0, 1, 2, ...

    The occurrence index makes fingerprints unique when the same
    violation appears on several identical source lines of one file.
    """
    counts: Dict[str, int] = {}
    out: List[Finding] = []
    for finding in findings:
        key = "|".join((finding.code, finding.path, finding.line_text))
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append(replace(finding, occurrence=occurrence))
    return out


@dataclass(frozen=True)
class Suppression:
    """An inline waiver for one or more rule codes on one line."""

    line: int
    codes: Set[str] = field(default_factory=set)
    reason: str = ""


def scan_suppressions(source: str) -> Dict[int, Suppression]:
    """Find every ``# reprolint: ignore[...]`` comment in ``source``.

    Returns a mapping of 1-based line number to :class:`Suppression`.
    The scan is line-based: a suppression waives findings reported on
    its own line only.
    """
    suppressions: Dict[int, Suppression] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        codes = {
            code.strip()
            for code in match.group(1).split(",")
            if code.strip()
        }
        if not codes:
            continue
        suppressions[number] = Suppression(
            line=number, codes=codes, reason=match.group(2).strip()
        )
    return suppressions
