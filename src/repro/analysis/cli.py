"""``python -m repro lint``: the command-line lint gate.

Exit codes follow the convention of the other gates in CI: ``0`` when
the tree is clean (inline-suppressed and baselined findings do not
count), ``1`` when new findings exist, ``2`` for usage errors.

``--format json`` emits a single ``repro.lint/1`` object on stdout; its
layout is pinned by :data:`LINT_JSON_SCHEMA` (a JSON Schema the test
suite validates real output against) and documented in
``docs/static-analysis.md``.  ``--format github`` emits one GitHub
Actions ``::error`` workflow command per finding, so findings surface
as inline annotations on pull requests.

``--changed-only`` narrows the lint *selection* to files touched since
a git ref (``--since``, default ``origin/main``) — but the engine still
indexes the whole ``repro`` tree, so cross-module rules stay sound on
partial selections.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set

from repro._version import __version__
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.rules import all_rules, rule_catalog

#: schema tag stamped on ``--format json`` output
LINT_SCHEMA = "repro.lint/1"

#: JSON Schema (draft-07) for ``--format json`` output
LINT_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.lint/1",
    "type": "object",
    "required": [
        "schema",
        "tool",
        "checked_files",
        "findings",
        "counts",
    ],
    "properties": {
        "schema": {"const": LINT_SCHEMA},
        "tool": {
            "type": "object",
            "required": ["name", "version"],
            "properties": {
                "name": {"const": "reprolint"},
                "version": {"type": "string"},
            },
        },
        "checked_files": {"type": "integer", "minimum": 0},
        "findings": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "code",
                    "path",
                    "line",
                    "col",
                    "message",
                    "hint",
                    "fingerprint",
                    "chain",
                ],
                "properties": {
                    "code": {"type": "string", "pattern": "^REP[0-9]{3}$"},
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "col": {"type": "integer", "minimum": 0},
                    "message": {"type": "string"},
                    "hint": {"type": "string"},
                    "fingerprint": {
                        "type": "string",
                        "pattern": "^[0-9a-f]{16}$",
                    },
                    "chain": {
                        "type": "array",
                        "items": {"type": "string"},
                    },
                },
            },
        },
        "counts": {
            "type": "object",
            "required": ["new", "suppressed", "baselined"],
            "properties": {
                "new": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
                "baselined": {"type": "integer", "minimum": 0},
            },
        },
    },
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "reprolint: AST-based checks for the invariants the "
            "reproduction's determinism, picklability and zero-overhead "
            "telemetry contracts depend on (see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text); 'github' emits "
        "::error workflow commands for PR annotations",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed since --since (the whole tree "
        "is still indexed, so cross-module rules stay sound)",
    )
    parser.add_argument(
        "--since",
        metavar="REF",
        default="origin/main",
        help="git ref --changed-only diffs against "
        "(default: origin/main)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline of grandfathered findings "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if it exists",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


class ChangedFilesError(RuntimeError):
    """git could not produce the changed-file list."""


def _git_lines(args: Sequence[str]) -> List[str]:
    """Run one git command, returning stdout lines; raise on failure."""
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as error:
        raise ChangedFilesError(f"cannot run git: {error}") from error
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise ChangedFilesError(
            f"git {' '.join(args[:2])} failed: {detail}"
        )
    return [line for line in proc.stdout.splitlines() if line]


def changed_files(since: str) -> List[Path]:
    """Python files changed vs the merge-base with ``since``.

    Covers committed changes (``git diff`` against the merge-base, so a
    stale ``since`` branch does not drag in other people's edits),
    uncommitted modifications, and untracked files.  Deleted files are
    excluded — there is nothing left to lint.
    """
    base = _git_lines(["merge-base", "HEAD", since])[0]
    names: List[str] = []
    names.extend(
        _git_lines(["diff", "--name-only", "--diff-filter=d", base])
    )
    names.extend(
        _git_lines(
            ["ls-files", "--others", "--exclude-standard"]
        )
    )
    out: List[Path] = []
    for name in dict.fromkeys(names):
        path = Path(name)
        if path.suffix == ".py" and path.exists():
            out.append(path)
    return sorted(out)


def _list_rules() -> int:
    for code, summary, docstring in rule_catalog():
        print(f"{code}  {summary}")
        for line in docstring.splitlines():
            print(f"        {line.rstrip()}")
        print()
    return 0


def _render_text(result: LintResult, out: Any = None) -> None:
    out = sys.stdout if out is None else out
    for finding in result.new:
        print(finding.render(), file=out)
    tail = (
        f"reprolint: {result.checked_files} file(s) checked, "
        f"{len(result.new)} finding(s)"
    )
    extras: List[str] = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if extras:
        tail += f" ({', '.join(extras)})"
    print(tail, file=out)


def _gh_escape_data(text: str) -> str:
    """Escape a workflow-command message per GitHub's rules."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _gh_escape_property(text: str) -> str:
    """Escape a workflow-command property value (file=, title=, ...)."""
    return (
        _gh_escape_data(text).replace(":", "%3A").replace(",", "%2C")
    )


def _render_github(result: LintResult, out: Any = None) -> None:
    """One ``::error`` annotation per new finding, plus the summary."""
    out = sys.stdout if out is None else out
    for finding in result.new:
        message = finding.message
        if finding.hint:
            message += f" [hint: {finding.hint}]"
        print(
            "::error "
            f"file={_gh_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.col + 1},"
            f"title={_gh_escape_property('reprolint ' + finding.code)}"
            f"::{_gh_escape_data(message)}",
            file=out,
        )
    print(
        f"reprolint: {result.checked_files} file(s) checked, "
        f"{len(result.new)} finding(s)",
        file=out,
    )


def _render_json(result: LintResult) -> None:
    payload: Dict[str, Any] = {
        "schema": LINT_SCHEMA,
        "tool": {"name": "reprolint", "version": __version__},
        "checked_files": result.checked_files,
        "findings": [finding.to_dict() for finding in result.new],
        "counts": {
            "new": len(result.new),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
    }
    json.dump(payload, sys.stdout, indent=1, sort_keys=False)
    print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    selected = None
    if args.select:
        selected = [code.strip() for code in args.select.split(",")]
    try:
        rules = all_rules(selected)
    except ValueError as error:
        parser.error(str(error))

    paths: List[Path]
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default = Path("src")
        paths = [default if default.is_dir() else Path(".")]
    for path in paths:
        if not path.exists():
            parser.error(f"no such file or directory: {path}")

    if args.changed_only:
        try:
            changed = changed_files(args.since)
        except ChangedFilesError as error:
            parser.error(str(error))
        roots = [path.resolve() for path in paths]
        paths = [
            path
            for path in changed
            if any(
                path.resolve() == root
                or root in path.resolve().parents
                for root in roots
            )
        ]
        if not paths:
            print(
                "reprolint: no files changed since "
                f"{args.since}; nothing to lint"
            )
            return 0

    baseline_path = Path(args.baseline)
    fingerprints: Set[str] = set()
    if not args.no_baseline and not args.write_baseline:
        try:
            fingerprints = load_baseline(baseline_path)
        except BaselineError as error:
            parser.error(str(error))

    result = lint_paths(paths, rules=rules, baseline=fingerprints)

    if args.write_baseline:
        count = write_baseline(
            baseline_path, result.new + result.baselined
        )
        print(
            f"reprolint: wrote {count} fingerprint(s) to {baseline_path}"
        )
        return 0

    if args.format == "json":
        _render_json(result)
    elif args.format == "github":
        _render_github(result)
    else:
        _render_text(result)
    return result.exit_code
