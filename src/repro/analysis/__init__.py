"""reprolint: AST-based static checks for the simulator's invariants.

The reproduction's headline guarantees — bit-identical golden snapshots
across ``--jobs`` levels, picklable experiment grids, zero-overhead
telemetry — are *behavioural* contracts that a stray ``random.random()``
or an unguarded metrics call silently violates until a golden test
happens to catch it.  This package moves those contracts to lint time:

* :mod:`repro.analysis.rules` — the REP001-REP006 rules and the
  pluggable registry new rules hook into;
* :mod:`repro.analysis.engine` — file walking, suppression and
  baseline partitioning;
* :mod:`repro.analysis.baseline` — the checked-in grandfather list;
* :mod:`repro.analysis.cli` — the ``python -m repro lint`` gate.

See ``docs/static-analysis.md`` for the rule catalogue, the
suppression/baseline workflow, and how to add a rule.
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import LINT_JSON_SCHEMA, LINT_SCHEMA, main
from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.findings import Finding, scan_suppressions
from repro.analysis.rules import (
    KERNEL_PACKAGES,
    Rule,
    all_rules,
    register,
    rule_catalog,
)

__all__ = [
    "Finding",
    "KERNEL_PACKAGES",
    "LINT_JSON_SCHEMA",
    "LINT_SCHEMA",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "load_baseline",
    "main",
    "register",
    "rule_catalog",
    "scan_suppressions",
    "write_baseline",
]
